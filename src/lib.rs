//! **latent-truth** — a Rust reproduction of
//! *A Bayesian Approach to Discovering Truth from Conflicting Sources for
//! Data Integration* (Bo Zhao, Benjamin I. P. Rubinstein, Jim Gemmell,
//! Jiawei Han; PVLDB 5(6), VLDB 2012).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`model`] — the data substrate: raw `(entity, attribute, source)`
//!   triples, fact tables, claim tables (paper §2);
//! * [`core`] — the Latent Truth Model: collapsed Gibbs inference,
//!   two-sided source quality, incremental & streaming modes (paper
//!   §4–5, §7);
//! * [`baselines`] — the seven prior methods the paper compares against
//!   (paper §6.2);
//! * [`datagen`] — simulators standing in for the paper's proprietary
//!   datasets plus the synthetic stress test (paper §6.1);
//! * [`eval`] — metrics, threshold sweeps, ROC/AUC, timing (paper §6);
//! * [`stats`] — the numeric substrate (special functions, distribution
//!   samplers, confidence intervals, regression).
//!
//! # Example
//!
//! ```
//! use latent_truth::model::{ClaimDb, RawDatabaseBuilder};
//! use latent_truth::core::{fit, LtmConfig};
//!
//! // Paper Table 1: conflicting cast lists for "Harry Potter".
//! let mut b = RawDatabaseBuilder::new();
//! b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
//! b.add("Harry Potter", "Emma Watson", "IMDB");
//! b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
//! b.add("Harry Potter", "Johnny Depp", "BadSource.com");
//! b.add("Harry Potter", "Daniel Radcliffe", "BadSource.com");
//! let raw = b.build();
//! let db = ClaimDb::from_raw(&raw);
//!
//! let result = fit(&db, &LtmConfig::scaled_for(db.num_facts()));
//! assert_eq!(result.truth.len(), db.num_facts());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use ltm_baselines as baselines;
pub use ltm_core as core;
pub use ltm_datagen as datagen;
pub use ltm_eval as eval;
pub use ltm_model as model;
pub use ltm_stats as stats;
