//! The real-valued observation model (paper §7, "Real-valued loss"):
//! instead of Boolean claims, sources emit similarity scores — e.g. fuzzy
//! string matches between their attribute value and a candidate fact. The
//! Gaussian variant of LTM clusters the scores through the same latent
//! truth machinery.
//!
//! ```text
//! cargo run --release --example real_valued
//! ```

use latent_truth::core::realvalued::{fit, RealClaim, RealClaimDb, RealLtmConfig};
use latent_truth::model::{FactId, SourceId};
use latent_truth::stats::rng::rng_from_seed;
use rand::Rng;

fn main() {
    // Simulate 150 candidate facts (half true) scored by 5 fuzzy matchers.
    // Matchers score true facts near 0.85 and false ones near 0.25, with
    // per-source noise — matcher 4 is much noisier than the rest.
    let num_facts = 150;
    let num_sources = 5;
    let mut rng = rng_from_seed(99);
    let truth: Vec<bool> = (0..num_facts).map(|i| i % 2 == 0).collect();
    let noise = [0.05, 0.07, 0.08, 0.10, 0.25];

    let mut claims = Vec::new();
    for (i, &t) in truth.iter().enumerate() {
        for (s, &sigma) in noise.iter().enumerate() {
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let center = if t { 0.85 } else { 0.25 };
            claims.push(RealClaim {
                fact: FactId::from_usize(i),
                source: SourceId::from_usize(s),
                value: center + sigma * z,
            });
        }
    }
    let db = RealClaimDb::new(num_facts, num_sources, claims);

    let result = fit(&db, &RealLtmConfig::default());

    let correct = (0..num_facts)
        .filter(|&i| (result.truth.prob(FactId::from_usize(i)) >= 0.5) == truth[i])
        .count();
    println!("recovered {correct}/{num_facts} facts from real-valued scores alone\n");

    println!("per-source posterior score profiles:");
    println!(
        "{:<10} {:>12} {:>13} {:>12}",
        "source", "mean (true)", "mean (false)", "planted σ"
    );
    for (s, &sigma) in noise.iter().enumerate() {
        println!(
            "matcher-{s}  {:>12.3} {:>13.3} {sigma:>12.2}",
            result.mean_true[s], result.mean_false[s]
        );
    }
    println!(
        "\nThe separation between each source's two means is its effective\n\
         quality in the Gaussian model — the real-valued analogue of the\n\
         sensitivity/specificity pair."
    );
}
