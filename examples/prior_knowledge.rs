//! Prior knowledge in low-data settings (paper contribution #4): the
//! Bayesian formulation lets domain knowledge about specific sources be
//! plugged in as per-source priors — here, we tell the model up front that
//! one source is a trusted curated feed, and watch a sparsely-supported
//! fact flip from "unknown" to "true".
//!
//! ```text
//! cargo run --release --example prior_knowledge
//! ```

use latent_truth::core::priors::BetaPair;
use latent_truth::core::{fit_with_source_priors, LtmConfig, Priors, SampleSchedule, SourcePriors};
use latent_truth::model::{ClaimDb, FactId, RawDatabaseBuilder};

fn main() {
    // A tiny, low-volume integration: three niche encyclopedias. The
    // curated feed asserts a fact nobody else mentions for entity "E9".
    let mut b = RawDatabaseBuilder::new();
    for e in 0..8 {
        let entity = format!("E{e}");
        b.add(&entity, "attr-a", "curated-feed");
        b.add(&entity, "attr-a", "wiki-mirror");
        b.add(&entity, "attr-a", "scraper");
        // The scraper also invents a value per entity, denied by the rest
        // implicitly (negative claims).
        b.add(&entity, "attr-junk", "scraper");
    }
    b.add("E9", "attr-rare", "curated-feed");
    b.add("E9", "attr-a", "curated-feed");
    b.add("E9", "attr-a", "wiki-mirror");
    let raw = b.build();
    let db = ClaimDb::from_raw(&raw);

    let config = LtmConfig {
        priors: Priors {
            alpha0: BetaPair::new(1.0, 10.0),
            alpha1: BetaPair::new(5.0, 5.0),
            beta: BetaPair::new(2.0, 2.0),
        },
        schedule: SampleSchedule::new(400, 100, 2),
        seed: 17,
        arithmetic: Default::default(),
    };

    let rare_fact: FactId = db
        .fact_ids()
        .find(|&f| raw.attr_name(db.fact(f).attr) == "attr-rare")
        .expect("rare fact exists");

    // Uninformed run: every source starts from the same priors.
    let uniform = SourcePriors::uniform(config.priors, db.num_sources());
    let before = fit_with_source_priors(&db, &config, &uniform);

    // Informed run: we know the curated feed is meticulous — encode that
    // as strong prior counts (high sensitivity, very low FPR).
    let mut informed = uniform.clone();
    let curated = raw.source_id("curated-feed").expect("source exists");
    informed.set(
        curated.index(),
        BetaPair::new(0.5, 200.0), // alpha0: ~0 false positives expected
        BetaPair::new(50.0, 5.0),  // alpha1: high sensitivity expected
    );
    let after = fit_with_source_priors(&db, &config, &informed);

    println!("fact (E9, attr-rare): single positive claim from curated-feed");
    println!(
        "  p(true) with uniform priors:  {:.3}",
        before.truth.prob(rare_fact)
    );
    println!(
        "  p(true) with informed priors: {:.3}",
        after.truth.prob(rare_fact)
    );
    assert!(after.truth.prob(rare_fact) > before.truth.prob(rare_fact));

    println!("\nquality estimates for the curated feed:");
    println!(
        "  uniform:  sensitivity {:.3}, specificity {:.3}",
        before.quality.sensitivity(curated),
        before.quality.specificity(curated)
    );
    println!(
        "  informed: sensitivity {:.3}, specificity {:.3}",
        after.quality.sensitivity(curated),
        after.quality.specificity(curated)
    );
}
