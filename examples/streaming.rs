//! Online / streaming integration (paper §5.4): data arrives in batches;
//! source quality learned on earlier batches is folded into the priors of
//! later ones, and the closed-form LTMinc predictor (Equation 3) scores
//! brand-new facts with no sampling at all.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use latent_truth::core::{LtmConfig, Priors, SampleSchedule, StreamingLtm};
use latent_truth::datagen::movies::{self, MovieConfig};
use latent_truth::datagen::streams::partition_entities;
use latent_truth::eval::metrics::evaluate;

fn main() {
    // One simulated movie feed, split into three disjoint entity batches.
    let data = movies::generate(&MovieConfig {
        num_movies_raw: 4_000,
        labeled_entities: 100,
        seed: 2012,
    });
    let total = data.dataset.claims.entity_ids().count();
    println!(
        "full dataset: {total} movies, {} claims",
        data.dataset.claims.num_claims()
    );

    let batches = partition_entities(&data, 3, 77);

    let config = LtmConfig {
        priors: Priors::scaled_specificity(data.dataset.claims.num_facts() / 3),
        schedule: SampleSchedule::paper_default(),
        seed: 42,
        arithmetic: Default::default(),
    };
    let mut stream = StreamingLtm::new(config);

    for (i, batch) in batches.iter().enumerate() {
        let fit = stream.observe(&batch.claims);
        // partition_entities resolves every batch fact's ground truth.
        let m = evaluate(&batch.truth, &fit.truth, 0.5);
        println!(
            "batch {i}: {:>6} claims, accuracy {:.3} (priors carry {} earlier batch(es) of quality)",
            batch.claims.num_claims(),
            m.accuracy,
            i
        );
    }

    // Equation-3 prediction on the full dataset using only the streamed
    // quality — no further sampling.
    let predictor = stream.predictor();
    let pred = predictor.predict(&data.dataset.claims);
    let m = evaluate(&data.dataset.truth, &pred, 0.5);
    println!(
        "\nLTMinc (closed form, no iterations) on the labeled subset: accuracy {:.3}, F1 {:.3}",
        m.accuracy, m.f1
    );
}
