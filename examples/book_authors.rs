//! The book-author scenario from the paper's introduction: hundreds of
//! online sellers list authors for the same books — some only list first
//! authors, a few attach wrong ones. Generates the simulated abebooks
//! stand-in at reduced scale, fits LTM, and compares against Voting on the
//! labeled subset.
//!
//! ```text
//! cargo run --release --example book_authors
//! ```

use latent_truth::baselines::{TruthMethod, Voting};
use latent_truth::core::{fit, LtmConfig, Priors, SampleSchedule};
use latent_truth::datagen::books::{self, BookConfig};
use latent_truth::eval::metrics::evaluate;

fn main() {
    let data = books::generate(&BookConfig {
        num_books: 400,
        num_sources: 300,
        mean_sources_per_book: 25.0,
        labeled_entities: 80,
        seed: 2012,
    });
    println!(
        "== simulated book-author dataset ==\n{}\n",
        data.dataset.stats()
    );

    let db = &data.dataset.claims;
    let truth = &data.dataset.truth;

    let config = LtmConfig {
        priors: Priors::scaled_specificity(db.num_facts()),
        schedule: SampleSchedule::paper_default(),
        seed: 42,
        arithmetic: Default::default(),
    };
    let ltm = fit(db, &config);
    let ltm_metrics = evaluate(truth, &ltm.truth, 0.5);

    let votes = Voting.infer(db);
    let vote_metrics = evaluate(truth, &votes, 0.5);

    println!("method   precision  recall  accuracy  F1");
    println!(
        "LTM          {:.3}   {:.3}     {:.3}  {:.3}",
        ltm_metrics.precision, ltm_metrics.recall, ltm_metrics.accuracy, ltm_metrics.f1
    );
    println!(
        "Voting       {:.3}   {:.3}     {:.3}  {:.3}",
        vote_metrics.precision, vote_metrics.recall, vote_metrics.accuracy, vote_metrics.f1
    );

    // The paper's motivating failure: voting rejects co-authors that only
    // complete sellers list. Count the labeled true facts voting misses
    // but LTM recovers.
    let mut recovered = 0;
    let mut examples = Vec::new();
    for (f, label) in truth.iter() {
        if label && !votes.is_true(f, 0.5) && ltm.truth.is_true(f, 0.5) {
            recovered += 1;
            if examples.len() < 5 {
                let fact = db.fact(f);
                examples.push(format!(
                    "{} / {}",
                    data.dataset.raw.entity_name(fact.entity),
                    data.dataset.raw.attr_name(fact.attr)
                ));
            }
        }
    }
    println!("\ntrue facts voting missed but LTM recovered: {recovered}");
    for e in examples {
        println!("  e.g. {e}");
    }
}
