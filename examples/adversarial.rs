//! Adversarial sources (paper §7): a malicious feed floods the
//! integration with fabricated facts. Plain LTM partially absorbs the
//! damage; the iterative filtering loop detects the low-specificity /
//! low-precision source, removes it, and refits.
//!
//! ```text
//! cargo run --release --example adversarial
//! ```

use latent_truth::core::priors::BetaPair;
use latent_truth::core::{fit, fit_filtered, AdversarialFilter, LtmConfig, Priors, SampleSchedule};
use latent_truth::model::{AttrId, Claim, ClaimDb, EntityId, Fact, FactId, SourceId};

fn main() {
    // 40 entities, 3 honest sources agreeing on one true fact each; one
    // adversary denying every true fact and pushing its own fabrication.
    let n = 40u32;
    let adversary = SourceId::new(3);
    let mut facts = Vec::new();
    let mut claims = Vec::new();
    for e in 0..n {
        let true_fact = FactId::new(2 * e);
        let fake_fact = FactId::new(2 * e + 1);
        facts.push(Fact {
            entity: EntityId::new(e),
            attr: AttrId::new(2 * e),
        });
        facts.push(Fact {
            entity: EntityId::new(e),
            attr: AttrId::new(2 * e + 1),
        });
        for s in 0..3 {
            claims.push(Claim {
                fact: true_fact,
                source: SourceId::new(s),
                observation: true,
            });
            claims.push(Claim {
                fact: fake_fact,
                source: SourceId::new(s),
                observation: false,
            });
        }
        claims.push(Claim {
            fact: true_fact,
            source: adversary,
            observation: false,
        });
        claims.push(Claim {
            fact: fake_fact,
            source: adversary,
            observation: true,
        });
    }
    let db = ClaimDb::from_parts(facts, claims, 4);

    let config = LtmConfig {
        priors: Priors {
            alpha0: BetaPair::new(1.0, 5.0),
            alpha1: BetaPair::new(5.0, 5.0),
            beta: BetaPair::new(5.0, 5.0),
        },
        schedule: SampleSchedule::new(300, 60, 2),
        seed: 77,
        arithmetic: Default::default(),
    };

    let accuracy = |truth: &latent_truth::model::TruthAssignment| {
        db.fact_ids()
            .filter(|f| (truth.prob(*f) >= 0.5) == (f.raw() % 2 == 0))
            .count() as f64
            / db.num_facts() as f64
    };

    let plain = fit(&db, &config);
    println!(
        "plain LTM accuracy on spiked data:    {:.3}",
        accuracy(&plain.truth)
    );
    println!(
        "adversary quality as inferred:        specificity {:.3}, precision {:.3}",
        plain.quality.specificity(adversary),
        plain.quality.precision(adversary)
    );

    let filtered = fit_filtered(&db, &config, &AdversarialFilter::default());
    println!(
        "\nfiltered LTM accuracy:                {:.3}",
        accuracy(&filtered.fit.truth)
    );
    println!(
        "rounds: {}, removed sources: {:?}",
        filtered.rounds,
        filtered
            .removed
            .iter()
            .map(|s| format!("source-{}", s.raw()))
            .collect::<Vec<_>>()
    );
    assert!(filtered.removed.contains(&adversary), "adversary detected");
}
