//! Quickstart: the paper's running example (Table 1), extended with a few
//! more movies so the source-quality signal is identifiable, run through
//! the Latent Truth Model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use latent_truth::core::priors::BetaPair;
use latent_truth::core::{fit, LtmConfig, Priors, SampleSchedule};
use latent_truth::model::{ClaimDb, RawDatabaseBuilder};

fn main() {
    // The raw database of paper Table 1: (entity, attribute, source)
    // triples with conflicting cast lists ...
    let mut b = RawDatabaseBuilder::new();
    b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
    b.add("Harry Potter", "Emma Watson", "IMDB");
    b.add("Harry Potter", "Rupert Grint", "IMDB");
    b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
    b.add("Harry Potter", "Daniel Radcliffe", "BadSource.com");
    b.add("Harry Potter", "Emma Watson", "BadSource.com");
    b.add("Harry Potter", "Johnny Depp", "BadSource.com");
    b.add("Pirates 4", "Johnny Depp", "Hulu.com");
    // ... plus three more movies that reveal the sources' habits: IMDB and
    // Netflix corroborate each other, BadSource keeps inventing actors.
    for (movie, a, b2, junk) in [
        (
            "Inception",
            "Leonardo DiCaprio",
            "Elliot Page",
            "Fake Actor 1",
        ),
        (
            "Twilight",
            "Kristen Stewart",
            "Robert Pattinson",
            "Fake Actor 2",
        ),
        ("Avatar", "Sam Worthington", "Zoe Saldana", "Fake Actor 3"),
    ] {
        b.add(movie, a, "IMDB");
        b.add(movie, b2, "IMDB");
        b.add(movie, a, "Netflix");
        b.add(movie, b2, "Netflix");
        b.add(movie, a, "BadSource.com");
        b.add(movie, junk, "BadSource.com");
    }
    let raw = b.build();

    // Derive the fact and claim tables (paper Definitions 2-3): positive
    // claims where a source asserted a fact, negative claims where it
    // covered the entity but stayed silent.
    let db = ClaimDb::from_raw(&raw);
    println!(
        "{} facts, {} claims ({} positive / {} negative) from {} sources\n",
        db.num_facts(),
        db.num_claims(),
        db.num_positive_claims(),
        db.num_negative_claims(),
        db.num_sources()
    );

    // Fit the Latent Truth Model. The dataset is tiny, so use a small
    // specificity prior and a longer chain than the paper's default.
    let config = LtmConfig {
        priors: Priors {
            alpha0: BetaPair::new(1.0, 10.0),
            alpha1: BetaPair::new(5.0, 5.0),
            beta: BetaPair::new(2.0, 2.0),
        },
        schedule: SampleSchedule::new(400, 100, 2),
        seed: 7,
        arithmetic: Default::default(),
    };
    let result = fit(&db, &config);

    println!("posterior truth probabilities (threshold 0.5):");
    for f in db.fact_ids() {
        let fact = db.fact(f);
        let p = result.truth.prob(f);
        println!(
            "  {:<5} p={p:.3}  {} / {}",
            if p >= 0.5 { "TRUE" } else { "false" },
            raw.entity_name(fact.entity),
            raw.attr_name(fact.attr),
        );
    }

    println!("\ntwo-sided source quality (paper section 5.3):");
    for s in result.quality.by_descending_sensitivity() {
        let r = result.quality.record(s);
        println!(
            "  {:<15} sensitivity {:.3}  specificity {:.3}  precision {:.3}",
            raw.source_name(s),
            r.sensitivity,
            r.specificity,
            r.precision
        );
    }
}
