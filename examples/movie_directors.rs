//! The movie-director scenario (the Bing movies vertical of the paper):
//! 12 feeds with very different error habits. Fits LTM on the simulated
//! dataset and prints the Table 8-style source-quality case study next to
//! the quality profiles the generator planted.
//!
//! ```text
//! cargo run --release --example movie_directors
//! ```

use latent_truth::core::{fit, LtmConfig, Priors, SampleSchedule};
use latent_truth::datagen::movies::{self, MovieConfig};
use latent_truth::eval::metrics::evaluate;

fn main() {
    let data = movies::generate(&MovieConfig {
        num_movies_raw: 5_000,
        labeled_entities: 100,
        seed: 2012,
    });
    println!(
        "== simulated movie-director dataset ==\n{}\n",
        data.dataset.stats()
    );

    let db = &data.dataset.claims;
    let config = LtmConfig {
        priors: Priors::scaled_specificity(db.num_facts()),
        schedule: SampleSchedule::paper_default(),
        seed: 42,
        arithmetic: Default::default(),
    };
    let result = fit(db, &config);

    let m = evaluate(&data.dataset.truth, &result.truth, 0.5);
    println!(
        "LTM on {} labeled movies: accuracy {:.3}, F1 {:.3}\n",
        data.dataset.truth.num_labeled_entities(),
        m.accuracy,
        m.f1
    );

    println!("source quality, sorted by inferred sensitivity (cf. paper Table 8):");
    println!(
        "{:<15} {:>11} {:>11}   {:>12}",
        "source", "sensitivity", "specificity", "planted sens"
    );
    for s in result.quality.by_descending_sensitivity() {
        let r = result.quality.record(s);
        println!(
            "{:<15} {:>11.4} {:>11.4}   {:>12.2}",
            data.dataset.raw.source_name(s),
            r.sensitivity,
            r.specificity,
            data.profiles[s.index()].sensitivity,
        );
    }
    println!(
        "\nNote how sensitivity and specificity do not correlate: conservative\n\
         feeds (fandango) rank low on sensitivity but high on specificity,\n\
         aggressive ones (imdb, amg) the other way — the paper's two-sided\n\
         quality argument."
    );
}
