//! Offline vendored `#[derive(Serialize, Deserialize)]` for the serde
//! shim.
//!
//! Supports the struct shapes this workspace actually derives on:
//!
//! * named-field structs → JSON objects in declaration order;
//! * newtype (single-field tuple) structs → the inner value, which also
//!   covers `#[serde(transparent)]`;
//! * multi-field tuple structs → JSON arrays.
//!
//! Generic structs and enums are rejected with a compile error. The parser
//! walks the raw token stream directly (no `syn`/`quote`, which are
//! unavailable offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The derived-upon struct, reduced to what code generation needs.
struct StructShape {
    name: String,
    fields: Fields,
}

enum Fields {
    /// Named fields in declaration order.
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
}

/// Derives the shim's `Serialize` (a `to_value` renderer).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let name = &shape.name;
    let body = match &shape.fields {
        Fields::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{entries}])")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives the shim's `Deserialize` (a `from_value` reader).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let name = &shape.name;
    let body = match &shape.fields {
        Fields::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field_or_null(v, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{ {entries} }})")
        }
        Fields::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Fields::Tuple(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         ::std::result::Result::Ok(Self({entries})),\n\
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                         format!(\"expected {n}-element array, found {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error invocation must parse")
}

/// Parses `struct Name { fields }` / `struct Name(types);` out of the
/// derive input, skipping attributes and visibility.
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility/doc tokens until the
    // `struct` keyword.
    loop {
        match tokens.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return Err("serde shim derive: enums are not supported".into());
            }
            Some(_) => continue,
            None => return Err("serde shim derive: no `struct` found".into()),
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected struct name, got {other:?}"
            ))
        }
    };
    match tokens.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            Err("serde shim derive: generic structs are not supported".into())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(StructShape {
            name,
            fields: Fields::Named(parse_named_fields(g.stream())?),
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(StructShape {
            name,
            fields: Fields::Tuple(count_tuple_fields(g.stream())),
        }),
        other => Err(format!(
            "serde shim derive: expected struct body after `{name}`, got {other:?}"
        )),
    }
}

/// Extracts field names from the brace group of a named struct.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        let field_name = loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    // Consume the attribute group `[...]`.
                    match tokens.next() {
                        Some(TokenTree::Group(_)) => continue,
                        other => {
                            return Err(format!(
                                "serde shim derive: malformed attribute, got {other:?}"
                            ))
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // Optional restriction like `pub(crate)`.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                    continue;
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!(
                        "serde shim derive: unexpected token in fields: {other:?}"
                    ))
                }
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{field_name}`, got {other:?}"
                ))
            }
        }
        fields.push(field_name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Counts comma-separated fields in a tuple struct's paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}
