//! Offline vendored shim mirroring the subset of the `epoll` 4.3 crate
//! API this workspace uses: `create` / `ctl` / `wait` / `close` over the
//! Linux `epoll_create1(2)` / `epoll_ctl(2)` / `epoll_wait(2)` syscalls,
//! plus the `Event` struct and the readiness flag constants.
//!
//! The container image has no access to a crates registry, so the
//! workspace vendors minimal in-repo implementations of its external
//! dependencies (see the workspace `Cargo.toml`). This one is the only
//! shim holding `unsafe` code: the serving crate is built under
//! `#![forbid(unsafe_code)]`, so the raw FFI lives here behind a safe
//! surface. On non-Linux targets every call returns
//! [`std::io::ErrorKind::Unsupported`] and [`SUPPORTED`] is `false`;
//! callers keep a portable fallback (the serve crate's blocking thread
//! pool) behind that flag.

#![deny(missing_docs)]

use std::io;

/// Whether this build target has a working epoll (Linux only).
pub const SUPPORTED: bool = cfg!(target_os = "linux");

/// A file descriptor, as accepted by the epoll syscalls.
pub type RawFd = i32;

/// Readiness flags (`EPOLLIN` | …), a subset of `sys/epoll.h`.
pub mod events {
    /// The associated fd is readable.
    pub const EPOLLIN: u32 = 0x001;
    /// The associated fd is writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// An error condition happened on the fd.
    pub const EPOLLERR: u32 = 0x008;
    /// The peer hung up.
    pub const EPOLLHUP: u32 = 0x010;
    /// The peer closed its write half (needs explicit registration).
    pub const EPOLLRDHUP: u32 = 0x2000;
}

/// The `epoll_ctl(2)` operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(i32)]
pub enum ControlOptions {
    /// Register a new fd.
    EpollCtlAdd = 1,
    /// Deregister an fd.
    EpollCtlDel = 2,
    /// Change the registration of an fd.
    EpollCtlMod = 3,
}

/// One registration / readiness record: a flag set and the caller's
/// 64-bit token. Layout matches the kernel's `struct epoll_event`
/// (packed on x86_64, naturally aligned elsewhere).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// `events::EPOLL*` flags, OR-ed together.
    pub events: u32,
    /// Opaque caller token, returned verbatim with each readiness record.
    pub data: u64,
}

impl Event {
    /// A new event record.
    pub fn new(events: u32, data: u64) -> Self {
        Self { events, data }
    }

    /// The flag set of this record (a copy — the struct may be packed,
    /// so direct field borrows are not portable).
    pub fn events(&self) -> u32 {
        self.events
    }

    /// The caller token of this record.
    pub fn data(&self) -> u64 {
        self.data
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{ControlOptions, Event, RawFd};
    use std::io;

    /// `EPOLL_CLOEXEC` for `epoll_create1`.
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
        fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Converts a `-1` libc return into the thread's errno.
    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn create(cloexec: bool) -> io::Result<RawFd> {
        let flags = if cloexec { EPOLL_CLOEXEC } else { 0 };
        // SAFETY: epoll_create1 takes a plain flag word and returns a new
        // fd or -1; no pointers are involved.
        check(unsafe { epoll_create1(flags) })
    }

    pub fn ctl(epfd: RawFd, op: ControlOptions, fd: RawFd, mut event: Event) -> io::Result<()> {
        // SAFETY: `event` is a live, properly laid-out `struct
        // epoll_event` for the duration of the call; the kernel only
        // reads it (EPOLL_CTL_DEL ignores it entirely).
        check(unsafe { epoll_ctl(epfd, op as i32, fd, &mut event) }).map(|_| ())
    }

    pub fn wait(epfd: RawFd, timeout_ms: i32, buf: &mut [Event]) -> io::Result<usize> {
        let max = i32::try_from(buf.len()).unwrap_or(i32::MAX).max(1);
        // SAFETY: `buf` is a valid mutable slice of `struct epoll_event`
        // records and `max` never exceeds its length (epoll_wait demands
        // maxevents > 0, hence the non-empty-slice guard in the caller).
        let n = check(unsafe { epoll_wait(epfd, buf.as_mut_ptr(), max, timeout_ms) })?;
        Ok(n as usize)
    }

    pub fn close_fd(fd: RawFd) -> io::Result<()> {
        // SAFETY: close takes a plain fd; the caller owns it and does not
        // reuse it afterwards.
        check(unsafe { close(fd) }).map(|_| ())
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{ControlOptions, Event, RawFd};
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is only available on Linux",
        ))
    }

    pub fn create(_cloexec: bool) -> io::Result<RawFd> {
        unsupported()
    }

    pub fn ctl(_epfd: RawFd, _op: ControlOptions, _fd: RawFd, _event: Event) -> io::Result<()> {
        unsupported()
    }

    pub fn wait(_epfd: RawFd, _timeout_ms: i32, _buf: &mut [Event]) -> io::Result<usize> {
        unsupported()
    }

    pub fn close_fd(_fd: RawFd) -> io::Result<()> {
        unsupported()
    }
}

/// Creates an epoll instance (`epoll_create1`), optionally close-on-exec.
pub fn create(cloexec: bool) -> io::Result<RawFd> {
    sys::create(cloexec)
}

/// Registers, modifies, or removes `fd` on the `epfd` interest list.
pub fn ctl(epfd: RawFd, op: ControlOptions, fd: RawFd, event: Event) -> io::Result<()> {
    sys::ctl(epfd, op, fd, event)
}

/// Blocks up to `timeout_ms` (`-1` = forever, `0` = poll) for readiness
/// records, filling `buf` and returning how many were written. An
/// `EINTR` wakeup is surfaced as `Ok(0)` so callers re-check their own
/// deadlines instead of special-casing signals.
pub fn wait(epfd: RawFd, timeout_ms: i32, buf: &mut [Event]) -> io::Result<usize> {
    if buf.is_empty() {
        return Ok(0);
    }
    match sys::wait(epfd, timeout_ms, buf) {
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
        other => other,
    }
}

/// Closes an epoll fd created by [`create`].
pub fn close(fd: RawFd) -> io::Result<()> {
    sys::close_fd(fd)
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_round_trip_on_a_socketpair() {
        let (mut a, b) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        let epfd = create(true).expect("create");
        ctl(
            epfd,
            ControlOptions::EpollCtlAdd,
            b.as_raw_fd(),
            Event::new(events::EPOLLIN, 42),
        )
        .expect("ctl add");

        // Nothing readable yet: a zero-timeout wait returns no records.
        let mut buf = [Event::new(0, 0); 8];
        assert_eq!(wait(epfd, 0, &mut buf).expect("idle wait"), 0);

        a.write_all(b"x").expect("write");
        let n = wait(epfd, 1000, &mut buf).expect("armed wait");
        assert_eq!(n, 1);
        assert_eq!(buf[0].data(), 42);
        assert_ne!(buf[0].events() & events::EPOLLIN, 0);

        // Level-triggered: the record repeats until the byte is drained.
        let n = wait(epfd, 0, &mut buf).expect("level wait");
        assert_eq!(n, 1);
        let mut byte = [0u8; 1];
        let mut b_read = &b;
        b_read.read_exact(&mut byte).expect("drain");
        assert_eq!(wait(epfd, 0, &mut buf).expect("drained wait"), 0);

        ctl(
            epfd,
            ControlOptions::EpollCtlDel,
            b.as_raw_fd(),
            Event::new(0, 0),
        )
        .expect("ctl del");
        close(epfd).expect("close");
    }

    #[test]
    fn supported_matches_target() {
        // The tests above ran real epoll syscalls, so this target must
        // advertise support (the assert is target-constant by design).
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(SUPPORTED);
        }
    }
}
