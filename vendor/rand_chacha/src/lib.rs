//! Offline vendored ChaCha8 random number generator.
//!
//! Implements the ChaCha stream cipher core (D. J. Bernstein) with 8
//! rounds as a deterministic, platform-independent PRNG, exposing the
//! `ChaCha8Rng` name the workspace's `rand_chacha` dependency provided.
//! The keystream follows RFC 8439's state layout (constants, 256-bit key
//! = seed, 64-bit block counter + 64-bit nonce); output words are served
//! in block order. Bit-for-bit equality with upstream `rand_chacha`
//! streams is not required by the workspace — determinism and statistical
//! quality are.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// A deterministic ChaCha generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// 256-bit seed as eight little-endian words.
    key: [u32; 8],
    /// Block counter (low word advances first).
    counter: u64,
    /// Buffered keystream block.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next unread word in `buffer`; `WORDS_PER_BLOCK` means empty.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// "expand 32-byte k", the RFC 8439 constants.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            Self::SIGMA[0],
            Self::SIGMA[1],
            Self::SIGMA[2],
            Self::SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonals.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(&input)) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn bits_look_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction = {frac}");
    }

    #[test]
    fn matches_chacha_structure_across_blocks() {
        // Crossing the 16-word block boundary must not repeat output.
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let first_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
