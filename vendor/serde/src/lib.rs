//! Offline vendored shim of the `serde` API surface used by this
//! workspace.
//!
//! Instead of upstream serde's visitor architecture, this shim routes
//! everything through a single JSON-shaped [`Value`] tree: [`Serialize`]
//! renders a value tree, [`Deserialize`] reads one back. The only consumer
//! in the workspace is the vendored `serde_json`, so the simpler data model
//! is observationally equivalent for every type the workspace serialises.
//!
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//! proc-macros from the vendored `serde_derive`, which understand plain
//! structs (named or newtype) plus the `#[serde(transparent)]` attribute —
//! exactly what this workspace's types use.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the shim's universal data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key if this is an object.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is any numeric variant
    /// (mirrors upstream `serde_json::Value::as_f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }
}

/// A deserialization error (human-readable message).
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable as a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `self` back from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetches object field `name`, yielding `Null` when absent (so `Option`
/// fields tolerate missing keys). Used by derived impls.
pub fn field_or_null<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
    const NULL: &Value = &Value::Null;
    match v {
        Value::Object(_) => Ok(v.get_field(name).unwrap_or(NULL)),
        other => Err(Error::msg(format!(
            "expected object with field `{name}`, found {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

// `Value` passes through both traits unchanged (upstream serde_json's
// `Value` is likewise self-(de)serializable), so callers can inspect
// arbitrary JSON without declaring a schema.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(v),
                }
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (HashMap iteration order varies).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

fn as_i64(v: &Value) -> Result<i64, Error> {
    match v {
        Value::Int(i) => Ok(*i),
        Value::UInt(u) => i64::try_from(*u).map_err(|_| Error::msg("integer out of range")),
        other => Err(Error::msg(format!("expected integer, found {other:?}"))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = as_i64(v)?;
                <$t>::try_from(i).map_err(|_| {
                    Error::msg(format!(
                        "integer {i} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

de_int!(i8, i16, i32, isize, u8, u16, u32, usize);

impl Deserialize for i64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        as_i64(v)
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::UInt(u) => Ok(*u),
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(Error::msg(format!(
                "expected unsigned integer, found {other:?}"
            ))),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!(
                "expected 2-element array, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_value(&42i32.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hé".to_value()).unwrap(),
            "hé".to_string()
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(o.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let pair = (3usize, 2.5f64);
        assert_eq!(<(usize, f64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn field_or_null_tolerates_missing_keys() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(field_or_null(&obj, "a").unwrap(), &Value::Int(1));
        assert_eq!(field_or_null(&obj, "b").unwrap(), &Value::Null);
        assert!(field_or_null(&Value::Int(3), "a").is_err());
    }

    #[test]
    fn large_unsigned_escapes_int() {
        assert_eq!(u64::MAX.to_value(), Value::UInt(u64::MAX));
        assert_eq!(5u64.to_value(), Value::Int(5));
    }
}
