//! Offline vendored shim of the `rand` 0.8 API surface used by this
//! workspace.
//!
//! The build container has no access to a crates registry, so the external
//! dependencies are vendored as minimal hand-written implementations. This
//! crate mirrors the parts of `rand` the workspace calls:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<f64>()`, `gen::<u64>()`, …;
//! * [`SeedableRng`] with the SplitMix64-based `seed_from_u64` default;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates);
//! * [`seq::index::sample`] (partial Fisher–Yates without replacement).
//!
//! The numeric conventions (u64 → f64 via the 53-bit multiply) follow
//! upstream `rand` so the statistical behaviour matches; exact bit-level
//! compatibility with upstream streams is *not* a goal — determinism within
//! this workspace is.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// The low-level generator interface: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from raw generator output — the
/// shim's stand-in for `Standard: Distribution<T>`.
pub trait StandardSample: Sized {
    /// Draws a uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` using the high 53 bits, as upstream `rand` does.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` using the high 24 bits.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// High-level convenience methods on any generator.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform integer in `[0, bound)` by Lemire-style rejection
    /// (widening multiply with a retry on the biased region).
    #[inline]
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index: bound must be positive");
        let bound = bound as u64;
        // Rejection zone below keeps the draw exactly uniform.
        let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return ((v as u128 * bound as u128) >> 64) as usize;
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand`'s default implementation.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut z = state;
        for chunk in bytes.chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut s = z;
            s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            s ^= s >> 31;
            let out = s.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&out[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence utilities: in-place shuffling and index sampling.

    use super::Rng;

    /// Extension trait providing random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (*rng).gen_index(i + 1);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Sampling distinct indices from `0..length`.

        use crate::Rng;

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` by partial
        /// Fisher–Yates, in random order.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "sample: amount ({amount}) exceeds length ({length})"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + (*rng).gen_index(length - i);
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::*;

    /// A tiny deterministic generator for the shim's own tests.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift(9);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_index_unbiased_bounds() {
        let mut r = XorShift(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = r.gen_index(10);
            assert!(i < 10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = XorShift(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "overwhelmingly unlikely to be identity");
    }

    #[test]
    fn sample_distinct_and_in_range() {
        let mut r = XorShift(5);
        let s = sample(&mut r, 50, 20);
        assert_eq!(s.len(), 20);
        let set: std::collections::HashSet<usize> = s.iter().collect();
        assert_eq!(set.len(), 20, "indices must be distinct");
        assert!(s.iter().all(|i| i < 50));
    }

    #[test]
    fn sample_full_range_is_permutation() {
        let mut r = XorShift(11);
        let s = sample(&mut r, 10, 10);
        let mut v = s.into_vec();
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "exceeds length")]
    fn sample_rejects_oversized_amount() {
        let mut r = XorShift(1);
        sample(&mut r, 3, 4);
    }
}
