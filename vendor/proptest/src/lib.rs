//! Offline vendored shim of the `proptest` API surface used by this
//! workspace.
//!
//! Provides the [`Strategy`] trait with deterministic generation (seeded
//! per test from the test's name), `prop_map`, tuple/range/`any` strategies,
//! [`collection::vec`], a character-class subset of the string-regex
//! strategies (`"[chars]{m,n}"`), and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: failing cases are reported by panic without
//! shrinking, and generation is always deterministic (no persisted failure
//! seeds). For the workspace's invariant checks that trade-off is
//! acceptable — a failure still prints the offending values via the assert
//! message.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::{Rng as _, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// A generator seeded from a test's name (stable across runs).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(ChaCha8Rng::seed_from_u64(h))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.0.gen_index(bound)
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for std::ops::Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty integer range strategy");
        let span = (self.end as i64 - self.start as i64) as usize;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The uniform strategy for `T` — `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// String strategies from a character-class pattern, the subset of
/// proptest's regex strategies this workspace uses: `"[chars]{min,max}"`.
/// Supported inside the class: literal characters (any unicode), ranges
/// like `a-z`, and backslash escapes.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_char_class(self);
        let len = min + rng.below(max - min + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

/// Parses `[class]{min,max}` into (alphabet, min, max).
fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let inner = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported string strategy `{pattern}`: must start with `[`"));
    let (class, rest) = split_class(inner, pattern);
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported string strategy `{pattern}`: need `{{min,max}}`"));
    let (min_s, max_s) = counts
        .split_once(',')
        .unwrap_or_else(|| panic!("unsupported repetition `{{{counts}}}` in `{pattern}`"));
    let min: usize = min_s.trim().parse().expect("min repeat count");
    let max: usize = max_s.trim().parse().expect("max repeat count");
    assert!(
        min <= max && max > 0,
        "bad repetition bounds in `{pattern}`"
    );

    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let literal = if c == '\\' {
            chars
                .next()
                .unwrap_or_else(|| panic!("dangling escape in `{pattern}`"))
        } else {
            c
        };
        // Range `X-Y` (the `-` must be unescaped and followed by something).
        if c != '\\' && chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next(); // the '-'
            if let Some(&end) = lookahead.peek() {
                if end != '\\' {
                    chars = lookahead;
                    chars.next(); // consume the range end
                    assert!(
                        literal <= end,
                        "descending range `{literal}-{end}` in `{pattern}`"
                    );
                    for code in (literal as u32)..=(end as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            alphabet.push(ch);
                        }
                    }
                    continue;
                }
            }
        }
        alphabet.push(literal);
    }
    assert!(!alphabet.is_empty(), "empty character class in `{pattern}`");
    (alphabet, min, max)
}

/// Splits the class body from the repetition suffix, honouring escapes.
fn split_class<'a>(inner: &'a str, pattern: &str) -> (&'a str, &'a str) {
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            ']' => return (&inner[..i], &inner[i + 1..]),
            _ => {}
        }
    }
    panic!("unterminated character class in `{pattern}`");
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A size specification: a fixed length or a half-open range.
    pub trait IntoSizeRange {
        /// Lower bound (inclusive).
        fn lo(&self) -> usize;
        /// Upper bound (exclusive).
        fn hi(&self) -> usize;
    }

    impl IntoSizeRange for usize {
        fn lo(&self) -> usize {
            *self
        }

        fn hi(&self) -> usize {
            *self + 1
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn lo(&self) -> usize {
            self.start
        }

        fn hi(&self) -> usize {
            self.end
        }
    }

    /// Strategy for vectors of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.lo + rng.below(self.hi - self.lo);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = (size.lo(), size.hi());
        assert!(lo < hi, "empty size range for collection::vec");
        VecStrategy { element, lo, hi }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursion for [`proptest!`] — one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::deterministic("vecsizes");
        let s = crate::collection::vec(0u8..5, 2..7);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = crate::collection::vec(any::<bool>(), 64usize);
        assert_eq!(fixed.generate(&mut rng).len(), 64);
    }

    #[test]
    fn char_class_strategies() {
        let mut rng = TestRng::deterministic("charclass");
        let s = "[a-cXé中\\-]{2,5}";
        for _ in 0..500 {
            let v = Strategy::generate(&s, &mut rng);
            let n = v.chars().count();
            assert!((2..=5).contains(&n), "len {n}");
            for c in v.chars() {
                assert!(
                    matches!(c, 'a'..='c' | 'X' | 'é' | '中' | '-'),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::deterministic("map");
        let s = (0u8..10).prop_map(|x| x as usize * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(0u8..250, 5..20);
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Addition commutes (sanity-check of macro plumbing).
        #[test]
        fn macro_generates_cases(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn macro_tuple_and_vec(v in crate::collection::vec((0u8..4, any::<bool>()), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
        }
    }
}
