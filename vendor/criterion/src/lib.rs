//! Offline vendored shim of the `criterion` API surface used by this
//! workspace's `benches/`.
//!
//! Implements a compact wall-clock harness behind criterion's interface:
//! benchmark groups, per-group sample size, throughput annotation,
//! `bench_function` / `bench_with_input`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs one warm-up iteration,
//! then `sample_size` timed iterations, and prints min / median / mean
//! wall time plus derived throughput.
//!
//! Statistical analysis (outlier classification, regression against saved
//! baselines) is out of scope for the shim — the numbers it prints are
//! honest wall-clock measurements, which is what the workspace's
//! benchmarks consume.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaquely consumes a value, preventing the optimiser from deleting the
/// computation that produced it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value, e.g. a problem size.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }

    /// An id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` measured
    /// calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, id, &bencher.samples, self.throughput);
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    print!(
        "{group}/{id}: min {:.3?}  median {:.3?}  mean {:.3?}  ({} samples)",
        min,
        median,
        mean,
        sorted.len()
    );
    if let Some(t) = throughput {
        let per_sec = |count: u64| count as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => print!("  [{:.0} elem/s]", per_sec(n)),
            Throughput::Bytes(n) => print!("  [{:.0} B/s]", per_sec(n)),
        }
    }
    println!();
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + 4 samples.
        assert_eq!(calls, 5);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(3));
        let data = vec![1u64, 2, 3];
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, input| {
            b.iter(|| seen = input.iter().sum());
        });
        assert_eq!(seen, 6);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter(4000).to_string(), "4000");
        assert_eq!(BenchmarkId::new("fit", 10).to_string(), "fit/10");
    }
}
