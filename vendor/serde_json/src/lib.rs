//! Offline vendored shim of the `serde_json` API surface used by this
//! workspace: [`to_string`], [`to_string_pretty`], and [`from_str`], all
//! routed through the serde shim's `Value` tree.
//!
//! Output conventions follow upstream `serde_json`: two-space indentation
//! in pretty mode, floats rendered by Rust's shortest-round-trip formatter
//! (so `1.0` keeps its decimal point), non-finite floats rendered as
//! `null`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A JSON error (serialization or parse), with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialises `value` as pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip form and always
                // keeps a decimal point or exponent, like serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{lit}` at offset {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: advance over a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid unicode escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = vec![(1usize, 0.5f64), (2, 1.0)];
        assert_eq!(to_string(&v).unwrap(), "[[1,0.5],[2,1.0]]");
        let pretty = to_string_pretty(&vec![1, 2]).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_round_trip() {
        let back: Vec<i32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let floats: Vec<f64> = from_str("[1.5, -2e3, 0.0]").unwrap();
        assert_eq!(floats, vec![1.5, -2000.0, 0.0]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t é 中 – \u{1F600}".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn surrogate_pair_parses() {
        let back: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Vec<i32>>("[1] x").is_err());
        assert!(from_str::<bool>("truthy").is_err());
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }
}
