//! Offline vendored shim of the `rayon` API surface used by this
//! workspace: `par_iter()` / `into_par_iter()` followed by `map(...)` and
//! `collect()`.
//!
//! Execution is genuinely parallel — items are split into per-thread
//! contiguous chunks and processed under `std::thread::scope`, one thread
//! per chunk up to `std::thread::available_parallelism()`. Result order is
//! preserved. There is no work stealing; at this workspace's scales (tens
//! of coarse-grained tasks: one Gibbs chain or one sweep point per item)
//! static chunking is within noise of a stealing scheduler.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads for `n` items.
fn num_threads(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
        .max(1)
}

/// Splits `items` into at most `parts` contiguous chunks of near-equal
/// size, preserving order.
fn chunkify<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    // Split off from the back so each drain is O(chunk).
    for i in (0..parts).rev() {
        let size = base + usize::from(i < extra);
        out.push(items.split_off(items.len() - size));
    }
    out.reverse();
    out
}

/// Runs `f` over `items` on scoped threads, preserving order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = num_threads(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunks = chunkify(items, threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
        out
    })
}

/// A parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` for its side effects on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map_vec(self.items, &f);
    }
}

/// The result of [`ParIter::map`], awaiting a `collect()`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F> {
    /// Executes the map in parallel and gathers results in input order.
    pub fn collect<R, C>(self) -> C
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(par_map_vec(self.items, &self.f))
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize, i32, i64);

/// Borrowing conversion: `par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_range() {
        let out: Vec<u64> = (0u64..97).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..98).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_vec_moves_items() {
        let v = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn chunkify_covers_everything_in_order() {
        let chunks = super::chunkify((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(chunks.len(), 3);
        let flat: Vec<i32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            < 2
        {
            return; // single-core CI runner: nothing to assert
        }
        let ids: Vec<std::thread::ThreadId> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                std::thread::current().id()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on more than one thread");
    }
}
