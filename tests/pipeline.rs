//! End-to-end pipeline tests: generated datasets → all ten methods →
//! metric shapes matching the paper's Table 7.

use latent_truth::baselines::{
    AvgLog, HubAuthority, PooledInvestment, ThreeEstimates, TruthFinder, TruthMethod, Voting,
};
use latent_truth::core::{fit, positive_only, IncrementalLtm, LtmConfig, Priors, SampleSchedule};
use latent_truth::datagen::books::{self, BookConfig};
use latent_truth::datagen::movies::{self, MovieConfig};
use latent_truth::eval::metrics::evaluate;

fn book_data() -> latent_truth::datagen::GeneratedDataset {
    books::generate(&BookConfig {
        num_books: 150,
        num_sources: 120,
        mean_sources_per_book: 22.0,
        labeled_entities: 40,
        seed: 2012,
    })
}

fn movie_data() -> latent_truth::datagen::GeneratedDataset {
    movies::generate(&MovieConfig {
        num_movies_raw: 1_200,
        labeled_entities: 60,
        seed: 2012,
    })
}

fn ltm_config(num_facts: usize) -> LtmConfig {
    LtmConfig {
        priors: Priors::scaled_specificity(num_facts),
        schedule: SampleSchedule::paper_default(),
        seed: 42,
        arithmetic: Default::default(),
    }
}

#[test]
fn ltm_beats_voting_on_books() {
    let data = book_data();
    let db = &data.dataset.claims;
    let truth = &data.dataset.truth;
    let cfg = ltm_config(db.num_facts());

    let ltm = evaluate(truth, &fit(db, &cfg).truth, 0.5);
    let votes = evaluate(truth, &Voting.infer(db), 0.5);

    assert!(
        ltm.accuracy > votes.accuracy,
        "LTM {:.3} must beat Voting {:.3}",
        ltm.accuracy,
        votes.accuracy
    );
    // The specific failure voting exhibits: missing co-authors (recall).
    assert!(ltm.recall > votes.recall);
    // And LTM should be strong in absolute terms on the (clean) book data.
    assert!(ltm.accuracy > 0.9, "LTM accuracy {:.3}", ltm.accuracy);
}

#[test]
fn optimistic_methods_have_high_fpr() {
    // Paper Table 7: TruthFinder and LTMpos predict essentially everything
    // true (FPR 1.0) because they ignore negative claims.
    let data = book_data();
    let db = &data.dataset.claims;
    let truth = &data.dataset.truth;
    let cfg = ltm_config(db.num_facts());

    let tf = evaluate(truth, &TruthFinder::default().infer(db), 0.5);
    assert!(tf.recall > 0.95, "TruthFinder recall {:.3}", tf.recall);
    assert!(tf.fpr > 0.9, "TruthFinder FPR {:.3}", tf.fpr);

    let pos = evaluate(truth, &positive_only::fit(db, &cfg).truth, 0.5);
    assert!(pos.recall > 0.95, "LTMpos recall {:.3}", pos.recall);
    assert!(pos.fpr > 0.9, "LTMpos FPR {:.3}", pos.fpr);
}

#[test]
fn conservative_methods_have_high_precision_low_recall() {
    // Paper Table 7: HubAuthority / AvgLog / PooledInvestment.
    let data = book_data();
    let db = &data.dataset.claims;
    let truth = &data.dataset.truth;

    for method in [
        Box::new(HubAuthority::default()) as Box<dyn TruthMethod>,
        Box::new(AvgLog::default()),
        Box::new(PooledInvestment::default()),
    ] {
        let m = evaluate(truth, &method.infer(db), 0.5);
        assert!(
            m.precision > 0.9,
            "{} precision {:.3}",
            method.name(),
            m.precision
        );
        assert!(
            m.recall < 0.8,
            "{} recall {:.3} should be limited",
            method.name(),
            m.recall
        );
    }
}

#[test]
fn ltm_wins_on_movies_and_three_estimates_is_competitive() {
    let data = movie_data();
    let db = &data.dataset.claims;
    let truth = &data.dataset.truth;
    let cfg = ltm_config(db.num_facts());

    let ltm = evaluate(truth, &fit(db, &cfg).truth, 0.5);
    let three = evaluate(truth, &ThreeEstimates::default().infer(db), 0.5);
    let votes = evaluate(truth, &Voting.infer(db), 0.5);

    assert!(ltm.accuracy >= three.accuracy - 0.02);
    assert!(ltm.accuracy >= votes.accuracy - 0.02);
    assert!(ltm.f1 >= votes.f1 - 0.02);
    // 3-Estimates uses negative claims: it must not collapse to the
    // optimistic group.
    assert!(three.fpr < 0.9, "3-Estimates FPR {:.3}", three.fpr);
}

#[test]
fn ltminc_matches_batch_ltm() {
    // Paper: "There is no significant difference between the performance
    // of LTM and LTMinc".
    let data = movie_data();
    let db = &data.dataset.claims;
    let truth = &data.dataset.truth;
    let cfg = ltm_config(db.num_facts());

    let batch = fit(db, &cfg);
    let predictor = IncrementalLtm::new(&batch.quality, &cfg.priors);
    let inc = predictor.predict(db);

    let batch_m = evaluate(truth, &batch.truth, 0.5);
    let inc_m = evaluate(truth, &inc, 0.5);
    assert!(
        (batch_m.accuracy - inc_m.accuracy).abs() < 0.05,
        "batch {:.3} vs incremental {:.3}",
        batch_m.accuracy,
        inc_m.accuracy
    );
}

#[test]
fn two_sided_quality_recovers_planted_profiles_on_movies() {
    let data = movie_data();
    let db = &data.dataset.claims;
    let cfg = ltm_config(db.num_facts());
    let result = fit(db, &cfg);

    let sid = |name: &str| data.dataset.raw.source_id(name).unwrap();
    let q = &result.quality;

    // Rank agreement between planted and inferred sensitivity across all
    // 12 sources (the Table 8 validation in one number).
    let planted: Vec<f64> = data.profiles.iter().map(|p| p.sensitivity).collect();
    let inferred: Vec<f64> = (0..db.num_sources())
        .map(|s| q.sensitivity(latent_truth::model::SourceId::from_usize(s)))
        .collect();
    let rho = latent_truth::stats::spearman(&planted, &inferred);
    assert!(rho > 0.85, "Spearman(planted, inferred) = {rho:.3}");

    // Sensitivity ordering: imdb (0.91 planted) far above fandango (0.50).
    assert!(q.sensitivity(sid("imdb")) > q.sensitivity(sid("fandango")) + 0.15);
    // Specificity ordering: amg (planted FP rate 0.31/movie) below the
    // careful feeds.
    assert!(q.specificity(sid("amg")) < q.specificity(sid("msnmovie")));
    assert!(q.specificity(sid("amg")) < q.specificity(sid("fandango")));
    // Two-sidedness: fandango is low-sensitivity but high-specificity;
    // imdb the reverse relative to fandango.
    assert!(q.specificity(sid("fandango")) > q.specificity(sid("imdb")));
}
