//! Persistence round-trips across crates: a generated dataset survives
//! CSV serialisation with its claim structure and labels intact.

use latent_truth::datagen::books::{self, BookConfig};
use latent_truth::model::io::{read_labels, read_triples, write_labels, write_triples};
use latent_truth::model::{ClaimDb, GroundTruth, RawDatabase, RawDatabaseBuilder};
use proptest::prelude::*;

#[test]
fn generated_dataset_roundtrips_through_csv() {
    let data = books::generate(&BookConfig {
        num_books: 60,
        num_sources: 40,
        mean_sources_per_book: 15.0,
        labeled_entities: 20,
        seed: 77,
    });
    let raw = &data.dataset.raw;
    let claims = &data.dataset.claims;

    // Triples out and back.
    let mut buf = Vec::new();
    write_triples(raw, &mut buf).unwrap();
    let raw2 = read_triples(std::io::Cursor::new(&buf)).unwrap();
    assert_eq!(raw2.len(), raw.len());
    assert_eq!(raw2.num_entities(), raw.num_entities());
    assert_eq!(raw2.num_sources(), raw.num_sources());

    // The derived claim tables agree on every aggregate.
    let claims2 = ClaimDb::from_raw(&raw2);
    assert_eq!(claims2.num_facts(), claims.num_facts());
    assert_eq!(claims2.num_claims(), claims.num_claims());
    assert_eq!(claims2.num_positive_claims(), claims.num_positive_claims());

    // Labels out and back (fact ids may be renumbered, so compare via
    // names).
    let mut lbuf = Vec::new();
    write_labels(&data.dataset.truth, raw, claims, &mut lbuf).unwrap();
    let truth2 = read_labels(std::io::Cursor::new(&lbuf), &raw2, &claims2).unwrap();
    assert_eq!(
        truth2.num_labeled_facts(),
        data.dataset.truth.num_labeled_facts()
    );
    assert_eq!(truth2.num_true(), data.dataset.truth.num_true());

    // Per-fact agreement through the name mapping.
    for (f, label) in data.dataset.truth.iter() {
        let fact = claims.fact(f);
        let e2 = raw2.entity_id(raw.entity_name(fact.entity)).unwrap();
        let a2 = raw2.attr_id(raw.attr_name(fact.attr)).unwrap();
        let f2 = claims2
            .facts_of_entity(e2)
            .iter()
            .copied()
            .find(|&x| claims2.fact(x).attr == a2)
            .unwrap();
        assert_eq!(truth2.label(f2), Some(label));
    }
}

#[test]
fn inference_is_invariant_under_roundtrip() {
    // Fitting on the re-read database must produce the same truth
    // decisions (fact ids may permute; compare via names).
    use latent_truth::core::{fit, LtmConfig};

    let data = books::generate(&BookConfig {
        num_books: 40,
        num_sources: 30,
        mean_sources_per_book: 12.0,
        labeled_entities: 10,
        seed: 78,
    });
    let raw = &data.dataset.raw;
    let claims = &data.dataset.claims;

    let mut buf = Vec::new();
    write_triples(raw, &mut buf).unwrap();
    let raw2 = read_triples(std::io::Cursor::new(&buf)).unwrap();
    let claims2 = ClaimDb::from_raw(&raw2);

    let cfg = LtmConfig::scaled_for(claims.num_facts());
    let fit1 = fit(claims, &cfg);
    let fit2 = fit(&claims2, &cfg);

    let mut agree = 0;
    let mut total = 0;
    for f in claims.fact_ids() {
        let fact = claims.fact(f);
        let e2 = raw2.entity_id(raw.entity_name(fact.entity)).unwrap();
        let a2 = raw2.attr_id(raw.attr_name(fact.attr)).unwrap();
        let f2 = claims2
            .facts_of_entity(e2)
            .iter()
            .copied()
            .find(|&x| claims2.fact(x).attr == a2)
            .unwrap();
        total += 1;
        if fit1.truth.is_true(f, 0.5) == fit2.truth.is_true(f2, 0.5) {
            agree += 1;
        }
    }
    // Row order is canonicalised by sorting, so the databases are
    // identical and decisions must agree everywhere.
    assert_eq!(agree, total);
}

/// Strategy: a raw database over adversarial names — small vocabularies
/// drawn from a charset that exercises every CSV escape path (commas,
/// quotes, doubled quotes, spaces, empty names) plus the empty-database
/// edge case (`0..` triple count).
///
/// Newlines are deliberately excluded: the triples format is line-based
/// (the writer quotes them but the reader is a per-line parser), which
/// `read_rejects_wrong_arity`-style unit tests pin down separately.
fn adversarial_database() -> impl Strategy<Value = RawDatabase> {
    let name = "[a-c,\" _é]{0,5}";
    proptest::collection::vec((name, name, name), 0..30).prop_map(|triples| {
        let mut b = RawDatabaseBuilder::new();
        for (e, a, s) in &triples {
            b.add(e, a, s);
        }
        b.build()
    })
}

/// Sorted named rows — the canonical content of a raw database.
fn named_rows(db: &RawDatabase) -> Vec<(String, String, String)> {
    let mut rows: Vec<_> = db
        .iter_named()
        .map(|(e, a, s)| (e.to_owned(), a.to_owned(), s.to_owned()))
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `write_triples → read_triples` reproduces the database exactly,
    /// for any names and for the empty database.
    #[test]
    fn triples_roundtrip_under_adversarial_names(db in adversarial_database()) {
        let mut buf = Vec::new();
        write_triples(&db, &mut buf).unwrap();
        let back = read_triples(std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(named_rows(&back), named_rows(&db));
        prop_assert_eq!(back.len(), db.len());

        // A second round-trip preserves content too (ids may permute, so
        // byte-identity is not required — row order follows intern order).
        let mut buf2 = Vec::new();
        write_triples(&back, &mut buf2).unwrap();
        let third = read_triples(std::io::Cursor::new(&buf2)).unwrap();
        prop_assert_eq!(named_rows(&third), named_rows(&db));
    }

    /// `write_labels → read_labels` reproduces ground truth over the
    /// round-tripped database, including the no-labels edge case.
    #[test]
    fn labels_roundtrip_under_adversarial_names(
        db in adversarial_database(),
        keep in 0u8..3,
    ) {
        let claims = ClaimDb::from_raw(&db);
        let mut truth = GroundTruth::new();
        for f in claims.fact_ids() {
            // Label a varying subset (possibly none) of the facts.
            if f.raw() % 3 >= keep as u32 {
                let fact = claims.fact(f);
                truth.insert(fact.entity, f, f.raw() % 2 == 0);
            }
        }
        let mut buf = Vec::new();
        write_labels(&truth, &db, &claims, &mut buf).unwrap();
        let back = read_labels(std::io::Cursor::new(&buf), &db, &claims).unwrap();
        prop_assert_eq!(back, truth);
    }
}
