//! Kernel-parity acceptance tests: the cached log-ratio Gibbs kernel must
//! be *bit-identical* to the reference log-space kernel on realistic
//! synthetic data — identical posterior, identical flip trajectory,
//! identical RNG consumption — while the multi-chain driver must agree
//! with pooling single chains by hand.

use latent_truth::core::{fit, fit_chains, Arithmetic, LtmConfig, Priors, SampleSchedule};
use latent_truth::datagen::synthetic::{self, SyntheticConfig};

fn synthetic_db(num_facts: usize, num_sources: usize, seed: u64) -> latent_truth::model::ClaimDb {
    synthetic::generate(&SyntheticConfig {
        num_facts,
        num_sources,
        seed,
        ..Default::default()
    })
    .claims
}

#[test]
fn cached_kernel_bit_identical_on_synthetic_data() {
    let db = synthetic_db(2_000, 20, 7);
    for seed in [1, 42, 9001] {
        let base = LtmConfig {
            priors: Priors::scaled_specificity(db.num_facts()),
            schedule: SampleSchedule::new(60, 10, 1),
            seed,
            arithmetic: Arithmetic::LogSpace,
        };
        let reference = fit(&db, &base);
        let cached = fit(
            &db,
            &LtmConfig {
                arithmetic: Arithmetic::CachedLog,
                ..base
            },
        );
        // Bit-identical posterior: f64 equality, not a tolerance.
        assert_eq!(
            reference.truth, cached.truth,
            "seed {seed}: cached kernel diverged from log-space kernel"
        );
        // Identical trajectory (flip counts per sweep) proves the two
        // kernels consumed the RNG stream identically.
        assert_eq!(
            reference.diagnostics.flips_per_iteration, cached.diagnostics.flips_per_iteration,
            "seed {seed}: flip trajectory diverged"
        );
        assert_eq!(reference.expected_counts, cached.expected_counts);
    }
}

#[test]
fn cached_kernel_bit_identical_with_skewed_sources() {
    // Few sources with huge claim counts stress the invalidation path: a
    // single flip dirties almost every source's table.
    let db = synthetic_db(1_000, 3, 11);
    let cfg = LtmConfig {
        priors: Priors::scaled_specificity(db.num_facts()),
        schedule: SampleSchedule::new(40, 5, 0),
        seed: 4,
        arithmetic: Arithmetic::LogSpace,
    };
    let reference = fit(&db, &cfg);
    let cached = fit(
        &db,
        &LtmConfig {
            arithmetic: Arithmetic::CachedLog,
            ..cfg
        },
    );
    assert_eq!(reference.truth, cached.truth);
    assert_eq!(
        reference.diagnostics.flips_per_iteration,
        cached.diagnostics.flips_per_iteration
    );
}

#[test]
fn multi_chain_pool_matches_manual_average() {
    let db = synthetic_db(500, 10, 3);
    let cfg = LtmConfig {
        priors: Priors::scaled_specificity(db.num_facts()),
        schedule: SampleSchedule::new(50, 10, 1),
        seed: 99,
        arithmetic: Arithmetic::CachedLog,
    };
    let chains = 3;
    let multi = fit_chains(&db, &cfg, chains);

    // Chain 0 is the plain single-chain fit.
    let single = fit(&db, &cfg);
    assert_eq!(multi.per_chain_truth[0], single.truth);

    // Pooled estimate is the equal-weight chain average.
    for f in db.fact_ids() {
        let mean = multi.per_chain_truth.iter().map(|t| t.prob(f)).sum::<f64>() / chains as f64;
        assert!((multi.truth.prob(f) - mean).abs() < 1e-12);
    }

    // Synthetic data is well identified: most facts must have R̂ ≤ 1.1.
    assert!(
        multi.diagnostics.converged_fraction > 0.7,
        "converged fraction = {}",
        multi.diagnostics.converged_fraction
    );
}
