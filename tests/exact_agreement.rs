//! The collapsed Gibbs sampler must converge to the exact posterior
//! (computed by 2^F enumeration) on small random instances — the core
//! correctness property of the inference algorithm.

use latent_truth::core::priors::BetaPair;
use latent_truth::core::{exact, fit, Arithmetic, LtmConfig, Priors, SampleSchedule};
use latent_truth::model::{AttrId, Claim, ClaimDb, EntityId, Fact, FactId, SourceId};
use latent_truth::stats::rng::rng_from_seed;
use rand::Rng;

/// Builds a random claim database with `num_facts` facts (two facts per
/// entity), `num_sources` sources, and ~70% claim density.
fn random_db(num_facts: usize, num_sources: usize, seed: u64) -> ClaimDb {
    let mut rng = rng_from_seed(seed);
    let facts: Vec<Fact> = (0..num_facts)
        .map(|i| Fact {
            entity: EntityId::from_usize(i / 2),
            attr: AttrId::from_usize(i),
        })
        .collect();
    let mut claims = Vec::new();
    for f in 0..num_facts {
        for s in 0..num_sources {
            if rng.gen::<f64>() < 0.7 {
                claims.push(Claim {
                    fact: FactId::from_usize(f),
                    source: SourceId::from_usize(s),
                    observation: rng.gen::<f64>() < 0.5,
                });
            }
        }
    }
    ClaimDb::from_parts(facts, claims, num_sources)
}

fn priors() -> Priors {
    Priors {
        alpha0: BetaPair::new(1.0, 8.0),
        alpha1: BetaPair::new(3.0, 2.0),
        beta: BetaPair::new(2.0, 3.0),
    }
}

#[test]
fn gibbs_matches_exact_on_random_instances() {
    for seed in [1u64, 2, 3] {
        let db = random_db(6, 3, seed);
        let p = priors();
        let exact_post = exact::posterior(&db, &p);
        let cfg = LtmConfig {
            priors: p,
            schedule: SampleSchedule::new(40_000, 4_000, 0),
            seed: 100 + seed,
            arithmetic: Arithmetic::LogSpace,
        };
        let gibbs = fit(&db, &cfg);
        for f in db.fact_ids() {
            assert!(
                (gibbs.truth.prob(f) - exact_post.prob(f)).abs() < 0.03,
                "seed {seed}, fact {f}: gibbs {:.4} vs exact {:.4}",
                gibbs.truth.prob(f),
                exact_post.prob(f)
            );
        }
    }
}

#[test]
fn arithmetic_modes_agree_with_each_other() {
    let db = random_db(8, 4, 9);
    let p = priors();
    let base = LtmConfig {
        priors: p,
        schedule: SampleSchedule::new(30_000, 3_000, 0),
        seed: 5,
        arithmetic: Arithmetic::LogSpace,
    };
    let log_fit = fit(&db, &base);
    let dir_fit = fit(
        &db,
        &LtmConfig {
            arithmetic: Arithmetic::Direct,
            seed: 6, // different seed: we compare distributions, not paths
            ..base
        },
    );
    for f in db.fact_ids() {
        assert!(
            (log_fit.truth.prob(f) - dir_fit.truth.prob(f)).abs() < 0.04,
            "fact {f}: log {:.4} vs direct {:.4}",
            log_fit.truth.prob(f),
            dir_fit.truth.prob(f)
        );
    }
}

#[test]
fn posterior_respects_prior_when_no_claims() {
    let facts: Vec<Fact> = (0..4)
        .map(|i| Fact {
            entity: EntityId::from_usize(i),
            attr: AttrId::from_usize(i),
        })
        .collect();
    let db = ClaimDb::from_parts(facts, vec![], 2);
    let p = Priors {
        beta: BetaPair::new(3.0, 1.0),
        ..priors()
    };
    let exact_post = exact::posterior(&db, &p);
    let cfg = LtmConfig {
        priors: p,
        schedule: SampleSchedule::new(20_000, 2_000, 0),
        seed: 11,
        arithmetic: Arithmetic::LogSpace,
    };
    let gibbs = fit(&db, &cfg);
    for f in db.fact_ids() {
        assert!((exact_post.prob(f) - 0.75).abs() < 1e-9);
        assert!((gibbs.truth.prob(f) - 0.75).abs() < 0.02);
    }
}
