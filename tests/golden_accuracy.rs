//! Golden accuracy-regression suite.
//!
//! Re-runs LTM and every Table 7 baseline on the two fixed-seed golden
//! streams (the §6.1 synthetic boolean stream and the planted-conflict
//! book-author stream) and asserts that accuracy, F1, and AUC match the
//! checked-in fixture `tests/goldens/accuracy.json` to within each
//! method's tolerance: 1e-9 for the deterministic iterative baselines,
//! 1e-6 for the seeded Gibbs chain. Any algorithmic drift — a changed
//! update rule, a reordered reduction, a generator tweak — fails here
//! with the exact method and measure named.
//!
//! Regenerate the fixture (after an *intentional* change) with:
//!
//! ```text
//! cargo run -p ltm-bench -- --emit-goldens
//! ```

use std::collections::BTreeSet;

use ltm_baselines::all_baselines;
use ltm_bench::{compute_goldens, GoldenReport};

fn checked_in_goldens() -> GoldenReport {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/accuracy.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden fixture {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("corrupt golden fixture {path}: {e}"))
}

#[test]
fn accuracy_matches_checked_in_goldens() {
    let fixture = checked_in_goldens();
    let fresh = compute_goldens();
    assert_eq!(
        fixture.records.len(),
        fresh.records.len(),
        "golden fixture is stale: record count changed (regenerate with \
         `cargo run -p ltm-bench -- --emit-goldens`)"
    );
    for (want, got) in fixture.records.iter().zip(&fresh.records) {
        assert_eq!(
            (&want.stream, &want.method),
            (&got.stream, &got.method),
            "golden fixture is stale: stream/method order changed"
        );
        let tol = ltm_bench::goldens::tolerance(&want.method);
        for (measure, want_v, got_v) in [
            ("accuracy", want.accuracy, got.accuracy),
            ("f1", want.f1, got.f1),
            ("auc", want.auc, got.auc),
        ] {
            assert!(
                (want_v - got_v).abs() <= tol,
                "{}/{} {measure} drifted: golden {want_v:.12}, computed {got_v:.12} \
                 (tolerance {tol:e})",
                want.stream,
                want.method
            );
        }
    }
}

/// The fixture itself must cover every method on every stream — a
/// regenerated fixture that silently dropped a method would otherwise
/// pass the drift check above.
#[test]
fn fixture_covers_every_method_on_both_streams() {
    let fixture = checked_in_goldens();
    let mut methods: Vec<String> = vec!["LTM".to_owned()];
    methods.extend(all_baselines().iter().map(|m| m.name().to_owned()));
    for stream in ["synthetic_boolean", "books_conflict"] {
        for method in &methods {
            assert!(
                fixture
                    .records
                    .iter()
                    .any(|r| r.stream == stream && &r.method == method),
                "fixture lacks {stream}/{method}"
            );
        }
    }
}

/// Pins `all_baselines()` to the paper's Table 7 method list by name-set
/// equality: adding, removing, or renaming a baseline must be a
/// deliberate decision that also updates this test, the goldens, and the
/// shadow ensemble it feeds.
#[test]
fn baseline_registry_matches_table7() {
    let expected: BTreeSet<&str> = [
        "3-Estimates",
        "Voting",
        "TruthFinder",
        "Investment",
        "HubAuthority",
        "AvgLog",
        "PooledInvestment",
    ]
    .into_iter()
    .collect();
    let actual: BTreeSet<&str> = all_baselines().iter().map(|m| m.name()).collect();
    assert_eq!(actual, expected, "all_baselines() drifted from Table 7");
}
