//! On data drawn from the model's own generative process (paper §6.1),
//! LTM must recover both the truth and the planted source quality — and
//! degrade gracefully as planted quality degrades (the Figure 4 story).

use latent_truth::core::{fit, LtmConfig, Priors, SampleSchedule};
use latent_truth::datagen::synthetic::{self, SyntheticConfig};
use latent_truth::eval::metrics::evaluate;
use latent_truth::model::SourceId;

fn config(num_facts: usize) -> LtmConfig {
    LtmConfig {
        priors: Priors::scaled_specificity(num_facts),
        schedule: SampleSchedule::paper_default(),
        seed: 42,
        arithmetic: Default::default(),
    }
}

#[test]
fn high_quality_sources_near_perfect_accuracy() {
    // Expected sensitivity 0.9, specificity 0.9 — the easy corner of
    // Figure 4, where the paper reports accuracy ~1.
    let data = synthetic::generate(&SyntheticConfig {
        num_facts: 2_000,
        num_sources: 20,
        seed: 1,
        ..Default::default()
    });
    let result = fit(&data.claims, &config(2_000));
    let m = evaluate(&data.ground, &result.truth, 0.5);
    assert!(m.accuracy > 0.97, "accuracy {:.3}", m.accuracy);
}

#[test]
fn planted_quality_recovered_within_tolerance() {
    let data = synthetic::generate(&SyntheticConfig {
        num_facts: 2_000,
        num_sources: 10,
        seed: 2,
        ..Default::default()
    });
    let result = fit(&data.claims, &config(2_000));
    // The MAP estimates are deliberately smoothed by the priors
    // (α₁ = (50, 50) against ~1000 observations pulls sensitivity ~0.04
    // towards 0.5; the strong α₀ pulls the FPR towards 0.01), so the
    // tolerance here accounts for that bias in addition to sampling noise.
    for k in 0..10 {
        let s = SourceId::from_usize(k);
        let est_sens = result.quality.sensitivity(s);
        let est_fpr = result.quality.false_positive_rate(s);
        assert!(
            (est_sens - data.phi1[k]).abs() < 0.08,
            "source {k}: sensitivity {est_sens:.3} vs planted {:.3}",
            data.phi1[k]
        );
        assert!(
            (est_fpr - data.phi0[k]).abs() < 0.08,
            "source {k}: FPR {est_fpr:.3} vs planted {:.3}",
            data.phi0[k]
        );
        // The *ranking* of sources must be preserved much more tightly:
        // correlation between planted and estimated sensitivity.
    }
    // Rank agreement: the most/least sensitive planted sources must be
    // identified as such.
    let best_planted = (0..10)
        .max_by(|&a, &b| data.phi1[a].partial_cmp(&data.phi1[b]).unwrap())
        .unwrap();
    let best_est = (0..10)
        .max_by(|&a, &b| {
            result
                .quality
                .sensitivity(SourceId::from_usize(a))
                .partial_cmp(&result.quality.sensitivity(SourceId::from_usize(b)))
                .unwrap()
        })
        .unwrap();
    assert_eq!(
        best_planted, best_est,
        "top-sensitivity source misidentified"
    );
}

#[test]
fn accuracy_degrades_with_specificity_faster_than_sensitivity() {
    // Figure 4's asymmetry: LTM tolerates low sensitivity better than low
    // specificity (its priors encode exactly that belief).
    let acc_at = |cfg: SyntheticConfig| {
        let data = synthetic::generate(&cfg);
        let result = fit(&data.claims, &config(cfg.num_facts));
        evaluate(&data.ground, &result.truth, 0.5).accuracy
    };

    let mut low_sens = SyntheticConfig::with_expected_sensitivity(0.3, 10);
    low_sens.num_facts = 1_500;
    let mut low_spec = SyntheticConfig::with_expected_specificity(0.3, 11);
    low_spec.num_facts = 1_500;

    let a_sens = acc_at(low_sens);
    let a_spec = acc_at(low_spec);
    assert!(
        a_sens > a_spec,
        "low sensitivity ({a_sens:.3}) should hurt less than low specificity ({a_spec:.3})"
    );
    // And the easy corners stay strong.
    let good = SyntheticConfig {
        num_facts: 1_500,
        seed: 12,
        ..Default::default()
    };
    assert!(acc_at(good) > 0.95);
}
