//! Property-based tests on the serving layer's WAL record framing
//! (`ltm_serve::wal`): every encodable batch — empty, valued, unicode,
//! max-length strings — must round-trip bit-exactly through
//! `encode_record`/`decode_segment`, any byte-level prefix of a segment
//! must decode as "clean records + torn tail" (never corruption, never a
//! phantom record), and a flipped byte must always be caught by the
//! CRC32 frame check.

use ltm_serve::store::LogRecord;
use ltm_serve::wal::{decode_segment, encode_record, SegmentIssue, WalRecord};
use proptest::prelude::*;

/// Strategy: one WAL row. Entity/attr/source draw from a vocabulary of
/// ASCII, punctuation the JSON layer loves to mangle, and multi-byte
/// unicode; about half the rows carry a real value (including
/// adversarial bit patterns like `-0.0`).
fn row() -> impl Strategy<Value = LogRecord> {
    (
        ("[a-zA-Z0-9 _.,\"\\\\émß→-]{0,24}", "[a-z0-9-]{1,12}"),
        ("[A-Za-z0-9é]{0,16}", 0u8..4),
        -1.0e12f64..1.0e12f64,
    )
        .prop_map(|((entity, attr), (source, tag), v)| LogRecord {
            entity,
            attr,
            source,
            value: match tag {
                0 => None,
                1 => Some(-0.0),
                2 => Some(v.trunc()),
                _ => Some(v),
            },
        })
}

/// Strategy: one record — a batch of 0..12 rows at an arbitrary
/// starting sequence.
fn record() -> impl Strategy<Value = WalRecord> {
    (
        "[a-z0-9-]{1,16}",
        0u32..1_000_000,
        proptest::collection::vec(row(), 0..12),
    )
        .prop_map(|(domain, first_seq, rows)| WalRecord {
            domain,
            first_seq: first_seq as u64 + 1,
            rows,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encode → decode is the identity, for a single record and for a
    /// whole segment of concatenated records.
    #[test]
    fn segments_round_trip(records in proptest::collection::vec(record(), 1..6)) {
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let (decoded, clean_len, issue) = decode_segment(&bytes);
        prop_assert_eq!(issue, None);
        prop_assert_eq!(clean_len, bytes.len());
        prop_assert_eq!(decoded, records);
    }

    /// Every strict byte prefix decodes to some prefix of the records
    /// plus a torn tail exactly at the clean boundary — a crash can cut
    /// an append anywhere and recovery must classify it as torn, never
    /// as mid-log corruption, and never invent or lose a whole record.
    #[test]
    fn any_truncation_is_a_clean_torn_tail(
        records in proptest::collection::vec(record(), 1..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
            boundaries.push(bytes.len());
        }
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let (decoded, clean_len, issue) = decode_segment(&bytes[..cut]);
        // The clean prefix is the greatest record boundary at or below
        // the cut, and the records up to it decode intact.
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(clean_len, boundaries[whole]);
        prop_assert_eq!(decoded.len(), whole);
        prop_assert_eq!(&decoded[..], &records[..whole]);
        if cut == boundaries[whole] {
            prop_assert_eq!(issue, None);
        } else {
            prop_assert_eq!(issue, Some(SegmentIssue::TornTail { offset: boundaries[whole] }));
        }
    }

    /// Any single flipped byte is detected: as a torn tail when the
    /// damaged frame is the last one, as corruption when clean data
    /// follows — but never decodes to the original records unchanged
    /// with no issue... unless the flip never entered a frame at all.
    #[test]
    fn a_flipped_byte_never_passes_the_crc(
        first_record in record(),
        trailer in record(),
        pos_frac in 0.0f64..1.0,
        flip_less_one in 0u8..255,
    ) {
        let flip = flip_less_one + 1;
        let first = encode_record(&first_record);
        let mut bytes = first.clone();
        bytes.extend_from_slice(&encode_record(&trailer));
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        let (decoded, _, issue) = decode_segment(&bytes);
        match issue {
            Some(_) => {} // caught: torn or corrupt, either is a detection
            None => {
                // A flip the decoder cannot flag must be a pure length
                // extension that still framed valid records — impossible
                // here because CRC covers the payload and the length
                // words are covered by the frame-boundary arithmetic.
                // The only undetectable outcome would be identical
                // records, which a non-zero flip rules out.
                prop_assert!(
                    decoded != vec![first_record.clone(), trailer.clone()],
                    "flip at byte {pos} was silently ignored"
                );
            }
        }
    }
}

/// The largest strings the HTTP layer can possibly deliver (16 MiB body
/// cap) round-trip: the u32 length prefixes must not truncate them.
#[test]
fn max_length_strings_round_trip() {
    let big = "µ".repeat(1 << 20); // 2 MiB of multi-byte UTF-8
    let record = WalRecord {
        domain: "default".into(),
        first_seq: u64::MAX - 1,
        rows: vec![LogRecord {
            entity: big.clone(),
            attr: big.clone(),
            source: big,
            value: Some(f64::MIN_POSITIVE),
        }],
    };
    let bytes = encode_record(&record);
    let (decoded, clean, issue) = decode_segment(&bytes);
    assert_eq!(issue, None);
    assert_eq!(clean, bytes.len());
    assert_eq!(decoded, vec![record]);
}

/// An empty batch (all rows deduplicated away never journals, but the
/// framing itself must still support zero rows) and an empty segment.
#[test]
fn empty_batches_and_segments_decode() {
    let record = WalRecord {
        domain: "d".into(),
        first_seq: 1,
        rows: Vec::new(),
    };
    let bytes = encode_record(&record);
    let (decoded, _, issue) = decode_segment(&bytes);
    assert_eq!(issue, None);
    assert_eq!(decoded, vec![record]);

    let (decoded, clean, issue) = decode_segment(&[]);
    assert!(decoded.is_empty());
    assert_eq!((clean, issue), (0, None));
}
