//! End-to-end tests of the `ltm-serve` subsystem: boot the HTTP server,
//! ingest over the wire, watch the background refit daemon publish an
//! epoch, verify query parity with the library, prove queries never block
//! on a refit, and restart from a snapshot.

use std::sync::Arc;
use std::time::{Duration, Instant};

use latent_truth::core::priors::BetaPair;
use latent_truth::core::{IncrementalLtm, LtmConfig, SampleSchedule};
use latent_truth::model::SourceId;
use ltm_serve::http::http_call;
use ltm_serve::refit::RefitConfig;
use ltm_serve::server::{ServeConfig, Server};
use ltm_serve::snapshot;
use serde_json::from_str;

/// Test-speed server config: tiny schedule, manual refit triggers only.
fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 3,
        threads: 3,
        refit: RefitConfig {
            ltm: LtmConfig {
                schedule: SampleSchedule::new(60, 20, 1),
                ..LtmConfig::default()
            },
            chains: 2,
            rhat_gate: 2.0,
            min_pending: usize::MAX,
            interval: Duration::from_millis(20),
            ..RefitConfig::default()
        },
        snapshot: None,
        ..ServeConfig::default()
    }
}

/// A JSON body ingesting a small conflicting-source workload: `good`
/// asserts two attributes per entity, `lazy` asserts one, `spammy`
/// asserts a junk attribute per entity.
fn workload_body(entities: usize) -> String {
    let mut triples = Vec::new();
    for e in 0..entities {
        triples.push(format!("[\"e{e}\",\"a0\",\"good\"]"));
        triples.push(format!("[\"e{e}\",\"a1\",\"good\"]"));
        triples.push(format!("[\"e{e}\",\"a0\",\"lazy\"]"));
        triples.push(format!("[\"e{e}\",\"junk\",\"spammy\"]"));
    }
    format!("{{\"triples\":[{}]}}", triples.join(","))
}

/// Extracts a JSON number field from a flat response body.
fn field_f64(body: &str, name: &str) -> f64 {
    let value: serde::Value = from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"));
    let field = value
        .get_field(name)
        .unwrap_or_else(|| panic!("no field {name} in {body}"));
    field
        .as_f64()
        .unwrap_or_else(|| panic!("field {name} is not a number: {field:?}"))
}

fn wait_for_epoch(addr: std::net::SocketAddr, at_least: f64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = http_call(addr, "GET", "/stats", None).expect("stats");
        assert_eq!(status, 200, "{body}");
        if field_f64(&body, "epoch") >= at_least {
            return;
        }
        assert!(Instant::now() < deadline, "no epoch ≥ {at_least}: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn boot_ingest_refit_query_parity_and_snapshot_restart() {
    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("ltm-e2e-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&snap_path);

    let mut cfg = config();
    cfg.snapshot = Some(snap_path.clone());
    let server = Server::start(cfg.clone()).expect("boot");
    let addr = server.addr();

    // Liveness before any data.
    let (status, body) = http_call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");

    // Ingest over the wire.
    let (status, body) = http_call(addr, "POST", "/claims", Some(&workload_body(10))).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(field_f64(&body, "accepted"), 40.0, "{body}");

    // Background refit publishes epoch ≥ 1.
    server.trigger_refit();
    wait_for_epoch(addr, 1.0);

    // Query through HTTP…
    let query = "{\"claims\":[[\"good\",true],[\"lazy\",false],[\"spammy\",true]]}";
    let (status, body) = http_call(addr, "POST", "/query", Some(query)).unwrap();
    assert_eq!(status, 200, "{body}");
    let served = field_f64(&body, "probability");
    assert!((0.0..=1.0).contains(&served), "{body}");

    // …must match predict_fact on the same learned quality within 1e-9.
    // Rebuild the predictor from a snapshot of the served epoch.
    server.save_snapshot(&snap_path).unwrap();
    let saved = snapshot::load(&snap_path).unwrap();
    assert_eq!(saved.version, 2, "snapshots save in format v2");
    let default = saved
        .domain(ltm_serve::DEFAULT_DOMAIN)
        .expect("default domain saved");
    let rec = default.epoch.as_ref().expect("epoch saved");
    let predictor = IncrementalLtm::from_parts(
        rec.phi1.clone(),
        rec.phi0.clone(),
        BetaPair::new(rec.beta_pos, rec.beta_neg),
        rec.default_phi1,
        rec.default_phi0,
    );
    let id_of = |name: &str| {
        SourceId::from_usize(
            default
                .sources
                .iter()
                .position(|s| s == name)
                .unwrap_or_else(|| panic!("source {name} not in snapshot")),
        )
    };
    let direct = predictor.predict_fact(&[
        (id_of("good"), true),
        (id_of("lazy"), false),
        (id_of("spammy"), true),
    ]);
    assert!(
        (served - direct).abs() < 1e-9,
        "served {served} vs direct {direct}"
    );

    // A fact endpoint agrees with the library on its own claims too.
    let (status, fact_body) = http_call(addr, "GET", "/facts/0", None).unwrap();
    assert_eq!(status, 200, "{fact_body}");
    let store = server.store();
    let view = store.fact(0).unwrap();
    let direct_fact = predictor.predict_fact(&view.claims);
    assert!((field_f64(&fact_body, "probability") - direct_fact).abs() < 1e-9);

    // Kill the server (graceful shutdown writes the final snapshot)…
    let epoch_before = field_f64(&http_call(addr, "GET", "/stats", None).unwrap().1, "epoch");
    server.shutdown().unwrap();

    // …and restart from the snapshot: same epoch, same answers, no refit.
    let restarted = Server::start(cfg).expect("restart");
    let addr2 = restarted.addr();
    let (status, body2) = http_call(addr2, "POST", "/query", Some(query)).unwrap();
    assert_eq!(status, 200, "{body2}");
    assert_eq!(
        field_f64(&body2, "probability"),
        served,
        "snapshot restart must preserve answers bit-for-bit"
    );
    assert_eq!(field_f64(&body2, "epoch"), epoch_before);
    let (_, fact2) = http_call(addr2, "GET", "/facts/0", None).unwrap();
    assert_eq!(
        field_f64(&fact2, "probability"),
        field_f64(&fact_body, "probability")
    );
    restarted.shutdown().unwrap();
    let _ = std::fs::remove_file(&snap_path);
}

/// Waits until the given `/stats` counter reaches `at_least`.
fn wait_for_stat(addr: std::net::SocketAddr, field: &str, at_least: f64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = http_call(addr, "GET", "/stats", None).expect("stats");
        assert_eq!(status, 200, "{body}");
        if field_f64(&body, field) >= at_least {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{field} never reached {at_least}: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The second ingest wave: a brand-new source `late` starts covering ten
/// *old* entities (retroactive Definition-3 negatives on their other
/// facts) and ten new entities arrive from the old sources.
fn second_wave_body() -> String {
    let mut triples = Vec::new();
    for e in 0..10 {
        triples.push(format!("[\"e{e}\",\"a0\",\"late\"]"));
    }
    for e in 20..30 {
        triples.push(format!("[\"e{e}\",\"a0\",\"good\"]"));
        triples.push(format!("[\"e{e}\",\"a1\",\"good\"]"));
        triples.push(format!("[\"e{e}\",\"a0\",\"lazy\"]"));
    }
    format!("{{\"triples\":[{}]}}", triples.join(","))
}

#[test]
fn incremental_and_full_refits_agree_within_tolerance() {
    // Same ingest history, two refit strategies: server A folds it in two
    // incremental deltas (the second containing retroactive coverage
    // changes), server B reconciles with one full refit. Their served
    // probabilities must agree within an MCMC + drift tolerance.
    let server_a = Server::start(config()).expect("boot A");
    let addr_a = server_a.addr();
    http_call(addr_a, "POST", "/claims", Some(&workload_body(20))).unwrap();
    server_a.trigger_refit();
    wait_for_stat(addr_a, "refits_incremental", 1.0);
    http_call(addr_a, "POST", "/claims", Some(&second_wave_body())).unwrap();
    server_a.trigger_refit();
    wait_for_stat(addr_a, "refits_incremental", 2.0);
    let (_, stats_a) = http_call(addr_a, "GET", "/stats", None).unwrap();
    assert_eq!(field_f64(&stats_a, "refits_full"), 0.0, "{stats_a}");
    assert_eq!(field_f64(&stats_a, "pending"), 0.0, "{stats_a}");

    let server_b = Server::start(config()).expect("boot B");
    let addr_b = server_b.addr();
    http_call(addr_b, "POST", "/claims", Some(&workload_body(20))).unwrap();
    http_call(addr_b, "POST", "/claims", Some(&second_wave_body())).unwrap();
    let (status, body) = http_call(addr_b, "POST", "/admin/refit?mode=full", None).unwrap();
    assert_eq!(status, 202, "{body}");
    wait_for_stat(addr_b, "refits_full", 1.0);

    for query in [
        "{\"claims\":[[\"good\",true],[\"lazy\",false]]}",
        "{\"claims\":[[\"late\",true]]}",
        "{\"claims\":[[\"good\",true],[\"spammy\",true],[\"late\",false]]}",
        "{\"claims\":[[\"lazy\",true],[\"spammy\",false]]}",
    ] {
        let (_, a) = http_call(addr_a, "POST", "/query", Some(query)).unwrap();
        let (_, b) = http_call(addr_b, "POST", "/query", Some(query)).unwrap();
        let (pa, pb) = (field_f64(&a, "probability"), field_f64(&b, "probability"));
        assert!(
            (pa - pb).abs() < 0.15,
            "incremental {pa} vs full {pb} diverged on {query}"
        );
    }

    // The unknown-source machinery agrees too: `late` is known to both.
    let (_, a) = http_call(
        addr_a,
        "POST",
        "/query",
        Some("{\"claims\":[[\"late\",true]]}"),
    )
    .unwrap();
    assert!(!a.contains("\"late\""), "late must be a known source: {a}");
    server_a.shutdown().unwrap();
    server_b.shutdown().unwrap();
}

#[test]
fn snapshot_restart_resumes_the_accumulator_incrementally() {
    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("ltm-e2e-acc-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&snap_path);
    let mut cfg = config();
    cfg.snapshot = Some(snap_path.clone());

    let server = Server::start(cfg.clone()).expect("boot");
    let addr = server.addr();
    http_call(addr, "POST", "/claims", Some(&workload_body(12))).unwrap();
    server.trigger_refit();
    wait_for_stat(addr, "refits_incremental", 1.0);
    let (_, stats) = http_call(addr, "GET", "/stats", None).unwrap();
    let watermark = field_f64(&stats, "fold_watermark");
    assert_eq!(watermark, 48.0, "all accepted rows folded");
    // Graceful shutdown writes the snapshot (now carrying the accumulator).
    server.shutdown().unwrap();

    let restarted = Server::start(cfg).expect("restart");
    let addr2 = restarted.addr();
    // The accumulator is resumed at boot — before any refit runs.
    {
        let state = restarted.refit_state();
        let st = state.lock().unwrap();
        let resumed = st
            .streaming()
            .expect("restart must resume the accumulator, not cold-refit");
        // 12 entities × 3 facts × 3 covering sources = 108 claims.
        assert!(
            (resumed.accumulated().total() - 108.0).abs() < 1e-6,
            "accumulator covers the whole pre-restart history: {}",
            resumed.accumulated().total()
        );
        assert_eq!(st.watermark(), 48);
    }
    let (_, stats2) = http_call(addr2, "GET", "/stats", None).unwrap();
    assert_eq!(field_f64(&stats2, "fold_watermark"), watermark, "{stats2}");
    assert_eq!(field_f64(&stats2, "pending"), 0.0, "nothing left to refold");

    // New data after the restart is folded as a delta: the refit is
    // incremental, no cold full refit ever runs.
    http_call(
        addr2,
        "POST",
        "/claims",
        Some("{\"triples\":[[\"post-restart\",\"a0\",\"good\"]]}"),
    )
    .unwrap();
    restarted.trigger_refit();
    wait_for_stat(addr2, "refits_incremental", 1.0);
    let (_, stats3) = http_call(addr2, "GET", "/stats", None).unwrap();
    assert_eq!(field_f64(&stats3, "refits_full"), 0.0, "{stats3}");
    assert_eq!(field_f64(&stats3, "fold_watermark"), 49.0, "{stats3}");
    restarted.shutdown().unwrap();
    let _ = std::fs::remove_file(&snap_path);
}

#[test]
fn admin_refit_rejects_unknown_modes() {
    let server = Server::start(config()).expect("boot");
    let addr = server.addr();
    let (status, body) = http_call(addr, "POST", "/admin/refit?mode=sideways", None).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown refit query"), "{body}");
    let (status, _) = http_call(addr, "POST", "/admin/refit?mode=incremental", None).unwrap();
    assert_eq!(status, 202);
    server.shutdown().unwrap();
}

#[test]
fn queries_never_block_on_a_refit() {
    let server = Server::start(config()).expect("boot");
    let addr = server.addr();
    http_call(addr, "POST", "/claims", Some(&workload_body(8))).unwrap();

    // Hold the refit thread hostage: grab the lock it must take for the
    // whole fold, then force a refit.
    let hostage = server.refit_lock();
    let guard = hostage.lock().unwrap();
    server.trigger_refit();
    // Give the daemon time to wake up and block on the hostage lock.
    std::thread::sleep(Duration::from_millis(100));

    // Queries (and ingests, and stats) must all serve while the refit is
    // stuck, on the still-current epoch 0.
    for _ in 0..5 {
        let started = Instant::now();
        let (status, body) = http_call(
            addr,
            "POST",
            "/query",
            Some("{\"claims\":[[\"good\",true]]}"),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(field_f64(&body, "epoch"), 0.0, "refit must not publish");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "query stalled behind the held refit"
        );
    }
    let (_, stats) = http_call(addr, "GET", "/stats", None).unwrap();
    assert!(field_f64(&stats, "refits_started") >= 1.0, "{stats}");

    // Release the hostage: the pending refit completes and publishes.
    drop(guard);
    wait_for_epoch(addr, 1.0);
    server.shutdown().unwrap();
}

#[test]
fn stalled_connections_cannot_wedge_the_worker_pool() {
    // Slow-loris regression: a peer that connects and sends nothing must
    // be dropped after the configured io_timeout instead of blocking a
    // worker forever. Open enough idle connections to occupy every
    // worker, then prove a real request still gets served.
    let mut cfg = config();
    cfg.threads = 2;
    cfg.io_timeout = Duration::from_millis(200);
    let server = Server::start(cfg).expect("boot");
    let addr = server.addr();

    let idle: Vec<_> = (0..3)
        .map(|_| std::net::TcpStream::connect(addr).expect("connect idle"))
        .collect();
    let started = Instant::now();
    let (status, body) = http_call(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200, "{body}");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "request stalled behind idle connections: {:?}",
        started.elapsed()
    );
    drop(idle);
    server.shutdown().unwrap();
}

#[test]
fn http_error_paths_are_json() {
    let server = Server::start(config()).expect("boot");
    let addr = server.addr();
    let (status, body) = http_call(addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    assert!(body.contains("error"), "{body}");
    let (status, body) = http_call(addr, "POST", "/claims", Some("not json")).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("error"), "{body}");
    let (status, body) = http_call(addr, "POST", "/query", Some("{\"claims\":[]}")).unwrap();
    assert_eq!(status, 200, "empty claim list scores the prior: {body}");
    let (status, _) = http_call(addr, "GET", "/facts/999", None).unwrap();
    assert_eq!(status, 404);
    let (status, body) = http_call(
        addr,
        "POST",
        "/claims",
        Some("{\"triples\":[[\"only\",\"two\"]]}"),
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("expected 3"), "{body}");
    server.shutdown().unwrap();
}

/// Reads one field from a `/stats` domain section.
fn domain_stat(stats_body: &str, domain: &str, field: &str) -> f64 {
    let value: serde::Value = from_str(stats_body).expect("stats JSON");
    let section = value
        .get_field("domains")
        .and_then(|d| d.get_field(domain))
        .unwrap_or_else(|| panic!("no domain section {domain} in {stats_body}"));
    section
        .get_field(field)
        .and_then(serde::Value::as_f64)
        .unwrap_or_else(|| panic!("domain field {field} missing or non-numeric: {stats_body}"))
}

#[test]
fn one_server_hosts_boolean_and_real_valued_domains_concurrently() {
    use latent_truth::datagen::streams::{real_valued_rows, RealStreamConfig};

    let mut cfg = config();
    cfg.domains = vec![("scores".into(), ltm_serve::ModelKind::RealValued)];
    let server = Server::start(cfg).expect("boot");
    let addr = server.addr();

    // Both domains are listed with their kinds.
    let (status, body) = http_call(addr, "GET", "/domains", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"default\"") && body.contains("\"boolean\""),
        "{body}"
    );
    assert!(
        body.contains("\"scores\"") && body.contains("\"real_valued\""),
        "{body}"
    );

    // Boolean ingest on the legacy route, real-valued ingest on the
    // domain route (4-field rows).
    let (status, body) = http_call(addr, "POST", "/claims", Some(&workload_body(10))).unwrap();
    assert_eq!(status, 200, "{body}");
    let rows = real_valued_rows(&RealStreamConfig {
        entities: 30,
        ..RealStreamConfig::default()
    });
    let rendered: Vec<String> = rows
        .iter()
        .map(|(e, a, s, v)| format!("[\"{e}\",\"{a}\",\"{s}\",{v}]"))
        .collect();
    let (status, body) = http_call(
        addr,
        "POST",
        "/d/scores/claims",
        Some(&format!("{{\"triples\":[{}]}}", rendered.join(","))),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(field_f64(&body, "accepted"), rows.len() as f64, "{body}");

    // Refit both domains; each publishes its own epoch independently.
    server.trigger_refit();
    let (status, _) = http_call(addr, "POST", "/d/scores/admin/refit", None).unwrap();
    assert_eq!(status, 202);
    wait_for_epoch(addr, 1.0);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, stats) = http_call(addr, "GET", "/stats", None).unwrap();
        if domain_stat(&stats, "scores", "epoch") >= 1.0 {
            break;
        }
        assert!(Instant::now() < deadline, "scores never published: {stats}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // The real domain learned the value separation: a high-valued claim
    // from an informative source scores far above a low-valued one.
    let (_, hi) = http_call(
        addr,
        "POST",
        "/d/scores/query",
        Some("{\"claims\":[[\"s0\",0.9]]}"),
    )
    .unwrap();
    let (_, lo) = http_call(
        addr,
        "POST",
        "/d/scores/query",
        Some("{\"claims\":[[\"s0\",0.2]]}"),
    )
    .unwrap();
    assert!(
        field_f64(&hi, "probability") > field_f64(&lo, "probability") + 0.5,
        "real domain did not separate values: {hi} vs {lo}"
    );
    // The boolean domain still answers boolean queries.
    let (status, body) = http_call(
        addr,
        "POST",
        "/query",
        Some("{\"claims\":[[\"good\",true],[\"lazy\",false]]}"),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");

    // A real-domain fact resolves with a probability; its claim count
    // covers every covering source.
    let (status, fact) = http_call(addr, "GET", "/d/scores/facts/0", None).unwrap();
    assert_eq!(status, 200, "{fact}");
    let p = field_f64(&fact, "probability");
    assert!((0.0..=1.0).contains(&p), "{fact}");

    // A positive-only domain can be created at runtime and serves too.
    let (status, body) = http_call(
        addr,
        "POST",
        "/admin/domains",
        Some("{\"name\":\"pos\",\"kind\":\"positive_only\"}"),
    )
    .unwrap();
    assert_eq!(status, 201, "{body}");
    let (status, body) = http_call(addr, "POST", "/d/pos/claims", Some(&workload_body(6))).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, _) = http_call(addr, "POST", "/d/pos/admin/refit", None).unwrap();
    assert_eq!(status, 202);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, stats) = http_call(addr, "GET", "/d/pos/stats", None).unwrap();
        if field_f64(&stats, "epoch") >= 1.0 {
            break;
        }
        assert!(Instant::now() < deadline, "pos never published: {stats}");
        std::thread::sleep(Duration::from_millis(25));
    }
    // Duplicate creation conflicts cleanly.
    let (status, body) = http_call(
        addr,
        "POST",
        "/admin/domains",
        Some("{\"name\":\"pos\",\"kind\":\"boolean\"}"),
    )
    .unwrap();
    assert_eq!(status, 409, "{body}");

    server.shutdown().unwrap();
}

#[test]
fn v1_snapshot_restores_into_v2_server_with_bit_identical_answers() {
    // Boot a server, capture its learned epoch, and rewrite the snapshot
    // into the v1 single-domain layout by hand. A fresh server booting
    // from that v1 file must serve bit-identical probabilities, and its
    // own re-save must produce a v2 file that restores identically again.
    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("ltm-e2e-v1mig-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&snap_path);
    let mut cfg = config();
    cfg.snapshot = Some(snap_path.clone());

    let server = Server::start(cfg.clone()).expect("boot");
    let addr = server.addr();
    http_call(addr, "POST", "/claims", Some(&workload_body(10))).unwrap();
    server.trigger_refit();
    wait_for_epoch(addr, 1.0);
    let query = "{\"claims\":[[\"good\",true],[\"spammy\",true]]}";
    let (_, body) = http_call(addr, "POST", "/query", Some(query)).unwrap();
    let served = field_f64(&body, "probability");
    server.shutdown().unwrap();

    // Downgrade the saved v2 snapshot to the v1 on-disk layout: hoist the
    // default domain's fields to the top level and drop v2-only fields.
    let saved = snapshot::load(&snap_path).unwrap();
    let rec = saved.domain(ltm_serve::DEFAULT_DOMAIN).unwrap();
    let triples: Vec<String> = rec
        .triples
        .iter()
        .map(|t| {
            format!(
                "{{\"entity\":{},\"attr\":{},\"source\":{}}}",
                serde_json::to_string(&t.entity).unwrap(),
                serde_json::to_string(&t.attr).unwrap(),
                serde_json::to_string(&t.source).unwrap()
            )
        })
        .collect();
    let acc = rec.accumulator.as_ref().expect("accumulator saved");
    let epoch = rec.epoch.as_ref().expect("epoch saved");
    let v1 = format!(
        "{{\"version\":1,\"shards\":{},\"sources\":{},\"triples\":[{}],\"pending\":{},\
         \"accumulator\":{{\"cells\":{},\"batches_seen\":{},\"watermark\":{}}},\
         \"epoch\":{{\"epoch\":{},\"phi1\":{},\"phi0\":{},\"beta_pos\":{},\"beta_neg\":{},\
         \"default_phi1\":{},\"default_phi0\":{},\"max_rhat\":{},\"converged_fraction\":{},\
         \"trained_claims\":{},\"trained_sources\":{}}}}}",
        rec.shards,
        serde_json::to_string(&rec.sources).unwrap(),
        triples.join(","),
        rec.pending.unwrap(),
        serde_json::to_string(&acc.cells).unwrap(),
        acc.batches_seen,
        acc.watermark,
        epoch.epoch,
        serde_json::to_string(&epoch.phi1).unwrap(),
        serde_json::to_string(&epoch.phi0).unwrap(),
        epoch.beta_pos,
        epoch.beta_neg,
        epoch.default_phi1,
        epoch.default_phi0,
        epoch.max_rhat,
        epoch.converged_fraction,
        epoch.trained_claims,
        epoch.trained_sources,
    );
    std::fs::write(&snap_path, v1).unwrap();

    // Restart from the v1 file: bit-identical answers, same epoch.
    let restarted = Server::start(cfg.clone()).expect("restart from v1");
    let addr2 = restarted.addr();
    let (_, body2) = http_call(addr2, "POST", "/query", Some(query)).unwrap();
    assert_eq!(
        field_f64(&body2, "probability"),
        served,
        "v1 snapshot must restore bit-identical boolean answers"
    );
    // Graceful shutdown re-saves as v2…
    restarted.shutdown().unwrap();
    let resaved = snapshot::load(&snap_path).unwrap();
    assert_eq!(resaved.version, 2, "re-save upgrades the on-disk format");
    // …and the v2 file restores identically once more.
    let again = Server::start(cfg).expect("restart from v2");
    let (_, body3) = http_call(again.addr(), "POST", "/query", Some(query)).unwrap();
    assert_eq!(field_f64(&body3, "probability"), served);
    again.shutdown().unwrap();
    let _ = std::fs::remove_file(&snap_path);
}

#[test]
fn malformed_paths_get_clean_json_errors_on_every_route() {
    let mut cfg = config();
    cfg.domains = vec![("scores".into(), ltm_serve::ModelKind::RealValued)];
    let server = Server::start(cfg).expect("boot");
    let addr = server.addr();
    http_call(addr, "POST", "/claims", Some(&workload_body(2))).unwrap();

    // /facts/{id}: non-numeric, signed, blank, and trailing-junk ids are
    // 400s; digits that cannot name a stored fact are 404s. `+3` MUST NOT
    // alias `/facts/3` (u64::from_str would accept it).
    for bad in [
        "/facts/abc",
        "/facts/-1",
        "/facts/+1",
        "/facts/",
        "/facts/1x",
        "/facts/1/",
    ] {
        let (status, body) = http_call(addr, "GET", bad, None).unwrap();
        assert_eq!(status, 400, "{bad}: {body}");
        assert!(body.contains("error"), "{bad}: {body}");
    }
    for absent in ["/facts/999999", "/facts/99999999999999999999999999"] {
        let (status, body) = http_call(addr, "GET", absent, None).unwrap();
        assert_eq!(status, 404, "{absent}: {body}");
        assert!(body.contains("error"), "{absent}: {body}");
    }
    // Wrong methods are 405s with JSON bodies, not 404 fallthroughs.
    for (method, path) in [
        ("POST", "/healthz"),
        ("POST", "/stats"),
        ("GET", "/claims"),
        ("GET", "/query"),
        ("POST", "/facts/0"),
        ("GET", "/admin/shutdown"),
        ("GET", "/admin/snapshot"),
        ("GET", "/admin/domains"),
        ("POST", "/domains"),
        ("GET", "/d/scores/admin/refit"),
    ] {
        let (status, body) = http_call(addr, method, path, None).unwrap();
        assert_eq!(status, 405, "{method} {path}: {body}");
        assert!(body.contains("error"), "{method} {path}: {body}");
    }
    // Unknown domains and dangling /d/ paths are 404s.
    for path in ["/d/nope/claims", "/d/nope/stats", "/d/scores"] {
        let (status, body) = http_call(addr, "GET", path, None).unwrap();
        assert_eq!(status, 404, "{path}: {body}");
        assert!(body.contains("error"), "{path}: {body}");
    }
    // Kind-mismatched payloads are 400s with actionable messages.
    let (status, body) = http_call(
        addr,
        "POST",
        "/d/scores/claims",
        Some("{\"triples\":[[\"e\",\"a\",\"s\"]]}"),
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("expected 4"), "{body}");
    let (status, body) = http_call(
        addr,
        "POST",
        "/claims",
        Some("{\"triples\":[[\"e\",\"a\",\"s\",0.5]]}"),
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("expected 3"), "{body}");
    let (status, body) = http_call(
        addr,
        "POST",
        "/d/scores/query",
        Some("{\"claims\":[[\"s\",true]]}"),
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("real_valued"), "{body}");
    let (status, body) =
        http_call(addr, "POST", "/query", Some("{\"claims\":[[\"s\",0.5]]}")).unwrap();
    assert_eq!(status, 400, "{body}");
    // Bad domain-creation bodies: invalid kind, invalid name.
    let (status, body) = http_call(
        addr,
        "POST",
        "/admin/domains",
        Some("{\"name\":\"x\",\"kind\":\"gaussian\"}"),
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    let (status, body) = http_call(
        addr,
        "POST",
        "/admin/domains",
        Some("{\"name\":\"has space\",\"kind\":\"boolean\"}"),
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    server.shutdown().unwrap();
}

mod stats_sum_property {
    use super::*;
    use proptest::prelude::*;

    /// The additive `/stats` counters whose per-domain sections must sum
    /// to the global values exactly.
    const ADDITIVE: &[&str] = &[
        "facts",
        "claims",
        "positive_claims",
        "sources",
        "pending",
        "epochs_published",
        "epochs_rejected",
        "refits_started",
        "refits_incremental",
        "refits_full",
        "refits_failed",
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Property: for every additive counter, the global `/stats`
        /// value equals the sum over the per-domain sections — under
        /// arbitrary ingest interleavings across a boolean, a
        /// real-valued, and a positive-only domain.
        #[test]
        fn per_domain_stats_sum_to_global(
            batches in proptest::collection::vec(
                (0usize..3, 0u8..6, 0u8..3, 0u8..4), 1..40),
        ) {
            let mut cfg = config();
            cfg.domains = vec![
                ("scores".into(), ltm_serve::ModelKind::RealValued),
                ("pos".into(), ltm_serve::ModelKind::PositiveOnly),
            ];
            let server = Server::start(cfg).expect("boot");
            let addr = server.addr();
            for (d, e, a, s) in batches {
                let (route, row) = match d {
                    0 => ("/claims".to_string(), format!("[\"e{e}\",\"a{a}\",\"s{s}\"]")),
                    1 => (
                        "/d/scores/claims".to_string(),
                        format!("[\"e{e}\",\"a{a}\",\"s{s}\",0.{s}5]"),
                    ),
                    _ => ("/d/pos/claims".to_string(), format!("[\"e{e}\",\"a{a}\",\"s{s}\"]")),
                };
                let (status, body) =
                    http_call(addr, "POST", &route, Some(&format!("{{\"triples\":[{row}]}}")))
                        .expect("ingest");
                prop_assert_eq!(status, 200, "{}", body);
            }
            let (_, stats) = http_call(addr, "GET", "/stats", None).expect("stats");
            for field in ADDITIVE {
                let global = field_f64(&stats, field);
                let sum: f64 = ["default", "scores", "pos"]
                    .iter()
                    .map(|d| domain_stat(&stats, d, field))
                    .sum();
                prop_assert_eq!(global, sum, "counter {} diverges: {}", field, stats);
            }
            server.shutdown().unwrap();
        }
    }
}

#[test]
fn admin_shutdown_unblocks_waiter() {
    let server = Server::start(config()).expect("boot");
    let addr = server.addr();
    let waiter = {
        let server = Arc::new(server);
        let s = Arc::clone(&server);
        let handle = std::thread::spawn(move || s.wait_for_shutdown_request());
        let (status, _) = http_call(addr, "POST", "/admin/shutdown", None).unwrap();
        assert_eq!(status, 202);
        handle.join().unwrap();
        server
    };
    Arc::try_unwrap(waiter)
        .ok()
        .expect("sole owner")
        .shutdown()
        .unwrap();
}
