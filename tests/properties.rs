//! Property-based tests (proptest) on cross-crate invariants: claim-table
//! construction rules (Definition 3), sampler bookkeeping, metric
//! identities, and score-normalisation guarantees.

use latent_truth::baselines::{all_baselines, TruthMethod, Voting};
use latent_truth::core::priors::BetaPair;
use latent_truth::core::{fit, GibbsCounts, LtmConfig, Priors, SampleSchedule};
use latent_truth::eval::metrics::Confusion;
use latent_truth::eval::roc::auc;
use latent_truth::model::{
    ClaimDb, EntityId, FactId, GroundTruth, RawDatabaseBuilder, TruthAssignment,
};
use proptest::prelude::*;

/// Strategy: a random raw database over small vocabularies (up to 6
/// entities × 5 attributes × 6 sources, up to 40 triples).
fn raw_database() -> impl Strategy<Value = latent_truth::model::RawDatabase> {
    proptest::collection::vec((0u8..6, 0u8..5, 0u8..6), 1..40).prop_map(|triples| {
        let mut b = RawDatabaseBuilder::new();
        for (e, a, s) in triples {
            b.add(&format!("e{e}"), &format!("a{a}"), &format!("s{s}"));
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Definition 3: for every fact there is exactly one claim per source
    /// covering its entity; positives correspond one-to-one to raw rows.
    #[test]
    fn claim_table_construction_invariants(raw in raw_database()) {
        let db = ClaimDb::from_raw(&raw);

        // (1) positive claims == raw rows (rows are deduplicated).
        prop_assert_eq!(db.num_positive_claims(), raw.len());

        // (2) every fact of an entity has claims from exactly the sources
        // covering that entity.
        for e in db.entity_ids() {
            let facts = db.facts_of_entity(e);
            let cover: std::collections::BTreeSet<_> =
                db.fact_claim_sources(facts[0]).iter().copied().collect();
            for &f in facts {
                let here: std::collections::BTreeSet<_> =
                    db.fact_claim_sources(f).iter().copied().collect();
                prop_assert_eq!(&here, &cover, "fact {} differs from sibling", f);
            }
        }

        // (3) claim_fact is the inverse of the fact ranges.
        for f in db.fact_ids() {
            for i in db.fact_claim_range(f) {
                prop_assert_eq!(db.claim_fact(ltm_claim(i)), f);
            }
        }
    }

    /// The sampler's incremental confusion counts always equal counts
    /// recomputed from scratch, for arbitrary label vectors — and the
    /// structural invariants hold at every step of the flip sequence:
    /// the grand total stays pinned at the claim count, and each source's
    /// label totals always sum to its claim count.
    #[test]
    fn gibbs_counts_consistency(raw in raw_database(), flips in proptest::collection::vec(any::<bool>(), 64)) {
        let db = ClaimDb::from_raw(&raw);
        let mut labels = vec![false; db.num_facts()];
        let mut counts = GibbsCounts::from_labels(&db, &labels);
        let claims_per_source: Vec<usize> =
            db.source_ids().map(|s| db.claims_of_source(s).len()).collect();
        for (i, &flip) in flips.iter().enumerate() {
            if db.num_facts() == 0 { break; }
            let f = FactId::from_usize(i % db.num_facts());
            if flip {
                let old = labels[f.index()];
                labels[f.index()] = !old;
                for (s, o) in db.claims_of_fact(f) {
                    counts.flip(s, old, o);
                }
            }
            // Invariants after every step, not only at the end.
            prop_assert_eq!(counts.total(), db.num_claims() as u64);
            for s in db.source_ids() {
                prop_assert_eq!(
                    (counts.label_total(s, true) + counts.label_total(s, false)) as usize,
                    claims_per_source[s.index()],
                    "source {} label totals drifted", s
                );
            }
        }
        prop_assert_eq!(counts, GibbsCounts::from_labels(&db, &labels));
    }

    /// The cached log-ratio kernel is bit-identical to the reference
    /// log-space kernel on arbitrary databases and seeds — the tentpole
    /// parity guarantee, checked property-style.
    #[test]
    fn cached_kernel_parity_on_random_inputs(raw in raw_database(), seed in 0u32..1000) {
        let db = ClaimDb::from_raw(&raw);
        let base = LtmConfig {
            priors: Priors {
                alpha0: BetaPair::new(1.0, 10.0),
                alpha1: BetaPair::new(2.0, 2.0),
                beta: BetaPair::new(1.0, 1.0),
            },
            schedule: SampleSchedule::new(30, 5, 0),
            seed: seed as u64,
            arithmetic: latent_truth::core::Arithmetic::LogSpace,
        };
        let reference = fit(&db, &base);
        let cached = fit(&db, &LtmConfig {
            arithmetic: latent_truth::core::Arithmetic::CachedLog,
            ..base
        });
        prop_assert_eq!(reference.truth, cached.truth);
        prop_assert_eq!(
            reference.diagnostics.flips_per_iteration,
            cached.diagnostics.flips_per_iteration
        );
    }

    /// Metric identities hold for arbitrary confusion matrices.
    #[test]
    fn metric_identities(tp in 0usize..50, fp in 0usize..50, fn_ in 0usize..50, tn in 0usize..50) {
        let c = Confusion { tp, fp, fn_, tn };
        let m = c.metrics();
        // Accuracy identity.
        if c.total() > 0 {
            prop_assert!((m.accuracy - (tp + tn) as f64 / c.total() as f64).abs() < 1e-12);
        }
        // Everything is a probability.
        for v in [m.precision, m.recall, m.fpr, m.accuracy, m.f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // F1 between min and max of precision/recall.
        if tp + fp > 0 && tp + fn_ > 0 && m.precision + m.recall > 0.0 {
            prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-12);
            prop_assert!(m.f1 >= m.precision.min(m.recall) - 1e-12);
        }
    }

    /// Every method returns a probability per fact, for arbitrary inputs.
    #[test]
    fn all_methods_produce_probabilities(raw in raw_database()) {
        let db = ClaimDb::from_raw(&raw);
        for method in all_baselines() {
            let t = method.infer(&db);
            prop_assert_eq!(t.len(), db.num_facts(), "{}", method.name());
            for f in db.fact_ids() {
                let p = t.prob(f);
                prop_assert!((0.0..=1.0).contains(&p), "{}: p = {}", method.name(), p);
            }
        }
    }

    /// AUC is invariant under strictly monotone score transforms.
    #[test]
    fn auc_rank_invariance(scores in proptest::collection::vec(0.0f64..1.0, 4..20)) {
        let mut gt = GroundTruth::new();
        for i in 0..scores.len() {
            gt.insert(EntityId::new(0), FactId::from_usize(i), i % 2 == 0);
        }
        let a1 = auc(&gt, &TruthAssignment::new(scores.clone()));
        // Monotone transform x -> x/2 + x^2/4 (strictly increasing on [0,1],
        // range within [0, 0.75]).
        let transformed: Vec<f64> = scores.iter().map(|&x| x / 2.0 + x * x / 4.0).collect();
        let a2 = auc(&gt, &TruthAssignment::new(transformed));
        prop_assert!((a1 - a2).abs() < 1e-9);
    }

    /// LTM is seed-deterministic and bounded on arbitrary small inputs.
    #[test]
    fn ltm_deterministic_on_random_inputs(raw in raw_database()) {
        let db = ClaimDb::from_raw(&raw);
        let cfg = LtmConfig {
            priors: Priors {
                alpha0: BetaPair::new(1.0, 10.0),
                alpha1: BetaPair::new(2.0, 2.0),
                beta: BetaPair::new(1.0, 1.0),
            },
            schedule: SampleSchedule::new(30, 5, 0),
            seed: 99,
            arithmetic: Default::default(),
        };
        let a = fit(&db, &cfg);
        let b = fit(&db, &cfg);
        prop_assert_eq!(a.truth, b.truth);
    }

    /// Voting score equals positive fraction — cross-checked against the
    /// claim-table accessors for arbitrary databases.
    #[test]
    fn voting_definition(raw in raw_database()) {
        let db = ClaimDb::from_raw(&raw);
        let t = Voting.infer(&db);
        for f in db.fact_ids() {
            let total = db.fact_claim_range(f).len();
            let pos = db.positive_count(f);
            prop_assert!((t.prob(f) - pos as f64 / total as f64).abs() < 1e-12);
        }
    }

    /// Every database built from raw triples passes the structural
    /// validator.
    #[test]
    fn constructed_databases_validate(raw in raw_database()) {
        let db = ClaimDb::from_raw(&raw);
        let violations = latent_truth::model::validate::check(&db);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// Triple files round-trip for arbitrary field content, including
    /// separators, quotes, unicode, and blank-ish strings.
    #[test]
    fn csv_roundtrip_arbitrary_strings(
        triples in proptest::collection::vec(
            ("[a-zA-Z0-9 ,\"\\-–é中]{1,12}", "[a-zA-Z0-9 ,\"\\-]{1,12}", "[a-zA-Z0-9.]{1,8}"),
            1..15,
        )
    ) {
        use latent_truth::model::io::{read_triples, write_triples};
        let mut b = RawDatabaseBuilder::new();
        for (e, a, s) in &triples {
            b.add(e, a, s);
        }
        let raw = b.build();
        let mut buf = Vec::new();
        write_triples(&raw, &mut buf).expect("write");
        let back = read_triples(std::io::Cursor::new(buf)).expect("read");
        let mut orig: Vec<_> = raw.iter_named().collect();
        let mut got: Vec<_> = back.iter_named().collect();
        orig.sort();
        got.sort();
        prop_assert_eq!(orig, got);
    }

    /// Equation 3 (LTMinc) matches the exact single-fact posterior when
    /// quality is known: for one fact with arbitrary claims, the
    /// closed-form predictor and direct Bayes computation agree.
    #[test]
    fn equation3_matches_direct_bayes(
        observations in proptest::collection::vec(any::<bool>(), 1..6),
        sens in proptest::collection::vec(0.05f64..0.95, 6),
        fpr in proptest::collection::vec(0.05f64..0.95, 6),
    ) {
        use latent_truth::core::priors::{BetaPair, Priors};
        use latent_truth::core::{IncrementalLtm, SourceQuality};
        use latent_truth::model::{AttrId, Claim, EntityId, Fact};

        // One fact, |observations| sources.
        let facts = vec![Fact { entity: EntityId::new(0), attr: AttrId::new(0) }];
        let claims: Vec<Claim> = observations
            .iter()
            .enumerate()
            .map(|(s, &o)| Claim {
                fact: FactId::new(0),
                source: latent_truth::model::SourceId::from_usize(s),
                observation: o,
            })
            .collect();
        let db = ClaimDb::from_parts(facts, claims, observations.len());

        // Build a quality table through the public API (weak-prior MAP
        // estimation on a small labeled training set), then check that the
        // predictor's output equals the direct Bayes computation with that
        // same table — Equation 3 verbatim.
        let beta = BetaPair::new(2.0, 3.0);
        let weak = Priors {
            alpha0: BetaPair::new(1e-7, 1e-7),
            alpha1: BetaPair::new(1e-7, 1e-7),
            beta,
        };
        let n = observations.len();
        let mut tmp_facts = Vec::new();
        let mut tmp_claims = Vec::new();
        let mut probs = Vec::new();
        for i in 0..(2 * n) {
            tmp_facts.push(Fact { entity: EntityId::from_usize(i), attr: AttrId::new(0) });
            probs.push(if i % 2 == 0 { 1.0 } else { 0.0 });
        }
        for s in 0..n {
            for i in 0..(2 * n) {
                tmp_claims.push(Claim {
                    fact: FactId::from_usize(i),
                    source: latent_truth::model::SourceId::from_usize(s),
                    // Deterministic stand-in for the planted rates: assert
                    // true facts iff sens[s] > 0.5, false iff fpr[s] > 0.5.
                    observation: if i % 2 == 0 { sens[s] > 0.5 } else { fpr[s] > 0.5 },
                });
            }
        }
        let train = ClaimDb::from_parts(tmp_facts, tmp_claims, n);
        let posterior = latent_truth::model::TruthAssignment::new(probs);
        let quality = SourceQuality::estimate(&train, &posterior, &weak);
        let predictor = IncrementalLtm::new(&quality, &weak);
        let got = predictor.predict(&db).prob(FactId::new(0));

        // Oracle: direct Bayes with the same quality table.
        let clamp = |p: f64| p.clamp(1e-9, 1.0 - 1e-9);
        let mut log_odds = (beta.pos / beta.neg).ln();
        for (s, &o) in observations.iter().enumerate() {
            let sid = latent_truth::model::SourceId::from_usize(s);
            let p1 = clamp(quality.sensitivity(sid));
            let p0 = clamp(1.0 - quality.specificity(sid));
            log_odds += if o { (p1 / p0).ln() } else { ((1.0 - p1) / (1.0 - p0)).ln() };
        }
        let expected = 1.0 / (1.0 + (-log_odds).exp());
        prop_assert!((got - expected).abs() < 1e-9, "got {got}, expected {expected}");
    }
}

fn ltm_claim(i: usize) -> latent_truth::model::ClaimId {
    latent_truth::model::ClaimId::from_usize(i)
}
