//! End-to-end tests of the event-loop front end's new surface: the
//! `POST …/query/batch` endpoint (empty, oversize, mixed known/unknown,
//! `?methods=all` parity with single queries), HTTP/1.1 keep-alive reuse
//! and its counters, and pipelined-request ordering.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use latent_truth::core::{LtmConfig, SampleSchedule};
use ltm_serve::http::{http_call, HttpClient};
use ltm_serve::refit::RefitConfig;
use ltm_serve::server::{ServeConfig, Server};
use serde::Value;
use serde_json::from_str;

/// Test-speed server config: tiny schedule, manual refit triggers only.
fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 3,
        threads: 3,
        refit: RefitConfig {
            ltm: LtmConfig {
                schedule: SampleSchedule::new(60, 20, 1),
                ..LtmConfig::default()
            },
            chains: 2,
            rhat_gate: 2.0,
            min_pending: usize::MAX,
            interval: Duration::from_millis(20),
            ..RefitConfig::default()
        },
        snapshot: None,
        ..ServeConfig::default()
    }
}

fn workload_body(entities: usize) -> String {
    let mut triples = Vec::new();
    for e in 0..entities {
        triples.push(format!("[\"e{e}\",\"a0\",\"good\"]"));
        triples.push(format!("[\"e{e}\",\"a1\",\"good\"]"));
        triples.push(format!("[\"e{e}\",\"a0\",\"lazy\"]"));
        triples.push(format!("[\"e{e}\",\"junk\",\"spammy\"]"));
    }
    format!("{{\"triples\":[{}]}}", triples.join(","))
}

fn parse(body: &str) -> Value {
    from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn field_f64(value: &Value, name: &str) -> f64 {
    value
        .get_field(name)
        .unwrap_or_else(|| panic!("no field {name} in {value:?}"))
        .as_f64()
        .unwrap_or_else(|| panic!("field {name} is not a number"))
}

fn results<'a>(value: &'a Value, body: &str) -> &'a [Value] {
    match value.get_field("results") {
        Some(Value::Array(items)) => items,
        other => panic!("no results array in {body} ({other:?})"),
    }
}

/// Boots a server with an ingested workload and one published epoch.
fn boot_with_epoch() -> Server {
    let server = Server::start(config()).expect("boot");
    let addr = server.addr();
    let (status, body) = http_call(addr, "POST", "/claims", Some(&workload_body(10))).unwrap();
    assert_eq!(status, 200, "{body}");
    server.trigger_refit();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = http_call(addr, "GET", "/stats", None).expect("stats");
        if field_f64(&parse(&body), "epoch") >= 1.0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "no epoch: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
    server
}

#[test]
fn empty_batch_is_a_valid_no_op() {
    let server = Server::start(config()).expect("boot");
    let (status, body) = http_call(
        server.addr(),
        "POST",
        "/query/batch",
        Some("{\"queries\":[]}"),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let value = parse(&body);
    assert_eq!(field_f64(&value, "count"), 0.0, "{body}");
    assert!(results(&value, &body).is_empty(), "{body}");
    server.shutdown().unwrap();
}

#[test]
fn oversize_batch_is_rejected_with_413_before_the_body_uploads() {
    let server = Server::start(config()).expect("boot");
    // Announce a body over MAX_BODY and send none of it: the front end
    // must reject from the head alone, without waiting for 17 MiB.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "POST /query/batch HTTP/1.1\r\nHost: ltm\r\nContent-Length: {}\r\n\r\n",
        17 * 1024 * 1024
    )
    .unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 413"),
        "expected 413, got: {text}"
    );
    server.shutdown().unwrap();
}

#[test]
fn batch_resolves_known_and_unknown_sources_per_item() {
    let server = boot_with_epoch();
    let body = "{\"queries\":[[[\"good\",true],[\"lazy\",false]],[[\"ghost\",true]],[]]}";
    let (status, body) = http_call(server.addr(), "POST", "/query/batch", Some(body)).unwrap();
    assert_eq!(status, 200, "{body}");
    let value = parse(&body);
    assert_eq!(field_f64(&value, "count"), 3.0, "{body}");
    let items = results(&value, &body);
    let unknowns = |item: &Value| match item.get_field("unknown_sources") {
        Some(Value::Array(names)) => names.len(),
        other => panic!("no unknown_sources in {other:?}"),
    };
    // Known sources resolve; the unknown one is reported, not an error;
    // an empty claims list still scores (the prior).
    assert_eq!(unknowns(&items[0]), 0, "{body}");
    assert_eq!(unknowns(&items[1]), 1, "{body}");
    assert!(body.contains("\"ghost\""), "{body}");
    for item in items {
        let p = field_f64(item, "probability");
        assert!((0.0..=1.0).contains(&p), "{body}");
    }
    server.shutdown().unwrap();
}

#[test]
fn batch_methods_all_matches_n_single_queries_on_one_epoch() {
    let server = boot_with_epoch();
    let addr = server.addr();
    let claim_sets = [
        "[[\"good\",true],[\"lazy\",false]]",
        "[[\"good\",true],[\"spammy\",true]]",
        "[[\"lazy\",true]]",
    ];
    let batch_body = format!("{{\"queries\":[{}]}}", claim_sets.join(","));
    let (status, batch) =
        http_call(addr, "POST", "/query/batch?methods=all", Some(&batch_body)).unwrap();
    assert_eq!(status, 200, "{batch}");
    let batch_value = parse(&batch);
    let batch_epoch = field_f64(&batch_value, "epoch");
    let items = results(&batch_value, &batch);
    assert_eq!(items.len(), claim_sets.len(), "{batch}");

    for (claims, item) in claim_sets.iter().zip(items) {
        let single_body = format!("{{\"claims\":{claims}}}");
        let (status, single) =
            http_call(addr, "POST", "/query?methods=all", Some(&single_body)).unwrap();
        assert_eq!(status, 200, "{single}");
        let single_value = parse(&single);
        // Same epoch answered both (no refit is armed), so every score
        // must agree exactly.
        assert_eq!(field_f64(&single_value, "epoch"), batch_epoch, "{single}");
        assert_eq!(
            field_f64(&single_value, "probability"),
            field_f64(item, "probability"),
            "{single} vs {batch}"
        );
        let (Some(Value::Object(single_methods)), Some(Value::Object(batch_methods))) =
            (single_value.get_field("methods"), item.get_field("methods"))
        else {
            panic!("missing methods maps: {single} vs {batch}");
        };
        assert_eq!(single_methods.len(), batch_methods.len(), "{batch}");
        assert!(
            single_methods.len() >= 3,
            "methods=all is a panel: {single}"
        );
        for (name, score) in single_methods {
            let batch_score = batch_methods
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("method {name} missing from batch item: {batch}"));
            assert_eq!(
                score.as_f64(),
                batch_score.as_f64(),
                "method {name}: {single} vs {batch}"
            );
        }
    }
    server.shutdown().unwrap();
}

#[test]
fn pipelined_requests_answer_in_request_order() {
    let server = boot_with_epoch();
    let mut client = HttpClient::new(server.addr()).unwrap();
    // Each request names a distinct unknown source, so each response is
    // attributable: response i must echo marker i.
    let bodies: Vec<String> = (0..8)
        .map(|i| format!("{{\"claims\":[[\"pipeline-marker-{i}\",true]]}}"))
        .collect();
    let requests: Vec<(&str, &str, Option<&str>)> = bodies
        .iter()
        .map(|b| ("POST", "/query", Some(b.as_str())))
        .collect();
    let responses = client.pipeline(&requests).expect("pipeline");
    assert_eq!(responses.len(), bodies.len());
    for (i, (status, body)) in responses.iter().enumerate() {
        assert_eq!(*status, 200, "{body}");
        assert!(
            body.contains(&format!("\"pipeline-marker-{i}\"")),
            "response {i} out of order: {body}"
        );
    }
    server.shutdown().unwrap();
}

#[test]
fn keepalive_reuse_shows_in_stats_and_metrics() {
    if !ltm_serve::event_loop::SUPPORTED {
        return; // the blocking fallback closes per request by design
    }
    let server = Server::start(config()).expect("boot");
    let addr = server.addr();
    let mut client = HttpClient::new(addr).unwrap();
    for _ in 0..5 {
        let (status, body) = client.call("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "{body}");
    }
    assert!(client.is_connected(), "keep-alive connection was dropped");

    // The parked keep-alive connection is visible in the gauge, and the
    // 4 follow-up requests on it counted as reuses — on both surfaces.
    let (status, stats) = http_call(addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200, "{stats}");
    let value = parse(&stats);
    assert!(field_f64(&value, "open_connections") >= 1.0, "{stats}");
    assert!(field_f64(&value, "keepalive_reuses") >= 4.0, "{stats}");

    let (status, metrics) = http_call(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let reuse_line = metrics
        .lines()
        .find(|l| l.starts_with("ltm_keepalive_reuse_total"))
        .unwrap_or_else(|| panic!("no ltm_keepalive_reuse_total in metrics"));
    let reuses: f64 = reuse_line
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert!(reuses >= 4.0, "{reuse_line}");
    assert!(
        metrics
            .lines()
            .any(|l| l.starts_with("ltm_open_connections")),
        "no ltm_open_connections in metrics"
    );
    server.shutdown().unwrap();
}

#[test]
fn batch_queries_count_into_the_size_histogram() {
    let server = Server::start(config()).expect("boot");
    let addr = server.addr();
    for queries in ["{\"queries\":[]}", "{\"queries\":[[],[]]}"] {
        let (status, body) = http_call(addr, "POST", "/query/batch", Some(queries)).unwrap();
        assert_eq!(status, 200, "{body}");
    }
    let (_, stats) = http_call(addr, "GET", "/stats", None).unwrap();
    assert_eq!(field_f64(&parse(&stats), "batch_queries"), 2.0, "{stats}");
    let (_, metrics) = http_call(addr, "GET", "/metrics", None).unwrap();
    let count_line = metrics
        .lines()
        .find(|l| l.starts_with("ltm_batch_query_size_count"))
        .unwrap_or_else(|| panic!("no ltm_batch_query_size_count in metrics"));
    assert!(count_line.ends_with(" 2"), "{count_line}");
    server.shutdown().unwrap();
}
