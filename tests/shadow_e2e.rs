//! End-to-end tests of the shadow-predictor ensemble: ingest over HTTP,
//! let a promoted refit publish the shadow tables, and verify that
//! `?methods=all` answers match offline fits on the same extraction;
//! then prove the tables survive a snapshot round trip bit-identically
//! and that pre-shadow v2 snapshots still load.

use std::time::{Duration, Instant};

use latent_truth::core::LtmConfig;
use latent_truth::core::SampleSchedule;
use latent_truth::model::SourceId;
use ltm_serve::http::http_call;
use ltm_serve::refit::RefitConfig;
use ltm_serve::server::{ServeConfig, Server};
use ltm_serve::shadow::{self, score_claims};
use ltm_serve::snapshot;
use serde_json::from_str;

/// Test-speed server config with an always-promoting gate, so the first
/// refit is guaranteed to publish shadow tables.
fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 3,
        threads: 3,
        refit: RefitConfig {
            ltm: LtmConfig {
                schedule: SampleSchedule::new(60, 20, 1),
                ..LtmConfig::default()
            },
            chains: 2,
            rhat_gate: 1e9,
            min_pending: usize::MAX,
            interval: Duration::from_millis(20),
            ..RefitConfig::default()
        },
        snapshot: None,
        ..ServeConfig::default()
    }
}

/// The conflicting-source workload of `serve_e2e`: `good` asserts two
/// attributes per entity, `lazy` one, `spammy` a junk attribute.
fn workload_body(entities: usize) -> String {
    let mut triples = Vec::new();
    for e in 0..entities {
        triples.push(format!("[\"e{e}\",\"a0\",\"good\"]"));
        triples.push(format!("[\"e{e}\",\"a1\",\"good\"]"));
        triples.push(format!("[\"e{e}\",\"a0\",\"lazy\"]"));
        triples.push(format!("[\"e{e}\",\"junk\",\"spammy\"]"));
    }
    format!("{{\"triples\":[{}]}}", triples.join(","))
}

fn field_f64(body: &str, name: &str) -> f64 {
    let value: serde::Value = from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"));
    let field = value
        .get_field(name)
        .unwrap_or_else(|| panic!("no field {name} in {body}"));
    field
        .as_f64()
        .unwrap_or_else(|| panic!("field {name} is not a number: {field:?}"))
}

/// Extracts `methods.<wire>` from a `?methods=` response.
fn method_score(body: &str, wire: &str) -> f64 {
    let value: serde::Value = from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"));
    value
        .get_field("methods")
        .and_then(|m| m.get_field(wire))
        .and_then(serde::Value::as_f64)
        .unwrap_or_else(|| panic!("no methods.{wire} in {body}"))
}

fn wait_for_epoch(addr: std::net::SocketAddr, at_least: f64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = http_call(addr, "GET", "/stats", None).expect("stats");
        assert_eq!(status, 200, "{body}");
        if field_f64(&body, "epoch") >= at_least {
            return;
        }
        assert!(Instant::now() < deadline, "no epoch ≥ {at_least}: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn methods_all_matches_offline_fits_on_the_same_extraction() {
    let server = Server::start(config()).expect("boot");
    let addr = server.addr();

    let (status, body) = http_call(addr, "POST", "/claims", Some(&workload_body(12))).unwrap();
    assert_eq!(status, 200, "{body}");

    // Before the first promoted refit, shadow methods answer 409 but the
    // LTM-only request works against the boot epoch.
    let query = "{\"claims\":[[\"good\",true],[\"lazy\",false],[\"spammy\",true]]}";
    let (status, body) = http_call(addr, "POST", "/query?methods=all", Some(query)).unwrap();
    assert_eq!(status, 409, "shadow query before any refit: {body}");
    let (status, _) = http_call(addr, "POST", "/query?methods=ltm", Some(query)).unwrap();
    assert_eq!(status, 200);

    server.trigger_refit();
    wait_for_epoch(addr, 1.0);

    // The published tables must equal an offline fit on the same
    // extraction, bit for bit: same merged batches, same predictor.
    let snap = server.predictor().load();
    let published = snap.shadow.as_deref().expect("shadow tables published");
    let store = server.store();
    let (full, globals) = store.full_databases_with_ids();
    let ltm = snap.predictor.as_boolean().cloned().expect("boolean epoch");
    let offline = shadow::fit_shadow_tables(&full.batches, &globals, &ltm, None);
    assert_eq!(
        &offline, published,
        "published tables drifted from an offline fit"
    );
    assert_eq!(
        published.methods.len(),
        1 + ltm_baselines::all_baselines().len()
    );
    assert_eq!(published.num_facts(), 3 * 12); // a0, a1, junk per entity

    // `?methods=all` per-method answers reproduce the library scoring
    // exactly: Equation 3 for LTM, the trust-weighted vote for each
    // baseline, and the rank-average ensemble of all of them.
    let (status, body) = http_call(addr, "POST", "/query?methods=all", Some(query)).unwrap();
    assert_eq!(status, 200, "{body}");
    let claims: Vec<(SourceId, bool)> = [("good", true), ("lazy", false), ("spammy", true)]
        .iter()
        .map(|&(name, o)| (store.source_id(name).expect(name), o))
        .collect();

    let ltm_expect = snap.predictor.predict_fact(&claims);
    assert_eq!(method_score(&body, "ltm"), ltm_expect, "{body}");
    assert_eq!(field_f64(&body, "probability"), ltm_expect, "{body}");

    let mut per_method = vec![ltm_expect];
    for column in published.methods.iter().skip(1) {
        let expect = score_claims(&column.trust, &claims);
        let wire = shadow::wire_name(&column.name);
        assert_eq!(method_score(&body, &wire), expect, "method {wire}: {body}");
        per_method.push(expect);
    }
    let ensemble_expect = published.ensemble_of(&per_method);
    assert_eq!(method_score(&body, "ensemble"), ensemble_expect, "{body}");

    // Subset requests answer exactly the requested methods.
    let (status, body) = http_call(addr, "POST", "/query?methods=voting", Some(query)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        method_score(&body, "voting"),
        per_method[published
            .methods
            .iter()
            .position(|c| c.name == "Voting")
            .unwrap()]
    );

    // Unknown methods are a client error, not a panic.
    let (status, body) = http_call(addr, "POST", "/query?methods=oracle", Some(query)).unwrap();
    assert_eq!(status, 400, "{body}");

    server.shutdown().expect("clean shutdown");
}

#[test]
fn snapshot_round_trips_shadow_tables_bit_identically() {
    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("ltm-shadow-e2e-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&snap_path);

    let mut cfg = config();
    cfg.snapshot = Some(snap_path.clone());
    let server = Server::start(cfg.clone()).expect("boot");
    let addr = server.addr();
    let (status, _) = http_call(addr, "POST", "/claims", Some(&workload_body(8))).unwrap();
    assert_eq!(status, 200);
    server.trigger_refit();
    wait_for_epoch(addr, 1.0);

    let query = "{\"claims\":[[\"good\",true],[\"lazy\",false]]}";
    let (status, before) = http_call(addr, "POST", "/query?methods=all", Some(query)).unwrap();
    assert_eq!(status, 200, "{before}");

    server.save_snapshot(&snap_path).unwrap();
    let saved = snapshot::load(&snap_path).unwrap();
    let rec = saved
        .domain(ltm_serve::DEFAULT_DOMAIN)
        .and_then(|d| d.epoch.as_ref())
        .expect("epoch saved");
    let shadow_rec = rec.shadow.as_ref().expect("shadow tables saved");
    assert_eq!(
        shadow_rec.methods.len(),
        1 + ltm_baselines::all_baselines().len()
    );
    server.shutdown().expect("clean shutdown");

    // Restart from the snapshot: the restored server must answer the
    // same `?methods=all` query with a byte-identical body (scores are
    // persisted as raw f64 and re-assembled deterministically).
    let restored = Server::start(cfg.clone()).expect("boot from snapshot");
    let addr = restored.addr();
    let (status, after) = http_call(addr, "POST", "/query?methods=all", Some(query)).unwrap();
    assert_eq!(status, 200, "{after}");
    assert_eq!(
        before, after,
        "shadow answers changed across a snapshot round trip"
    );
    restored.shutdown().expect("clean shutdown");

    // A v2 snapshot *without* the shadow section (pre-shadow files)
    // still loads: plain queries serve the restored epoch, shadow
    // queries answer 409.
    let mut stripped = snapshot::load(&snap_path).unwrap();
    for d in &mut stripped.domains {
        if let Some(e) = &mut d.epoch {
            e.shadow = None;
        }
    }
    std::fs::write(&snap_path, serde_json::to_string(&stripped).unwrap()).unwrap();
    let legacy = Server::start(cfg).expect("boot from pre-shadow snapshot");
    let addr = legacy.addr();
    let (status, body) = http_call(addr, "POST", "/query", Some(query)).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = http_call(addr, "POST", "/query?methods=all", Some(query)).unwrap();
    assert_eq!(
        status, 409,
        "pre-shadow snapshot must serve 409 for shadow methods: {body}"
    );
    legacy.shutdown().expect("clean shutdown");

    let _ = std::fs::remove_file(&snap_path);
}
