//! Observability-layer tests: histogram quantile bracketing under
//! adversarial streams (proptest), lock-free recording under thread
//! contention, `GET /metrics` exposition-format validity, and the
//! `/stats` ↔ `/metrics` single-registry contract — both surfaces must
//! report the same counters because they read the same atomics.

use std::sync::Arc;
use std::time::Duration;

use ltm_serve::http::http_call;
use ltm_serve::refit::RefitConfig;
use ltm_serve::server::{ServeConfig, Server};
use ltm_serve::wal::WalConfig;
use ltm_serve::Histogram;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Histogram properties
// ---------------------------------------------------------------------------

/// Largest value a histogram stores without clamping (2^40 − 1).
const CLAMP: u64 = (1u64 << 40) - 1;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any stream — including values past the clamp point and
    /// pathological all-equal or two-spike shapes — every quantile's
    /// bucket bounds bracket the exact nearest-rank quantile of the
    /// (clamped) stream.
    #[test]
    fn quantile_bounds_bracket_truth(values in proptest::collection::vec(any::<u64>(), 1..300)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted: Vec<u64> = values.iter().map(|&v| v.min(CLAMP)).collect();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let truth = sorted[((sorted.len() - 1) as f64 * q).round() as usize];
            let (lo, hi) = h.quantile_bounds(q);
            prop_assert!(lo <= truth && truth <= hi, "q={q} truth={truth} [{lo},{hi}]");
        }
        prop_assert_eq!(h.count(), values.len() as u64);
    }
}

/// Eight threads hammering one histogram: no recorded observation is
/// lost, and the sum matches the exact arithmetic total.
#[test]
fn concurrent_recording_loses_no_counts() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread");
    }
    let n = THREADS * PER_THREAD;
    assert_eq!(h.count(), n);
    assert_eq!(h.sum(), n * (n - 1) / 2);
    let (lo, hi) = h.quantile_bounds(0.5);
    let truth = (n - 1) / 2; // nearest-rank median of 0..n
    assert!(lo <= truth && truth <= hi, "median [{lo},{hi}] vs {truth}");
}

// ---------------------------------------------------------------------------
// HTTP surface
// ---------------------------------------------------------------------------

/// Test-speed server config (no background refits).
fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        threads: 2,
        refit: RefitConfig {
            min_pending: usize::MAX,
            interval: Duration::from_millis(20),
            ..RefitConfig::default()
        },
        snapshot: None,
        ..ServeConfig::default()
    }
}

/// Extracts a JSON number field from a flat response body.
fn field_f64(body: &str, name: &str) -> f64 {
    let value: serde::Value =
        serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"));
    value
        .get_field(name)
        .and_then(serde::Value::as_f64)
        .unwrap_or_else(|| panic!("no numeric field {name} in {body}"))
}

/// Splits one exposition line into `(name, labels, value)`, panicking if
/// it does not have the `name{labels} value` shape.
fn parse_line(line: &str) -> (&str, &str, f64) {
    let (lhs, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("no value: {line}"));
    let value: f64 = value
        .parse()
        .unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
    let (name, labels) = match lhs.split_once('{') {
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unclosed label set: {line}"));
            (name, labels)
        }
        None => (lhs, ""),
    };
    (name, labels, value)
}

/// Finds `family{labels}` in an exposition body.
fn metric_value(body: &str, family: &str, labels: &str) -> f64 {
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        let (name, have, value) = parse_line(line);
        if name == family && have == labels {
            return value;
        }
    }
    panic!("metric {family}{{{labels}}} not found in:\n{body}");
}

/// Every non-comment `/metrics` line must parse as `name{labels} value`
/// with a legal metric name and well-formed label pairs; every comment
/// must be a `# TYPE` header naming a known metric kind.
#[test]
fn metrics_exposition_is_well_formed() {
    let dir = std::env::temp_dir().join(format!("ltm-obs-exposition-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = config();
    cfg.wal = Some(WalConfig::new(dir.clone()));
    let server = Server::start(cfg).expect("boot");
    let addr = server.addr();
    // Touch a few endpoints so request histograms have series.
    let body = "{\"triples\":[[\"e0\",\"a0\",\"s0\"],[\"e0\",\"a1\",\"s1\"]]}";
    let (status, _) = http_call(addr, "POST", "/claims", Some(body)).unwrap();
    assert_eq!(status, 200);
    let (status, _) =
        http_call(addr, "POST", "/query", Some("{\"claims\":[[\"s0\",true]]}")).unwrap();
    assert_eq!(status, 200);
    let (status, _) = http_call(addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);

    let (status, metrics) = http_call(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200, "{metrics}");
    let mut samples = 0usize;
    for line in metrics.lines() {
        if let Some(header) = line.strip_prefix("# ") {
            let parts: Vec<&str> = header.split(' ').collect();
            assert_eq!(parts.len(), 3, "comment is not a TYPE header: {line}");
            assert_eq!(parts[0], "TYPE", "{line}");
            assert!(
                matches!(parts[2], "counter" | "gauge" | "summary"),
                "unknown metric kind: {line}"
            );
            continue;
        }
        let (name, labels, value) = parse_line(line);
        assert!(
            name.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
            "bad name start: {line}"
        );
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad name char: {line}"
        );
        if !labels.is_empty() {
            for pair in labels.split("\",") {
                let (key, val) = pair
                    .split_once("=\"")
                    .unwrap_or_else(|| panic!("bad label pair {pair:?} in {line}"));
                assert!(
                    !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "bad label key in {line}"
                );
                // Values may keep a trailing quote (last pair); no bare quotes inside.
                assert!(
                    !val.trim_end_matches('"').contains('"'),
                    "unescaped quote: {line}"
                );
            }
        }
        assert!(value.is_finite(), "non-finite sample: {line}");
        samples += 1;
    }
    assert!(samples >= 30, "suspiciously few samples:\n{metrics}");
    // The families the issue promises are all present.
    for family in [
        "ltm_http_requests_total",
        "ltm_http_requests_in_flight",
        "ltm_http_request_duration_seconds_count",
        "ltm_build_info",
        "ltm_uptime_seconds",
        "ltm_store_facts",
        "ltm_epoch_age_seconds",
        "ltm_refit_phase_duration_seconds_count",
        "ltm_wal_append_duration_seconds_count",
        "ltm_ingest_batch_rows_count",
    ] {
        assert!(
            metrics.lines().any(|l| parse_line_name(l) == Some(family)),
            "family {family} missing from:\n{metrics}"
        );
    }
    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `parse_line` for sample lines only (None for comments).
fn parse_line_name(line: &str) -> Option<&str> {
    if line.starts_with('#') {
        return None;
    }
    Some(parse_line(line).0)
}

/// `/stats` and `/metrics` read the same registry: the request counter,
/// store gauges, and WAL counters agree across both surfaces, the
/// per-endpoint histogram counts sum to the request total within one
/// scrape body, and uptime/build info are exposed on both.
#[test]
fn stats_and_metrics_share_one_registry() {
    let dir = std::env::temp_dir().join(format!("ltm-obs-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = config();
    cfg.wal = Some(WalConfig::new(dir.clone()));
    let server = Server::start(cfg).expect("boot");
    let addr = server.addr();

    // 1 ingest + 3 queries + 1 health probe = 5 requests.
    let body =
        "{\"triples\":[[\"e0\",\"a0\",\"s0\"],[\"e1\",\"a0\",\"s1\"],[\"e0\",\"a0\",\"s0\"]]}";
    let (status, response) = http_call(addr, "POST", "/claims", Some(body)).unwrap();
    assert_eq!(status, 200, "{response}");
    for _ in 0..3 {
        let (status, _) =
            http_call(addr, "POST", "/query", Some("{\"claims\":[[\"s0\",true]]}")).unwrap();
        assert_eq!(status, 200);
    }
    let (status, _) = http_call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);

    // The /stats body is built before its own request is recorded, so it
    // reports exactly the 5 completed requests.
    let (status, stats) = http_call(addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200, "{stats}");
    assert_eq!(field_f64(&stats, "requests"), 5.0, "{stats}");
    assert!(field_f64(&stats, "uptime_secs") >= 0.0);
    assert_eq!(field_f64(&stats, "duplicate_rows"), 1.0, "{stats}");

    // The scrape sees those 5 plus the /stats call itself.
    let (status, metrics) = http_call(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200, "{metrics}");
    let total = metric_value(&metrics, "ltm_http_requests_total", "");
    assert_eq!(total, 6.0, "{metrics}");

    // Per-endpoint histogram counts: one series per endpoint touched,
    // summing to the request total — same atomics, one registry.
    let count_of = |endpoint: &str| {
        metric_value(
            &metrics,
            "ltm_http_request_duration_seconds_count",
            &format!("endpoint=\"{endpoint}\",domain=\"default\""),
        )
    };
    assert_eq!(count_of("/claims"), 1.0);
    assert_eq!(count_of("/query"), 3.0);
    assert_eq!(count_of("/healthz"), 1.0);
    assert_eq!(count_of("/stats"), 1.0);
    let histogram_total: f64 = metrics
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| parse_line(l).0 == "ltm_http_request_duration_seconds_count")
        .map(|l| parse_line(l).2)
        .sum();
    assert_eq!(histogram_total, total, "{metrics}");

    // Store and WAL values match across surfaces (both derive from the
    // same stores and counters).
    let domain = "domain=\"default\"";
    assert_eq!(
        metric_value(&metrics, "ltm_store_facts", domain),
        field_f64(&stats, "facts")
    );
    assert_eq!(
        metric_value(&metrics, "ltm_store_duplicate_rows_total", domain),
        field_f64(&stats, "duplicate_rows")
    );
    assert_eq!(
        metric_value(&metrics, "ltm_wal_appends_total", domain),
        field_f64(&stats, "wal_appends")
    );
    assert_eq!(field_f64(&stats, "wal_appends"), 1.0, "{stats}");
    // The registry-owned WAL histogram saw the same single append.
    assert_eq!(
        metric_value(&metrics, "ltm_wal_append_duration_seconds_count", domain),
        1.0
    );
    // Ingest-side families from the same batch.
    assert_eq!(
        metric_value(&metrics, "ltm_ingest_rows_accepted_total", domain),
        2.0
    );
    assert_eq!(
        metric_value(&metrics, "ltm_ingest_rows_duplicate_total", domain),
        1.0
    );
    // Build info is on both surfaces with the same version string.
    let version = env!("CARGO_PKG_VERSION");
    assert!(
        stats.contains(&format!("\"version\":\"{version}\"")),
        "{stats}"
    );
    assert!(
        metrics.contains(&format!("version=\"{version}\"")),
        "{metrics}"
    );

    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// With `metrics: false` the hot paths record nothing, but `/metrics`
/// still serves and `/stats` still answers — the switch only disables
/// recording, never the surfaces.
#[test]
fn metrics_flag_disables_recording_not_the_surface() {
    let mut cfg = config();
    cfg.metrics = false;
    let server = Server::start(cfg).expect("boot");
    let addr = server.addr();
    let (status, _) = http_call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    let (status, stats) = http_call(addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(field_f64(&stats, "requests"), 0.0, "{stats}");
    let (status, metrics) = http_call(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(metric_value(&metrics, "ltm_http_requests_total", ""), 0.0);
    server.shutdown().expect("clean shutdown");
}
