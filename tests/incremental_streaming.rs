//! Incremental and streaming behaviour across crates (paper §5.4): the
//! Equation-3 predictor agrees with hand-computed posteriors, streaming
//! training transfers quality across batches, and held-out prediction
//! (the paper's LTMinc protocol) stays close to batch accuracy.

use latent_truth::core::{fit, IncrementalLtm, LtmConfig, Priors, SampleSchedule, StreamingLtm};
use latent_truth::datagen::books::{self, BookConfig};
use latent_truth::eval::metrics::evaluate;
use latent_truth::model::{Claim, ClaimDb, GroundTruth};

fn book_data() -> latent_truth::datagen::GeneratedDataset {
    books::generate(&BookConfig {
        num_books: 160,
        num_sources: 120,
        mean_sources_per_book: 20.0,
        labeled_entities: 40,
        seed: 321,
    })
}

fn config(num_facts: usize) -> LtmConfig {
    LtmConfig {
        priors: Priors::scaled_specificity(num_facts),
        schedule: SampleSchedule::paper_default(),
        seed: 42,
        arithmetic: Default::default(),
    }
}

/// Rebuilds a ClaimDb containing only the facts of entities NOT in the
/// holdout, preserving source ids (the paper's LTMinc training protocol).
fn without_labeled(db: &ClaimDb, truth: &GroundTruth) -> ClaimDb {
    let holdout: std::collections::HashSet<_> = truth.entities().collect();
    let mut facts = Vec::new();
    let mut claims = Vec::new();
    let mut remap = vec![None; db.num_facts()];
    for f in db.fact_ids() {
        let fact = db.fact(f);
        if !holdout.contains(&fact.entity) {
            remap[f.index()] = Some(latent_truth::model::FactId::from_usize(facts.len()));
            facts.push(fact);
        }
    }
    for f in db.fact_ids() {
        if let Some(nf) = remap[f.index()] {
            for (source, observation) in db.claims_of_fact(f) {
                claims.push(Claim {
                    fact: nf,
                    source,
                    observation,
                });
            }
        }
    }
    ClaimDb::from_parts(facts, claims, db.num_sources())
}

#[test]
fn held_out_ltminc_close_to_batch_ltm() {
    let data = book_data();
    let db = &data.dataset.claims;
    let truth = &data.dataset.truth;
    let cfg = config(db.num_facts());

    // Batch LTM on everything.
    let batch = fit(db, &cfg);
    let batch_m = evaluate(truth, &batch.truth, 0.5);

    // LTMinc: quality learned WITHOUT the labeled entities, Equation 3 on
    // the full database.
    let training = without_labeled(db, truth);
    assert!(training.num_facts() < db.num_facts());
    let learned = fit(&training, &cfg);
    let predictor = IncrementalLtm::new(&learned.quality, &cfg.priors);
    let inc_m = evaluate(truth, &predictor.predict(db), 0.5);

    assert!(
        (batch_m.accuracy - inc_m.accuracy).abs() < 0.06,
        "batch {:.3} vs LTMinc {:.3}",
        batch_m.accuracy,
        inc_m.accuracy
    );
    assert!(
        inc_m.accuracy > 0.85,
        "LTMinc accuracy {:.3}",
        inc_m.accuracy
    );
}

#[test]
fn streaming_quality_transfers_to_later_batches() {
    let data = book_data();
    let db = &data.dataset.claims;

    // Split entities into two halves by id parity.
    let (mut even, mut odd) = (Vec::new(), Vec::new());
    for e in db.entity_ids() {
        if e.index() % 2 == 0 {
            even.push(e);
        } else {
            odd.push(e);
        }
    }
    let keep = |keep_set: &[latent_truth::model::EntityId]| {
        let set: std::collections::HashSet<_> = keep_set.iter().copied().collect();
        let mut facts = Vec::new();
        let mut claims = Vec::new();
        let mut remap = vec![None; db.num_facts()];
        for f in db.fact_ids() {
            if set.contains(&db.fact(f).entity) {
                remap[f.index()] = Some(latent_truth::model::FactId::from_usize(facts.len()));
                facts.push(db.fact(f));
            }
        }
        for f in db.fact_ids() {
            if let Some(nf) = remap[f.index()] {
                for (source, observation) in db.claims_of_fact(f) {
                    claims.push(Claim {
                        fact: nf,
                        source,
                        observation,
                    });
                }
            }
        }
        ClaimDb::from_parts(facts, claims, db.num_sources())
    };
    let batch1 = keep(&even);
    let batch2 = keep(&odd);

    let cfg = config(db.num_facts());
    let mut stream = StreamingLtm::new(cfg);
    stream.observe(&batch1);
    let priors_after_one = stream.current_priors(db.num_sources());

    // After one batch, sources that asserted many inferred-true facts must
    // have inflated sensitivity priors relative to the base.
    let base = cfg.priors.alpha1;
    let inflated = (0..db.num_sources())
        .filter(|&s| priors_after_one.alpha1_for(s).pos > base.pos + 1.0)
        .count();
    assert!(
        inflated > db.num_sources() / 4,
        "only {inflated} sources inflated"
    );

    // Second batch still fits fine and accumulates further.
    stream.observe(&batch2);
    assert_eq!(stream.batches_seen(), 2);
    let q = stream.quality();
    assert_eq!(q.num_sources(), db.num_sources());
}

#[test]
fn streaming_predictor_comparable_to_batch_fit() {
    let data = book_data();
    let db = &data.dataset.claims;
    let truth = &data.dataset.truth;
    let cfg = config(db.num_facts());

    let mut stream = StreamingLtm::new(cfg);
    stream.observe(db);
    let pred = stream.predictor().predict(db);
    let stream_m = evaluate(truth, &pred, 0.5);

    let batch = fit(db, &cfg);
    let batch_m = evaluate(truth, &batch.truth, 0.5);

    assert!(
        (stream_m.accuracy - batch_m.accuracy).abs() < 0.08,
        "stream {:.3} vs batch {:.3}",
        stream_m.accuracy,
        batch_m.accuracy
    );
}
