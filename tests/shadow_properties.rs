//! Property-based tests (proptest) on the shadow-ensemble math in
//! `ltm_serve::shadow`: ad-hoc claim scoring, tie-aware rank averaging,
//! the method-agreement matrices, and the AUC invariance the ensemble's
//! rank construction relies on.

use ltm_model::{EntityId, FactId, GroundTruth, SourceId, TruthAssignment};
use ltm_serve::shadow::{
    self, normalized_ranks, rank_average, score_claims, ShadowColumn, ShadowTables,
};
use proptest::prelude::*;

/// Strategy: 1–4 ragged (scores, trust) column pairs with 1–30 entries
/// each; [`parallel_columns`] trims them to a common length.
fn column_pairs() -> impl Strategy<Value = Vec<(Vec<f64>, Vec<f64>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0.0f64..1.0, 1..31),
            proptest::collection::vec(0.0f64..1.0, 1..31),
        ),
        1..5,
    )
}

/// Trims ragged generated columns to one shared fact count (the shim has
/// no `prop_flat_map`, so parallel lengths are enforced after the draw).
fn parallel_columns(raw: Vec<(Vec<f64>, Vec<f64>)>) -> Vec<ShadowColumn> {
    let facts = raw
        .iter()
        .map(|(s, t)| s.len().min(t.len()))
        .min()
        .unwrap_or(1);
    raw.into_iter()
        .enumerate()
        .map(|(i, (mut scores, mut trust))| {
            scores.truncate(facts);
            trust.truncate(facts);
            ShadowColumn {
                name: format!("m{i}"),
                scores,
                trust,
            }
        })
        .collect()
}

/// Strategy: assembled shadow tables over 1–4 methods and a shared fact
/// count.
fn shadow_tables() -> impl Strategy<Value = ShadowTables> {
    column_pairs().prop_map(|raw| {
        let methods = parallel_columns(raw);
        let fact_ids: Vec<u64> = (0..methods[0].scores.len() as u64).collect();
        ShadowTables::assemble(fact_ids, methods)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Ad-hoc scoring is a weighted vote: always in `[0,1]`, whatever
    /// the trust vector and claim pattern (including out-of-range
    /// source ids, which weigh the unknown-source prior 0.5).
    #[test]
    fn score_claims_stays_in_unit_interval(
        trust in proptest::collection::vec(0.0f64..1.0, 0..8),
        claims in proptest::collection::vec((0u32..12, any::<bool>()), 0..12),
    ) {
        let claims: Vec<(SourceId, bool)> = claims
            .into_iter()
            .map(|(s, o)| (SourceId::new(s), o))
            .collect();
        let p = score_claims(&trust, &claims);
        prop_assert!((0.0..=1.0).contains(&p), "score {} out of [0,1]", p);
    }

    /// Every stored shadow score, ensemble score, and query-time
    /// ensemble answer stays in `[0,1]`.
    #[test]
    fn shadow_tables_scores_stay_in_unit_interval(
        tables in shadow_tables(),
        per_method in proptest::collection::vec(0.0f64..1.0, 1..5),
    ) {
        for column in &tables.methods {
            for &s in &column.scores {
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }
        for &e in &tables.ensemble {
            prop_assert!((0.0..=1.0).contains(&e));
        }
        let q = tables.ensemble_of(&per_method[..per_method.len().min(tables.methods.len())]);
        prop_assert!((0.0..=1.0).contains(&q), "query ensemble {} out of [0,1]", q);
    }

    /// The rank-average ensemble is bounded per fact by the minimum and
    /// maximum of its members' normalized ranks — averaging never
    /// extrapolates beyond the member consensus.
    #[test]
    fn rank_average_is_bounded_by_member_ranks(raw in column_pairs()) {
        let columns = parallel_columns(raw);
        let ranks: Vec<Vec<f64>> = columns
            .iter()
            .map(|c| normalized_ranks(&c.scores))
            .collect();
        let refs: Vec<&[f64]> = columns.iter().map(|c| c.scores.as_slice()).collect();
        let averaged = rank_average(&refs);
        for (f, &avg) in averaged.iter().enumerate() {
            let member: Vec<f64> = ranks.iter().map(|r| r[f]).collect();
            let lo = member.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = member
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, |a, b| if b > a { b } else { a });
            prop_assert!(
                avg >= lo - 1e-12 && avg <= hi + 1e-12,
                "fact {}: average {} outside member rank range [{}, {}]",
                f, avg, lo, hi
            );
        }
    }

    /// The published agreement matrices are symmetric; correlation has a
    /// unit diagonal and every entry in `[-1,1]`, decision flips have a
    /// zero diagonal.
    #[test]
    fn agreement_is_symmetric_with_unit_diagonal(tables in shadow_tables()) {
        let a = &tables.agreement;
        let n = a.methods.len();
        prop_assert_eq!(n, tables.methods.len(), "agreement covers every member method");
        for i in 0..n {
            let c_ii = a.correlation[i][i];
            prop_assert!((c_ii - 1.0).abs() < 1e-12, "diag correlation {} != 1", c_ii);
            prop_assert_eq!(a.decision_flips[i][i], 0, "diag flips nonzero");
            for j in 0..n {
                let c = a.correlation[i][j];
                prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&c), "correlation {}", c);
                prop_assert!(
                    (c - a.correlation[j][i]).abs() < 1e-12,
                    "correlation not symmetric at ({},{})", i, j
                );
                prop_assert_eq!(a.decision_flips[i][j], a.decision_flips[j][i]);
            }
        }
    }

    /// AUC is a rank statistic: any strictly monotone transform of the
    /// scores (here `x ↦ x³` and `x ↦ x/(x+½)`, both order-preserving on
    /// `[0,1]`) leaves it unchanged. This is what makes the rank-average
    /// ensemble well-posed across methods with different calibrations.
    #[test]
    fn auc_is_invariant_under_monotone_transforms(
        labeled in proptest::collection::vec((0.0f64..1.0, any::<bool>()), 2..40),
    ) {
        let mut truth = GroundTruth::new();
        for (i, (_, label)) in labeled.iter().enumerate() {
            truth.insert(EntityId::new(0), FactId::from_usize(i), *label);
        }
        let scores: Vec<f64> = labeled.iter().map(|(s, _)| *s).collect();
        let base = ltm_eval::auc(&truth, &TruthAssignment::new(scores.clone()));
        let cubed: Vec<f64> = scores.iter().map(|s| s * s * s).collect();
        let squashed: Vec<f64> = scores.iter().map(|s| s / (s + 0.5)).collect();
        for transformed in [cubed, squashed] {
            let t = ltm_eval::auc(&truth, &TruthAssignment::new(transformed));
            prop_assert!(
                (base - t).abs() < 1e-12,
                "AUC changed under a monotone transform: {} vs {}", base, t
            );
        }
    }
}

/// The wire-name map is total and collision-free over the shadow method
/// set — the HTTP layer depends on both.
#[test]
fn wire_names_are_unique_and_lowercase() {
    let mut names: Vec<String> = vec![shadow::wire_name(shadow::LTM_METHOD)];
    for m in ltm_baselines::all_baselines() {
        names.push(shadow::wire_name(m.name()));
    }
    names.push(shadow::ENSEMBLE_METHOD.to_owned());
    let unique: std::collections::BTreeSet<&String> = names.iter().collect();
    assert_eq!(unique.len(), names.len(), "wire-name collision: {names:?}");
    for n in &names {
        assert_eq!(n, &n.to_lowercase(), "wire name {n} not lowercase");
    }
}
