//! End-to-end checks for the analyzer: the real workspace is clean, every
//! fixture goes red with exactly its declared check-ids, and the CLI's
//! exit codes and output shapes hold (they are what CI gates on).

use std::path::{Path, PathBuf};
use std::process::Command;

use ltm_analyzer::{analyze_source, analyze_workspace, load_manifest};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parses the `// expect: a, b` header of a fixture.
fn expected_checks(src: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for line in src.lines() {
        if let Some(rest) = line.trim().strip_prefix("// expect:") {
            for id in rest.split(',') {
                let id = id.trim();
                if !id.is_empty() && !out.iter().any(|x| x == id) {
                    out.push(id.to_owned());
                }
            }
        }
    }
    out.sort();
    out
}

#[test]
fn workspace_is_clean() {
    let root = workspace_root();
    let manifest = load_manifest(&root).expect("analyzer.toml parses");
    let diags = analyze_workspace(&root, &manifest).expect("workspace readable");
    assert!(
        diags.is_empty(),
        "workspace must stay clean; found:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_fixture_goes_red_with_its_expected_ids() {
    let root = workspace_root();
    let manifest = load_manifest(&root).expect("analyzer.toml parses");
    let dir = fixtures_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures dir exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 9,
        "expected the full fixture set, got {entries:?}"
    );

    let mut covered: Vec<String> = Vec::new();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let expected = expected_checks(&src);
        assert!(
            !expected.is_empty(),
            "{name}: fixture must declare `// expect:` check-ids"
        );
        let mut got: Vec<String> =
            analyze_source(&format!("fixtures/{name}"), &src, &manifest, true)
                .into_iter()
                .map(|d| d.check)
                .collect();
        got.sort();
        got.dedup();
        assert_eq!(
            got, expected,
            "{name}: produced check-ids diverge from header"
        );
        covered.extend(expected);
    }

    // Completeness: every check id the analyzer can emit has a fixture
    // keeping it red.
    for (id, _) in ltm_analyzer::explain::EXPLANATIONS {
        assert!(
            covered.iter().any(|c| c == id),
            "check `{id}` has no fixture exercising it"
        );
    }
}

#[test]
fn self_test_binary_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_ltm-analyzer"))
        .args(["--self-test", "--root"])
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "self-test failed:\n{stdout}");
    assert!(
        stdout.contains("all red with expected check-ids"),
        "{stdout}"
    );
}

#[test]
fn workspace_mode_binary_reports_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_ltm-analyzer"))
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "expected clean workspace:\n{stdout}");
    assert!(stdout.contains("workspace clean"), "{stdout}");
}

#[test]
fn violations_exit_nonzero_with_rustc_style_diagnostics() {
    // Build a throwaway root: the real manifest plus two red fixtures as
    // its `src/`, then check the CLI's workspace mode against it.
    let tmp = std::env::temp_dir().join(format!("ltm-analyzer-red-{}", std::process::id()));
    let src_dir = tmp.join("src");
    std::fs::create_dir_all(&src_dir).expect("temp root");
    std::fs::copy(
        workspace_root().join("analyzer.toml"),
        tmp.join("analyzer.toml"),
    )
    .expect("manifest copied");
    for (fixture, dest) in [
        ("lock_out_of_order.rs", "broken_locks.rs"),
        ("forbidden_api.rs", "forbidden.rs"),
    ] {
        std::fs::copy(fixtures_dir().join(fixture), src_dir.join(dest)).expect("fixture copied");
    }

    let out = Command::new(env!("CARGO_BIN_EXE_ltm-analyzer"))
        .arg("--root")
        .arg(&tmp)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    std::fs::remove_dir_all(&tmp).ok();

    assert_eq!(
        out.status.code(),
        Some(1),
        "findings must exit 1:\n{stdout}"
    );
    assert!(stdout.contains("error[lock-order]"), "{stdout}");
    assert!(stdout.contains("error[forbidden-api]"), "{stdout}");
    // rustc-style `file:line:` prefix on a concrete diagnostic.
    assert!(stdout.contains("src/broken_locks.rs:"), "{stdout}");
    assert!(stdout.contains("finding(s)"), "{stdout}");
}

#[test]
fn explain_knows_every_id_and_rejects_unknown() {
    for (id, _) in ltm_analyzer::explain::EXPLANATIONS {
        let out = Command::new(env!("CARGO_BIN_EXE_ltm-analyzer"))
            .args(["--explain", id])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "--explain {id} must succeed");
        assert!(String::from_utf8_lossy(&out.stdout).contains(id));
    }
    let out = Command::new(env!("CARGO_BIN_EXE_ltm-analyzer"))
        .args(["--explain", "no-such-check"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown id is a usage error");
}
