//! Property tests for the lexer's blind spots: trigger-shaped text inside
//! comments, string literals, and char literals must never reach the
//! scanners. A false positive here would mean the lexer leaked literal
//! contents into the token stream.

use ltm_analyzer::{analyze_source, manifest, manifest::Manifest};
use proptest::prelude::*;

fn mini_manifest() -> Manifest {
    manifest::parse(
        r#"
[locks]
order = ["log", "sources", "shards", "registry"]
multi_instance = ["shards"]
methods = ["lock", "read", "write", "locked"]

[panic]
paths = ["x.rs"]

[logging]
paths = ["x.rs"]
allowed = []

[[forbidden]]
name = "std::process::exit"
allowed = []
reason = "bins only"

[[forbidden]]
name = "f64::max"
allowed = []
reason = "NaN-swallowing"
"#,
    )
    .expect("mini manifest parses")
}

/// Every check the analyzer knows, concentrated into one line of text.
/// As *code* this trips lock-order, panic-unwrap, panic-macro,
/// panic-index, log-print, and forbidden-api; as literal contents it must
/// trip nothing.
const TRIGGER_SOUP: &str =
    "self.shards.lock() self.log.lock() a.unwrap() b.expect(x) panic!() xs[0] eprintln!(e) std::process::exit(1) f64::max";

fn assert_clean(src: &str) {
    let m = mini_manifest();
    let diags = analyze_source("x.rs", src, &m, true);
    assert!(
        diags.is_empty(),
        "literal contents leaked into the scanners for source:\n{src}\nfindings: {diags:?}"
    );
}

#[test]
fn trigger_soup_as_code_is_red() {
    // Sanity for the property: the same text *outside* literals does fire.
    let m = mini_manifest();
    let src = format!("fn f(&self) {{ {TRIGGER_SOUP}; }}");
    let diags = analyze_source("x.rs", &src, &m, true);
    assert!(
        diags.len() >= 6,
        "trigger soup must be red as code: {diags:?}"
    );
}

#[test]
fn char_literals_and_raw_strings_are_opaque() {
    // Chars the scanners key on, plus a raw string full of trigger text.
    let src = format!(
        "fn f() {{ let a = '['; let b = '('; let c = '!'; let d = '.'; let e = '\"'; \
         let s = r\"{TRIGGER_SOUP}\"; let t = r#\"{TRIGGER_SOUP}\"#; }}"
    );
    assert_clean(&src);
}

#[test]
fn nested_block_comments_are_opaque() {
    let src = format!("fn f() {{ /* outer /* {TRIGGER_SOUP} */ still comment {TRIGGER_SOUP} */ }}");
    assert_clean(&src);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary line-comment contents — including unwrap/index/macro
    /// shapes and lock names — produce no diagnostics. The `x` prefix
    /// keeps the comment from ever starting with `analyzer:`, which is
    /// the one comment shape the analyzer *does* read.
    #[test]
    fn line_comment_contents_never_trigger(
        payload in "[a-zA-Z0-9 .,!?()\\[\\]{}<>*&#@$%^~;:'/_-]{0,60}"
    ) {
        let src = format!("fn f() {{ let x = 1; }} // x {payload} {TRIGGER_SOUP}");
        assert_clean(&src);
    }

    /// Block-comment contents never trigger. The class omits `*` and `/`
    /// so the payload cannot open or close a comment itself — delimiter
    /// handling is covered by the nested-comment test above.
    #[test]
    fn block_comment_contents_never_trigger(
        payload in "[a-zA-Z0-9 .,!?()\\[\\]{}<>&#@$%^~;:'_-]{0,60}"
    ) {
        let src = format!("fn f() {{ let x = /* {payload} {TRIGGER_SOUP} */ 1; let y = x; }}");
        assert_clean(&src);
    }

    /// String-literal contents never trigger (class omits `"` and `\` so
    /// the payload cannot end the literal or start an escape).
    #[test]
    fn string_literal_contents_never_trigger(
        payload in "[a-zA-Z0-9 .,!?()\\[\\]{}<>*&#@$%^~;:'/_-]{0,60}"
    ) {
        let src = format!(
            "fn f() {{ let s = \"{payload} {TRIGGER_SOUP}\"; let n = s; }}"
        );
        assert_clean(&src);
    }
}
