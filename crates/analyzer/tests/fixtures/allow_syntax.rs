// expect: allow-syntax
//
// Suppressions must parse and carry a reason; a malformed allow silently
// fails to suppress, and an unknown check id suppresses nothing. Both
// are findings in their own right.

pub fn annotated() -> u32 {
    // analyzer: allow(panic-unwrap)
    let missing_reason = 1;
    // analyzer: allow(no-such-check) -- the id above does not exist
    let unknown_id = 2;
    missing_reason + unknown_id
}
