// expect: lock-double
//
// Re-acquires `log` while its guard is still bound — a self-deadlock on
// a non-reentrant mutex. `shards` is declared multi_instance, so this
// shape is only legal across distinct shard instances.

use std::sync::Mutex;

pub struct Store {
    log: Mutex<Vec<u64>>,
}

impl Store {
    pub fn reentrant(&self) -> usize {
        let first = self.log.locked();
        let second = self.log.locked();
        first.len() + second.len()
    }
}
