// expect: panic-expect, panic-macro
//
// `.expect(..)` and the panicking macros are the same failure mode with
// a nicer message; both are forbidden on serve paths.

pub fn decode(payload: Option<&str>, kind: u8) -> &str {
    let text = payload.expect("payload present");
    if kind > 3 {
        unreachable!()
    }
    text
}
