// expect: lock-order
//
// Takes `persist` while a shard guard is held. The manifest declares
// never_inside(persist, [shards]): the persister flushes shard state and
// must never wait on the pool it is about to read.

use std::sync::Mutex;

pub struct Store {
    persist: Mutex<Vec<u8>>,
    shards: Vec<Mutex<Vec<u8>>>,
}

impl Store {
    pub fn flush_under_shard(&self) {
        for shard in &self.shards {
            let guard = shard.locked();
            let sink = self.persist.locked();
            drop(sink);
            drop(guard);
        }
    }
}
