// expect: forbidden-api
//
// Three manifest-banned names outside their allowed paths:
// `SystemTime::now` (clock reads go through the obs layer so tests can
// pin time), `process::exit` (skips Drop — WAL buffers never flush),
// and `f64::max` (silently swallows NaN; the workspace uses total_cmp).

use std::time::SystemTime;

pub fn stamp() -> SystemTime {
    SystemTime::now()
}

pub fn bail() {
    std::process::exit(1);
}

pub fn peak(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}
