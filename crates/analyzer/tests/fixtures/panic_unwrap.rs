// expect: panic-unwrap
//
// An unannotated `.unwrap()` on a serve path: a poisoned lock or a bad
// frame would take the worker down mid-request.

pub fn frame_len(header: Option<u32>) -> u32 {
    header.unwrap()
}
