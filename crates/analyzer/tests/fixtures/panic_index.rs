// expect: panic-index
//
// Slice indexing without a proven bound panics on short input — the
// classic truncated-frame crash. Use `.get(..)` or annotate the bound.

pub fn first_byte(frame: &[u8]) -> u8 {
    frame[0]
}
