// expect: lock-order
//
// Acquires `log` (rank 1) while a `sources` guard (rank 2) is still
// held; the declared partial order is
// persist -> log -> sources -> shards -> registry.

use std::sync::{Mutex, RwLock};

pub struct Store {
    log: Mutex<Vec<u64>>,
    sources: RwLock<Vec<String>>,
}

impl Store {
    pub fn inverted(&self) -> usize {
        let sources = self.sources.read_locked();
        let log = self.log.locked();
        sources.len() + log.len()
    }
}
