// expect: log-print
//
// A stray `eprintln!` in the serve tree bypasses the leveled logger:
// no level gate, no structured fields, interleaved output under load.

pub fn on_error(detail: &str) {
    eprintln!("request failed: {detail}");
}
