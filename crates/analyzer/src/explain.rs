//! `--explain <check-id>` texts. One entry per check id; `docs/ANALYZER.md`
//! mirrors these, and the fixture suite asserts every id listed here has
//! a fixture exercising it.

/// `(check-id, explanation)` for every diagnostic the analyzer emits.
pub const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "lock-order",
        "A lock was acquired while holding another lock that ranks *after* it \
in the declared partial order (analyzer.toml `[locks] order`). The store's \
discipline is log -> sources -> shard -> registry: every thread that takes \
more than one of these must take them in that order, or two threads can \
deadlock by each holding the lock the other wants. Fix by reordering the \
acquisitions, by copying what you need out of the first guard and dropping \
it before taking the second, or — if the analysis is wrong about a guard's \
lifetime — annotate with `// analyzer: allow(lock-order) -- <why>`.",
    ),
    (
        "lock-double",
        "The same lock (or another instance resolved to the same declared \
name) was acquired twice on one path while the first guard was still held. \
std::sync mutexes are not reentrant: self-deadlock. Locks listed in \
`multi_instance` (the shard array) are exempt, since sibling shards are \
distinct mutexes — but acquiring the *same* shard twice still deadlocks, \
which this analysis cannot see; keep shard loops index-disjoint. Fix by \
reusing the existing guard, or scope the first acquisition so it drops \
before the second.",
    ),
    (
        "panic-unwrap",
        "`.unwrap()` on a manifest-listed panic-free path (analyzer.toml \
`[panic] paths`). A panic on the request, WAL, or refit path poisons locks \
and strands half-applied state. Return a typed error, map it to a logged \
HTTP 500, or use the poison-tolerant sync wrappers \
(crates/serve/src/sync.rs). If the value provably cannot be None/Err, \
annotate with `// analyzer: allow(panic-unwrap) -- <the invariant>`.",
    ),
    (
        "panic-expect",
        "`.expect(..)` on a manifest-listed panic-free path — same class as \
panic-unwrap; the message string does not make the panic safe. Return a \
typed error or annotate with the invariant that holds. Lock poisoning is \
the one sanctioned use and lives behind crates/serve/src/sync.rs.",
    ),
    (
        "panic-macro",
        "`panic!` / `unreachable!` / `todo!` / `unimplemented!` on a \
manifest-listed panic-free path. Convert to an error return (the serve \
crate's error enums all have a variant for \"internal invariant broken\"), \
or annotate with a reason if the arm is truly unreachable by construction.",
    ),
    (
        "panic-index",
        "Slice/array indexing (`xs[i]`, `&buf[a..b]`) on a manifest-listed \
panic-free path can panic on out-of-bounds. Prefer `.get(..)` / \
`.get_mut(..)` / `.split_at_checked(..)` with an error return. When the \
bound is locally evident (index produced by the same function, length \
checked on the line above), annotate with \
`// analyzer: allow(panic-index) -- <the bound>`.",
    ),
    (
        "log-print",
        "`println!` / `eprintln!` / `print!` / `eprint!` / `dbg!` inside the \
serving tree bypasses the leveled structured logger (level gate, \
target field, timestamps) and interleaves raw bytes with real log output. \
Use log_error!/log_warn!/log_info!/log_debug! from crates/serve/src/obs/log.rs. \
Binaries under src/bin/ own their stdout and are exempt.",
    ),
    (
        "forbidden-api",
        "A name banned by analyzer.toml `[[forbidden]]` outside its allowed \
paths. Current entries: `std::time::SystemTime::now` (all time reads go \
through the obs clock so tests can pin it), `std::process::exit` (only \
binaries may exit; library code returns errors so destructors and WAL \
flushes run), and `f64::max` (silently discards NaN — fold R-hat/probability \
streams with explicit NaN handling instead; this is the exact bug class the \
PR 3 convergence gate hit).",
    ),
    (
        "allow-syntax",
        "A `// analyzer: allow(...)` annotation that does not parse: missing \
check list, or missing the ` -- <reason>` tail. Reasons are mandatory — an \
allow without a recorded invariant is just a disabled check. Grammar: \
`// analyzer: allow(check-a, check-b) -- reason text`. Trailing on a line \
it covers that line; on its own line it covers the next line.",
    ),
];

/// Looks up the explanation for `id`.
pub fn explain(id: &str) -> Option<&'static str> {
    EXPLANATIONS
        .iter()
        .find(|(name, _)| *name == id)
        .map(|(_, text)| *text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_resolves_and_unknown_does_not() {
        for (id, _) in EXPLANATIONS {
            assert!(explain(id).is_some());
        }
        assert!(explain("no-such-check").is_none());
    }
}
