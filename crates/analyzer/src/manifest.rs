//! The invariant manifest: `analyzer.toml` at the workspace root.
//!
//! Parsed with a hand-rolled TOML-subset reader (tables, arrays of
//! tables, string/bool/integer values, string arrays) in keeping with the
//! workspace's no-registry policy. The subset is validated strictly:
//! unknown keys are errors, so a typo in the manifest cannot silently
//! disable a check.

use std::collections::BTreeMap;
use std::fmt;

/// A declared lock with its rank in the partial order (0 = outermost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockDecl {
    /// Field name the lock is recognized by (e.g. `log`, `shards`).
    pub name: String,
    /// Rank in the declared order; acquiring rank r while holding rank
    /// > r is a violation.
    pub rank: usize,
}

/// A `lock is never acquired while any of `inside` is held` constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeverInside {
    /// The constrained lock.
    pub lock: String,
    /// Locks that must not be held when `lock` is acquired.
    pub inside: Vec<String>,
}

/// One forbidden fully-qualified name (`SystemTime::now`, `f64::max`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForbiddenApi {
    /// `::`-separated path; matched as a token subsequence.
    pub name: String,
    /// Path prefixes where the name is permitted.
    pub allowed: Vec<String>,
    /// Why the name is forbidden (shown in the diagnostic).
    pub reason: String,
}

/// The full manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Ordered lock declarations (outermost first).
    pub lock_order: Vec<LockDecl>,
    /// Locks allowed to be held several instances at once (sibling
    /// mutexes of the same rank, e.g. the shard pool).
    pub multi_instance: Vec<String>,
    /// Guard-returning method names (`lock`, `read_locked`, …).
    pub lock_methods: Vec<String>,
    /// Never-inside constraints.
    pub never_inside: Vec<NeverInside>,
    /// Files subject to the panic-freedom checks.
    pub panic_paths: Vec<String>,
    /// Path prefixes subject to the logging discipline.
    pub logging_paths: Vec<String>,
    /// Path prefixes exempt from the logging discipline.
    pub logging_allowed: Vec<String>,
    /// Forbidden fully-qualified names.
    pub forbidden: Vec<ForbiddenApi>,
}

impl Manifest {
    /// Rank of a declared lock, if `name` is declared.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.lock_order
            .iter()
            .find(|l| l.name == name)
            .map(|l| l.rank)
    }

    /// Whether several sibling instances of `name` may be held at once.
    pub fn is_multi_instance(&self, name: &str) -> bool {
        self.multi_instance.iter().any(|m| m == name)
    }
}

/// A manifest-loading error with line context.
#[derive(Debug)]
pub struct ManifestError {
    /// 1-based line in the manifest, 0 when not line-specific.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "analyzer.toml:{}: {}", self.line, self.message)
        } else {
            write!(f, "analyzer.toml: {}", self.message)
        }
    }
}

impl std::error::Error for ManifestError {}

fn err(line: u32, message: impl Into<String>) -> ManifestError {
    ManifestError {
        line,
        message: message.into(),
    }
}

/// A TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    StrArray(Vec<String>),
}

impl Value {
    fn as_str(&self, line: u32, key: &str) -> Result<&str, ManifestError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(err(line, format!("`{key}` must be a string"))),
        }
    }

    fn as_str_array(&self, line: u32, key: &str) -> Result<Vec<String>, ManifestError> {
        match self {
            Value::StrArray(v) => Ok(v.clone()),
            _ => Err(err(line, format!("`{key}` must be an array of strings"))),
        }
    }
}

/// One parsed `key = value` with its source line.
type Entry = (Value, u32);
/// A table: key → entry.
type Table = BTreeMap<String, Entry>;

/// Parses the manifest text.
pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
    // Phase 1: raw tables.
    let mut tables: BTreeMap<String, Table> = BTreeMap::new();
    let mut array_tables: BTreeMap<String, Vec<(Table, u32)>> = BTreeMap::new();
    let mut current: Option<(String, bool)> = None; // (name, is_array)

    let raw_lines: Vec<&str> = text.lines().collect();
    let mut idx = 0usize;
    while idx < raw_lines.len() {
        let line_no = idx as u32 + 1;
        let mut line = strip_comment(raw_lines[idx]).trim().to_owned();
        idx += 1;
        if line.is_empty() {
            continue;
        }
        // Multi-line arrays: a `key = [` value keeps consuming lines
        // until the closing `]`.
        if line.split_once('=').is_some_and(|(_, v)| {
            let v = v.trim();
            v.starts_with('[') && !v.ends_with(']')
        }) {
            loop {
                if idx >= raw_lines.len() {
                    return Err(err(line_no, "unterminated array"));
                }
                let cont = strip_comment(raw_lines[idx]).trim().to_owned();
                idx += 1;
                line.push(' ');
                line.push_str(&cont);
                if cont.ends_with(']') {
                    break;
                }
            }
        }
        let line = line.as_str();
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = name.trim().to_owned();
            array_tables
                .entry(name.clone())
                .or_default()
                .push((Table::new(), line_no));
            current = Some((name, true));
        } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim().to_owned();
            tables.entry(name.clone()).or_default();
            current = Some((name, false));
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim().to_owned();
            let value = parse_value(value.trim(), line_no)?;
            let Some((name, is_array)) = &current else {
                return Err(err(line_no, "key outside any [table]"));
            };
            let table = if *is_array {
                let entries = array_tables
                    .get_mut(name)
                    .and_then(|v| v.last_mut())
                    .map(|(t, _)| t);
                match entries {
                    Some(t) => t,
                    None => return Err(err(line_no, "internal: missing array table")),
                }
            } else {
                tables.entry(name.clone()).or_default()
            };
            if table.insert(key.clone(), (value, line_no)).is_some() {
                return Err(err(line_no, format!("duplicate key `{key}`")));
            }
        } else {
            return Err(err(line_no, format!("unparseable line: `{line}`")));
        }
    }

    // Phase 2: typed extraction with unknown-key validation.
    let mut m = Manifest {
        lock_methods: vec!["lock".into(), "read".into(), "write".into()],
        ..Manifest::default()
    };

    if let Some(locks) = tables.get("locks") {
        for (key, (value, line)) in locks {
            match key.as_str() {
                "order" => {
                    m.lock_order = value
                        .as_str_array(*line, key)?
                        .into_iter()
                        .enumerate()
                        .map(|(rank, name)| LockDecl { name, rank })
                        .collect();
                }
                "multi_instance" => m.multi_instance = value.as_str_array(*line, key)?,
                "methods" => m.lock_methods = value.as_str_array(*line, key)?,
                _ => return Err(err(*line, format!("unknown key `locks.{key}`"))),
            }
        }
    }
    for (table, line) in array_tables.get("locks.never_inside").into_iter().flatten() {
        let mut lock = None;
        let mut inside = Vec::new();
        for (key, (value, kline)) in table {
            match key.as_str() {
                "lock" => lock = Some(value.as_str(*kline, key)?.to_owned()),
                "inside" => inside = value.as_str_array(*kline, key)?,
                _ => {
                    return Err(err(
                        *kline,
                        format!("unknown key `locks.never_inside.{key}`"),
                    ))
                }
            }
        }
        let lock = lock.ok_or_else(|| err(*line, "never_inside needs `lock`"))?;
        if inside.is_empty() {
            return Err(err(*line, "never_inside needs a non-empty `inside`"));
        }
        m.never_inside.push(NeverInside { lock, inside });
    }

    if let Some(panic) = tables.get("panic") {
        for (key, (value, line)) in panic {
            match key.as_str() {
                "paths" => m.panic_paths = value.as_str_array(*line, key)?,
                _ => return Err(err(*line, format!("unknown key `panic.{key}`"))),
            }
        }
    }

    if let Some(logging) = tables.get("logging") {
        for (key, (value, line)) in logging {
            match key.as_str() {
                "paths" => m.logging_paths = value.as_str_array(*line, key)?,
                "allowed" => m.logging_allowed = value.as_str_array(*line, key)?,
                _ => return Err(err(*line, format!("unknown key `logging.{key}`"))),
            }
        }
    }

    for (table, line) in array_tables.get("forbidden").into_iter().flatten() {
        let mut name = None;
        let mut allowed = Vec::new();
        let mut reason = None;
        for (key, (value, kline)) in table {
            match key.as_str() {
                "name" => name = Some(value.as_str(*kline, key)?.to_owned()),
                "allowed" => allowed = value.as_str_array(*kline, key)?,
                "reason" => reason = Some(value.as_str(*kline, key)?.to_owned()),
                _ => return Err(err(*kline, format!("unknown key `forbidden.{key}`"))),
            }
        }
        m.forbidden.push(ForbiddenApi {
            name: name.ok_or_else(|| err(*line, "forbidden entry needs `name`"))?,
            allowed,
            reason: reason.ok_or_else(|| err(*line, "forbidden entry needs `reason`"))?,
        });
    }

    // Cross-validation: every multi_instance / never_inside name must be
    // declared, so a rename can't silently detach a constraint.
    for name in &m.multi_instance {
        if m.rank_of(name).is_none() {
            return Err(err(0, format!("multi_instance lock `{name}` not in order")));
        }
    }
    for ni in &m.never_inside {
        for inside in &ni.inside {
            if m.rank_of(inside).is_none() {
                return Err(err(
                    0,
                    format!("never_inside references undeclared lock `{inside}`"),
                ));
            }
        }
    }
    if m.lock_order.is_empty() {
        return Err(err(0, "manifest declares no lock order"));
    }
    Ok(m)
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line: u32) -> Result<Value, ManifestError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = text.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(err(line, "unterminated string"));
        };
        if body.contains('"') {
            return Err(err(line, "escapes/embedded quotes unsupported"));
        }
        return Ok(Value::Str(body.to_owned()));
    }
    if let Some(body) = text.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(err(line, "unterminated array"));
        };
        let body = body.trim();
        if body.is_empty() {
            return Ok(Value::StrArray(Vec::new()));
        }
        let mut items = Vec::new();
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            match parse_value(item, line)? {
                Value::Str(s) => items.push(s),
                _ => return Err(err(line, "only string arrays are supported")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Ok(n) = text.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(err(line, format!("unsupported value `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[locks]
order = ["log", "sources", "shards", "registry"] # trailing comment
multi_instance = ["shards"]
methods = ["lock", "read", "write", "locked"]

[[locks.never_inside]]
lock = "persist"
inside = ["shards"]

[panic]
paths = ["crates/serve/src/wal.rs"]

[logging]
paths = ["crates/serve/src"]
allowed = ["crates/serve/src/obs/log.rs"]

[[forbidden]]
name = "f64::max"
allowed = []
reason = "discards NaN"

[[forbidden]]
name = "SystemTime::now"
allowed = ["crates/serve/src/obs"]
reason = "clocks live in obs"
"#;

    #[test]
    fn parses_the_full_shape() {
        let m = parse(SAMPLE).unwrap();
        assert_eq!(m.rank_of("log"), Some(0));
        assert_eq!(m.rank_of("registry"), Some(3));
        assert!(m.is_multi_instance("shards"));
        assert!(!m.is_multi_instance("log"));
        assert_eq!(m.lock_methods.len(), 4);
        assert_eq!(m.never_inside[0].lock, "persist");
        assert_eq!(m.forbidden.len(), 2);
        assert_eq!(m.forbidden[1].allowed, vec!["crates/serve/src/obs"]);
    }

    #[test]
    fn multi_line_arrays_parse() {
        let src = "[locks]\norder = [\n  \"log\", # outermost\n  \"shards\",\n]\n";
        let m = parse(src).unwrap();
        assert_eq!(m.rank_of("shards"), Some(1));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let bad = "[locks]\norder = [\"log\"]\nordr = [\"log\"]\n";
        let e = parse(bad).unwrap_err();
        assert!(e.message.contains("unknown key"), "{e}");
    }

    #[test]
    fn undeclared_multi_instance_is_rejected() {
        let bad = "[locks]\norder = [\"log\"]\nmulti_instance = [\"shards\"]\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn missing_reason_on_forbidden_is_rejected() {
        let bad = "[locks]\norder=[\"log\"]\n[[forbidden]]\nname = \"f64::max\"\n";
        assert!(parse(bad).is_err());
    }
}
