//! Logging discipline: all diagnostics go through the leveled logger.
//!
//! Within the manifest's `logging.paths`, direct writes to the process
//! streams (`println!`, `print!`, `eprintln!`, `eprint!`, `dbg!`) are
//! forbidden (`log-print`) — they bypass the level gate, the structured
//! format, and the per-request ids. Exempt: the logger's own backend
//! (`logging.allowed`), anything under a `/bin/` directory (CLIs own
//! their stdout), and test code.

use crate::lexer::TokenKind;
use crate::scan::FileUnit;
use crate::Diagnostic;

/// The forbidden direct-output macros.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Whether `path` is subject to this check at all.
pub fn applies(path: &str, paths: &[String], allowed: &[String]) -> bool {
    if !paths.iter().any(|p| path.starts_with(p.as_str())) {
        return false;
    }
    if allowed.iter().any(|p| path.starts_with(p.as_str())) {
        return false;
    }
    // Binaries own their stdout: `src/bin/**` anywhere is exempt.
    !path.contains("/bin/")
}

/// Runs the pass over `unit`.
pub fn check(unit: &FileUnit, out: &mut Vec<Diagnostic>) {
    for (i, t) in unit.tokens.iter().enumerate() {
        if unit.in_test(i) {
            continue;
        }
        let TokenKind::Ident(id) = &t.kind else {
            continue;
        };
        if !PRINT_MACROS.contains(&id.as_str()) {
            continue;
        }
        if !unit.tokens.get(i + 1).is_some_and(|n| n.kind.is_punct('!')) {
            continue;
        }
        if unit.is_allowed("log-print", t.line) {
            continue;
        }
        out.push(Diagnostic {
            file: unit.path.clone(),
            line: t.line,
            check: "log-print".to_owned(),
            message: format!(
                "`{id}!` bypasses the leveled logger — use log_error!/log_warn!/log_info!/log_debug! (crates/serve/src/obs/log.rs)"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_respects_paths_allowed_and_bin() {
        let paths = vec!["crates/serve/src".to_owned()];
        let allowed = vec!["crates/serve/src/obs/log.rs".to_owned()];
        assert!(applies("crates/serve/src/wal.rs", &paths, &allowed));
        assert!(!applies("crates/serve/src/obs/log.rs", &paths, &allowed));
        assert!(!applies("crates/serve/src/bin/ltm.rs", &paths, &allowed));
        assert!(!applies("crates/eval/src/report.rs", &paths, &allowed));
    }

    #[test]
    fn flags_direct_prints_but_not_log_macros() {
        let src =
            "fn f() { eprintln!(\"x\"); dbg!(y); log_error!(\"wal\", \"y\"); writeln!(w, \"z\"); }";
        let unit = FileUnit::prepare("x.rs", src);
        let mut out = Vec::new();
        check(&unit, &mut out);
        let checks: Vec<&str> = out.iter().map(|d| d.check.as_str()).collect();
        assert_eq!(checks, vec!["log-print", "log-print"]);
    }

    #[test]
    fn doc_comments_do_not_trigger() {
        let src = "//! use println!(\"x\") for output\nfn f() {}\n";
        let unit = FileUnit::prepare("x.rs", src);
        let mut out = Vec::new();
        check(&unit, &mut out);
        assert!(out.is_empty());
    }
}
