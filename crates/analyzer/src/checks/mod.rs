//! The four invariant passes. Each pass takes a prepared [`FileUnit`]
//! and appends [`Diagnostic`]s; `lib.rs` decides which passes apply to
//! which paths from the manifest.
//!
//! [`FileUnit`]: crate::scan::FileUnit
//! [`Diagnostic`]: crate::Diagnostic

pub mod forbidden;
pub mod locks;
pub mod logging;
pub mod panics;
