//! Forbidden-API pass: names the manifest bans, flagged wherever their
//! final `segment::segment` path appears outside the entry's allowed
//! path prefixes.
//!
//! Matching on the trailing two path segments catches both the
//! fully-qualified spelling (`std::process::exit`) and the common
//! imported spelling (`process::exit`); a single-segment name matches a
//! bare identifier. The flagship entry is `f64::max` — the PR 3 R̂-gate
//! bug class, where `f64::max` silently discards a NaN fold input.

use crate::manifest::ForbiddenApi;
use crate::scan::FileUnit;
use crate::Diagnostic;

/// Runs every forbidden-name rule that applies to `unit`'s path.
pub fn check(unit: &FileUnit, rules: &[ForbiddenApi], out: &mut Vec<Diagnostic>) {
    for rule in rules {
        if rule
            .allowed
            .iter()
            .any(|p| unit.path.starts_with(p.as_str()))
        {
            continue;
        }
        let segments: Vec<&str> = rule.name.split("::").collect();
        let tail: Vec<&str> = segments[segments.len().saturating_sub(2)..].to_vec();
        scan_for(unit, rule, &tail, out);
    }
}

fn scan_for(unit: &FileUnit, rule: &ForbiddenApi, tail: &[&str], out: &mut Vec<Diagnostic>) {
    let tokens = &unit.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if unit.in_test(i) {
            continue;
        }
        let Some(id) = t.kind.ident() else {
            continue;
        };
        let matched = match tail {
            [single] => id == *single,
            [a, b] => {
                id == *a
                    && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|t| t.kind.ident() == Some(b))
            }
            _ => false,
        };
        if !matched || unit.is_allowed("forbidden-api", t.line) {
            continue;
        }
        out.push(Diagnostic {
            file: unit.path.clone(),
            line: t.line,
            check: "forbidden-api".to_owned(),
            message: format!("`{}` is forbidden here: {}", rule.name, rule.reason),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> Vec<ForbiddenApi> {
        vec![
            ForbiddenApi {
                name: "f64::max".into(),
                allowed: vec![],
                reason: "discards NaN".into(),
            },
            ForbiddenApi {
                name: "std::process::exit".into(),
                allowed: vec!["crates/serve/src/bin".into()],
                reason: "bins only".into(),
            },
        ]
    }

    fn run(path: &str, src: &str) -> Vec<String> {
        let unit = FileUnit::prepare(path, src);
        let mut out = Vec::new();
        check(&unit, &rules(), &mut out);
        out.into_iter().map(|d| d.message).collect()
    }

    #[test]
    fn qualified_and_imported_spellings_match() {
        let msgs = run(
            "crates/serve/src/refit.rs",
            "fn f() { let m = xs.iter().fold(f64::NEG_INFINITY, f64::max); std::process::exit(1); process::exit(2); }",
        );
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("f64::max"));
    }

    #[test]
    fn allowed_paths_are_exempt() {
        let msgs = run(
            "crates/serve/src/bin/ltm.rs",
            "fn f() { std::process::exit(1); }",
        );
        assert!(msgs.is_empty());
    }

    #[test]
    fn method_call_max_is_not_the_path_form() {
        let msgs = run("crates/serve/src/refit.rs", "fn f() { let x = a.max(b); }");
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn annotation_suppresses() {
        let src = "fn f() {\n// analyzer: allow(forbidden-api) -- inputs pre-mapped\nlet m = f64::max(a, b); }";
        assert!(run("crates/serve/src/refit.rs", src).is_empty());
    }
}
