//! Panic-freedom lint for manifest-listed files.
//!
//! On the request, WAL, and refit paths a panic mid-operation can poison
//! a lock, strand a half-applied ingest, or take down a worker — so
//! `.unwrap()` / `.expect(..)` (`panic-unwrap` / `panic-expect`), the
//! panicking macros (`panic-macro`), and slice/array indexing
//! (`panic-index`) are forbidden there unless annotated with
//! `// analyzer: allow(<check>) -- <reason>`.

use crate::lexer::TokenKind;
use crate::scan::FileUnit;
use crate::Diagnostic;

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may legally precede a `[` that is *not* an index
/// expression (array literals and patterns: `return [a]`, `in [1, 2]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "in", "return", "break", "if", "else", "match", "let", "mut", "ref", "move", "as", "dyn",
    "where", "use", "continue", "yield",
];

/// Runs the pass over `unit` (the caller decides path membership).
pub fn check(unit: &FileUnit, out: &mut Vec<Diagnostic>) {
    let tokens = &unit.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if unit.in_test(i) {
            continue;
        }
        match &t.kind {
            TokenKind::Ident(id) => {
                let next_is = |c: char| tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(c));
                let after_dot = i > 0 && tokens[i - 1].kind.is_punct('.');
                if after_dot && next_is('(') {
                    if id == "unwrap" {
                        push(unit, out, "panic-unwrap", t.line,
                            "`.unwrap()` on a panic-free path — return a typed error, log a 500, or annotate with a reason".into());
                    } else if id == "expect" {
                        push(unit, out, "panic-expect", t.line,
                            "`.expect(..)` on a panic-free path — return a typed error, log a 500, or annotate with a reason".into());
                    }
                }
                if PANIC_MACROS.contains(&id.as_str()) && next_is('!') {
                    push(
                        unit,
                        out,
                        "panic-macro",
                        t.line,
                        format!("`{id}!` on a panic-free path — convert to an error return or annotate with a reason"),
                    );
                }
            }
            TokenKind::Punct('[') if i > 0 => {
                let prev = &tokens[i - 1];
                let is_index = match &prev.kind {
                    TokenKind::Ident(id) => !NON_INDEX_KEYWORDS.contains(&id.as_str()),
                    TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                    _ => false,
                };
                if is_index {
                    push(unit, out, "panic-index", t.line,
                        "slice/array indexing can panic on a panic-free path — use `.get(..)` or annotate with the bound that holds".into());
                }
            }
            _ => {}
        }
    }
}

fn push(unit: &FileUnit, out: &mut Vec<Diagnostic>, check: &str, line: u32, message: String) {
    if unit.is_allowed(check, line) {
        return;
    }
    out.push(Diagnostic {
        file: unit.path.clone(),
        line,
        check: check.to_owned(),
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<String> {
        let unit = FileUnit::prepare("x.rs", src);
        let mut out = Vec::new();
        check(&unit, &mut out);
        out.into_iter().map(|d| d.check).collect()
    }

    #[test]
    fn flags_the_five_shapes() {
        let src =
            "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); let v = xs[0]; }";
        let checks = run(src);
        assert_eq!(
            checks,
            vec![
                "panic-unwrap",
                "panic-expect",
                "panic-macro",
                "panic-macro",
                "panic-index"
            ]
        );
    }

    #[test]
    fn array_literals_types_and_macros_are_not_indexing() {
        let src = "fn f() { let a = [0u8; 4]; let b: [u8; 2] = [1, 2]; let v = vec![3]; for x in [1, 2] {} return [a]; }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn attributes_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() {}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn range_slicing_is_indexing() {
        let src = "fn f(b: &[u8]) { let x = &b[..4]; }";
        assert_eq!(run(src), vec!["panic-index"]);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); v[0]; panic!(); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn annotations_suppress_with_reason() {
        let src = "fn f() { let x = xs[0]; // analyzer: allow(panic-index) -- xs grown above\n a.unwrap(); }";
        assert_eq!(run(src), vec!["panic-unwrap"]);
    }

    #[test]
    fn unwrap_in_string_or_comment_is_invisible() {
        let src = "fn f() { let s = \"call .unwrap() maybe\"; /* a.unwrap() */ }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { a.unwrap_or_else(|| 3); a.unwrap_or(4); a.unwrap_or_default(); }";
        assert!(run(src).is_empty());
    }
}
