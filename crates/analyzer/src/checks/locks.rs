//! Lock-order and double-acquisition analysis.
//!
//! Per function body, the pass extracts guard acquisitions — `.lock()`,
//! `.read()`, `.write()` (and the crate's poison-handling wrappers
//! `.locked()`, `.read_locked()`, `.write_locked()`) with **no
//! arguments**, so `stream.read(&mut buf)` never matches — resolves the
//! receiver's final field name against the manifest's declared locks, and
//! simulates which guards are *held* at each later acquisition:
//!
//! - a `let`-bound guard (`let g = self.log.locked();`) is held until
//!   `drop(g)` or its block closes; `.expect(..)` / `.unwrap()` /
//!   `.unwrap_or_else(..)` after the acquisition are transparent, but any
//!   further method call means the guard was a temporary and the binding
//!   holds a derived value (`let n = self.sources.read().unwrap().len();`
//!   holds no lock past its statement);
//! - a temporary guard is held to the end of its statement — except in
//!   `if let` / `while let` / `match` heads, where Rust 2021 extends the
//!   temporary through the whole construct, and so does this pass;
//! - `for s in &self.shards { s.lock() … }` and
//!   `self.shards.iter().map(|s| s.lock() …)` resolve through one level
//!   of loop-variable / closure-parameter aliasing.
//!
//! Violations: acquiring a lock whose declared rank is lower than a held
//! lock's (`lock-order`), re-acquiring a held lock that is not declared
//! `multi_instance` (`lock-double`), and acquiring a lock inside one of
//! its `never_inside` locks (`lock-order`). The analysis is
//! intra-procedural: a guard passed as `&mut` into a callee is the
//! *callee's* parameter, invisible here — see docs/ANALYZER.md for the
//! soundness boundary.

use crate::lexer::{Token, TokenKind};
use crate::manifest::Manifest;
use crate::scan::{matching_close, FileUnit, FnSpan};
use crate::Diagnostic;

/// A guard the simulation currently considers held.
#[derive(Debug, Clone)]
struct Held {
    lock: String,
    rank: usize,
    line: u32,
    /// Variable the guard is bound to (`None` for extended temporaries).
    var: Option<String>,
    /// Brace depth at which the guard dies (release when depth drops
    /// below this).
    scope_depth: i64,
    /// Statement-scoped temporary (released at `;`).
    temp: bool,
}

/// A loop-variable or closure-parameter alias to a declared lock field.
#[derive(Debug, Clone)]
struct Alias {
    var: String,
    lock: String,
    scope_depth: i64,
}

/// Runs the pass over every function body in `unit`.
pub fn check(unit: &FileUnit, manifest: &Manifest, out: &mut Vec<Diagnostic>) {
    for f in &unit.fns {
        if unit.in_test(f.body_start) {
            continue;
        }
        check_fn(unit, f, manifest, out);
    }
}

fn declared_order(manifest: &Manifest) -> String {
    manifest
        .lock_order
        .iter()
        .map(|l| l.name.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn check_fn(unit: &FileUnit, f: &FnSpan, manifest: &Manifest, out: &mut Vec<Diagnostic>) {
    let tokens = &unit.tokens;
    // Nested fn bodies run on their own call stacks — skip their ranges.
    let nested: Vec<(usize, usize)> = unit
        .fns
        .iter()
        .filter(|g| g.body_start > f.body_start && g.body_end < f.body_end)
        .map(|g| (g.body_start, g.body_end))
        .collect();
    let in_nested = |i: usize| nested.iter().any(|&(s, e)| i > s && i < e);

    let mut held: Vec<Held> = Vec::new();
    let mut aliases: Vec<Alias> = Vec::new();
    let mut depth: i64 = 0;

    // Statement context.
    let mut stmt_start = f.body_start + 1;
    let mut let_var: Option<String> = None;
    let mut awaiting_let_name = false;
    let mut stmt_is_extending = false; // `if let` / `while let` / `match` head

    let mut i = f.body_start;
    while i <= f.body_end {
        if in_nested(i) {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                // Temporaries die at the end of their expression — which
                // is before the block body runs — unless the statement
                // head extends them (`if let`/`while let`/`match`).
                if stmt_is_extending {
                    for h in held.iter_mut().filter(|h| h.temp) {
                        h.temp = false;
                        h.var = None;
                        h.scope_depth = depth;
                    }
                } else {
                    held.retain(|h| !h.temp);
                }
                stmt_start = i + 1;
                let_var = None;
                awaiting_let_name = false;
                stmt_is_extending = false;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                held.retain(|h| !h.temp && h.scope_depth <= depth);
                aliases.retain(|a| a.scope_depth <= depth);
                stmt_start = i + 1;
                let_var = None;
                awaiting_let_name = false;
                stmt_is_extending = false;
            }
            TokenKind::Punct(';') => {
                held.retain(|h| !h.temp);
                stmt_start = i + 1;
                let_var = None;
                awaiting_let_name = false;
                stmt_is_extending = false;
            }
            TokenKind::Ident(id) => {
                match id.as_str() {
                    "let" => {
                        awaiting_let_name = true;
                        // `if let` / `while let` extend condition temporaries.
                        if prev_code_ident(tokens, i, stmt_start)
                            .is_some_and(|p| p == "if" || p == "while")
                        {
                            stmt_is_extending = true;
                        }
                    }
                    "match" => stmt_is_extending = true,
                    "mut" => {} // transparent between `let` and the name
                    "drop" => {
                        // `drop(var)` releases a named guard.
                        if let Some(var) = call_single_ident_arg(tokens, i) {
                            held.retain(|h| h.var.as_deref() != Some(var));
                        }
                    }
                    "for" => {
                        if let Some(alias) = for_loop_alias(tokens, i, manifest) {
                            aliases.push(Alias {
                                scope_depth: depth + 1,
                                ..alias
                            });
                        }
                    }
                    _ => {
                        if awaiting_let_name {
                            let_var = Some(id.clone());
                            awaiting_let_name = false;
                        }
                        // Closure parameter aliasing: `….map(|s| s.lock()…)`.
                        if let Some(alias) = closure_alias(tokens, i, stmt_start, manifest) {
                            aliases.push(Alias {
                                scope_depth: depth,
                                ..alias
                            });
                        }
                        // Guard acquisition site?
                        if let Some(acq) = acquisition_at(tokens, i, manifest, &aliases) {
                            report_conflicts(unit, f, &held, &acq, manifest, out);
                            let bound = let_var.clone().filter(|_| acq.binds_guard);
                            held.push(Held {
                                lock: acq.lock,
                                rank: acq.rank,
                                line: acq.line,
                                temp: bound.is_none(),
                                var: bound,
                                scope_depth: depth,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// A recognized guard acquisition.
struct Acquisition {
    lock: String,
    rank: usize,
    line: u32,
    /// Whether the expression's value *is* the guard (nothing after the
    /// acquisition chain but transparent adapters).
    binds_guard: bool,
}

fn report_conflicts(
    unit: &FileUnit,
    f: &FnSpan,
    held: &[Held],
    acq: &Acquisition,
    manifest: &Manifest,
    out: &mut Vec<Diagnostic>,
) {
    for h in held {
        if h.lock == acq.lock {
            if !manifest.is_multi_instance(&acq.lock) {
                push(unit, out, "lock-double", acq.line, format!(
                    "`{}`: re-acquires `{}` already held since line {} — self-deadlock on a non-reentrant lock",
                    f.name, acq.lock, h.line
                ));
            }
            continue;
        }
        if h.rank > acq.rank {
            push(unit, out, "lock-order", acq.line, format!(
                "`{}`: acquires `{}` (rank {}) while holding `{}` (rank {}, line {}); declared order is {}",
                f.name, acq.lock, acq.rank, h.lock, h.rank, h.line, declared_order(manifest)
            ));
        }
    }
    for ni in &manifest.never_inside {
        if ni.lock == acq.lock {
            for h in held {
                if ni.inside.iter().any(|n| n == &h.lock) {
                    push(unit, out, "lock-order", acq.line, format!(
                        "`{}`: acquires `{}` while holding `{}` (line {}), but the manifest declares `{}` is never taken inside `{}`",
                        f.name, acq.lock, h.lock, h.line, ni.lock, h.lock
                    ));
                }
            }
        }
    }
}

fn push(unit: &FileUnit, out: &mut Vec<Diagnostic>, check: &str, line: u32, message: String) {
    if unit.is_allowed(check, line) {
        return;
    }
    out.push(Diagnostic {
        file: unit.path.clone(),
        line,
        check: check.to_owned(),
        message,
    });
}

/// The nearest identifier before `i` within the current statement.
fn prev_code_ident(tokens: &[Token], i: usize, stmt_start: usize) -> Option<&str> {
    tokens[stmt_start..i]
        .iter()
        .rev()
        .find_map(|t| t.kind.ident())
}

/// For `name ( ident )` at the `name` token, returns the single ident arg.
fn call_single_ident_arg(tokens: &[Token], i: usize) -> Option<&str> {
    if !tokens.get(i + 1)?.kind.is_punct('(') {
        return None;
    }
    let arg = tokens.get(i + 2)?.kind.ident()?;
    if tokens.get(i + 3)?.kind.is_punct(')') {
        Some(arg)
    } else {
        None
    }
}

/// `for <var> in <expr> {`: aliases `var` to a declared lock mentioned in
/// the iterated expression (e.g. `for shard in &self.shards`).
fn for_loop_alias(tokens: &[Token], i: usize, manifest: &Manifest) -> Option<Alias> {
    let var = tokens.get(i + 1)?.kind.ident()?.to_owned();
    if tokens.get(i + 2)?.kind.ident() != Some("in") {
        return None;
    }
    let mut j = i + 3;
    while let Some(t) = tokens.get(j) {
        if t.kind.is_punct('{') {
            break;
        }
        if let Some(id) = t.kind.ident() {
            if manifest.rank_of(id).is_some() {
                return Some(Alias {
                    var,
                    lock: id.to_owned(),
                    scope_depth: 0, // caller sets
                });
            }
        }
        j += 1;
    }
    None
}

/// Closure-parameter aliasing: at an ident that is a closure's first
/// parameter (`(`/`,`/`move` then `|ident|` or `|ident,`), aliases it to
/// a declared lock named earlier in the same statement's chain —
/// `self.shards.iter().map(|s| s.lock())` resolves `s` to `shards`.
fn closure_alias(
    tokens: &[Token],
    i: usize,
    stmt_start: usize,
    manifest: &Manifest,
) -> Option<Alias> {
    if i < 1 || !tokens[i - 1].kind.is_punct('|') {
        return None;
    }
    let opener = tokens.get(i.checked_sub(2)?)?;
    let opens_closure = opener.kind.is_punct('(')
        || opener.kind.is_punct(',')
        || opener.kind.ident() == Some("move");
    if !opens_closure {
        return None;
    }
    let next = tokens.get(i + 1)?;
    if !(next.kind.is_punct('|') || next.kind.is_punct(',') || next.kind.is_punct(':')) {
        return None;
    }
    // Find the nearest declared lock mentioned earlier in the statement.
    let lock = tokens[stmt_start..i]
        .iter()
        .rev()
        .filter_map(|t| t.kind.ident())
        .find(|id| manifest.rank_of(id).is_some())?;
    Some(Alias {
        var: tokens[i].kind.ident()?.to_owned(),
        lock: lock.to_owned(),
        scope_depth: 0, // caller sets
    })
}

/// Recognizes a guard acquisition whose *method name* token is at `i`:
/// `. <method> ( )` with the receiver resolving to a declared lock.
fn acquisition_at(
    tokens: &[Token],
    i: usize,
    manifest: &Manifest,
    aliases: &[Alias],
) -> Option<Acquisition> {
    let method = tokens[i].kind.ident()?;
    if !manifest.lock_methods.iter().any(|m| m == method) {
        return None;
    }
    if i == 0 || !tokens[i - 1].kind.is_punct('.') {
        return None;
    }
    // Zero-argument call only: `()` — `stream.read(&mut buf)` is I/O.
    if !(tokens.get(i + 1)?.kind.is_punct('(') && tokens.get(i + 2)?.kind.is_punct(')')) {
        return None;
    }
    // Resolve the receiver's final field: walk back over `]…[` index
    // groups to the owning ident.
    let mut r = i - 2; // token before the `.`
    loop {
        let t = tokens.get(r)?;
        if t.kind.is_punct(']') {
            // Walk back to the matching `[`.
            let mut d = 0i64;
            loop {
                let tk = tokens.get(r)?;
                if tk.kind.is_punct(']') {
                    d += 1;
                } else if tk.kind.is_punct('[') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                r = r.checked_sub(1)?;
            }
            r = r.checked_sub(1)?;
            continue;
        }
        break;
    }
    let field = tokens.get(r)?.kind.ident()?;
    let lock = if manifest.rank_of(field).is_some() {
        field.to_owned()
    } else if let Some(a) = aliases.iter().rev().find(|a| a.var == field) {
        a.lock.clone()
    } else {
        return None;
    };
    let rank = manifest.rank_of(&lock)?;

    // Guard fate: skip transparent adapters after the call, then see
    // whether the chain continues (derived value → temporary only).
    let mut j = i + 3; // past `( )`
    loop {
        if tokens.get(j).is_some_and(|t| t.kind.is_punct('.'))
            && tokens.get(j + 1).is_some_and(|t| {
                matches!(
                    t.kind.ident(),
                    Some("expect") | Some("unwrap") | Some("unwrap_or_else")
                )
            })
            && tokens.get(j + 2).is_some_and(|t| t.kind.is_punct('('))
        {
            j = matching_close(tokens, j + 2, '(', ')') + 1;
            continue;
        }
        break;
    }
    let chained_on = tokens.get(j).is_some_and(|t| t.kind.is_punct('.'));
    Some(Acquisition {
        lock,
        rank,
        line: tokens[i].line,
        binds_guard: !chained_on,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest;

    const MANIFEST: &str = r#"
[locks]
order = ["log", "sources", "shards", "registry"]
multi_instance = ["shards"]
methods = ["lock", "read", "write", "locked", "read_locked", "write_locked"]

[[locks.never_inside]]
lock = "persist"
inside = ["shards"]
"#;

    fn run(src: &str) -> Vec<Diagnostic> {
        // `persist` participates via never_inside; give it a rank too so
        // rank lookups succeed.
        let text = MANIFEST.replace("order = [\"log\"", "order = [\"persist\", \"log\"");
        let m = manifest::parse(&text).unwrap();
        let unit = FileUnit::prepare("x.rs", src);
        let mut out = Vec::new();
        check(&unit, &m, &mut out);
        out
    }

    #[test]
    fn in_order_nesting_is_clean() {
        let src = "fn f(&self) { let g = self.log.lock().expect(\"l\"); let s = self.shards[0].lock().unwrap(); let r = self.registry.write().unwrap(); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn out_of_order_is_flagged() {
        let src = "fn f(&self) { let s = self.shards[0].lock().unwrap(); let g = self.log.lock().unwrap(); }";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "lock-order");
        assert!(d[0].message.contains("`log`"), "{}", d[0].message);
    }

    #[test]
    fn double_acquire_is_flagged_but_multi_instance_is_not() {
        let src =
            "fn f(&self) { let a = self.log.lock().unwrap(); let b = self.log.lock().unwrap(); }";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].check, "lock-double");

        let src = "fn f(&self) { let a = self.shards[0].lock().unwrap(); let b = self.shards[1].lock().unwrap(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn dropped_guard_releases() {
        let src = "fn f(&self) { let s = self.shards[0].lock().unwrap(); drop(s); let g = self.log.lock().unwrap(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn block_scope_releases() {
        let src = "fn f(&self) { { let s = self.shards[0].lock().unwrap(); } let g = self.log.lock().unwrap(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn derived_value_does_not_hold_the_lock() {
        // `.get(..)` after the guard chain copies a value out; the guard
        // is a temporary released at the statement end.
        let src = "fn f(&self) { let loc = self.registry.read().unwrap().get(0); let s = self.shards[0].lock().unwrap(); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn held_guard_binding_is_tracked_past_a_second_acquisition() {
        // The binding DOES hold the registry guard; shards after it is a
        // rank inversion.
        let src = "fn f(&self) { let reg = self.registry.read().unwrap(); let s = self.shards[0].lock().unwrap(); }";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "lock-order");
    }

    #[test]
    fn if_let_head_temporary_extends_through_the_body() {
        let src = "fn f(&self) { if let Some(x) = self.registry.read().unwrap().get(0) { let s = self.shards[0].lock().unwrap(); } }";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "lock-order");
        // …but after the construct the temporary is gone.
        let src = "fn f(&self) { if let Some(x) = self.registry.read().unwrap().get(0) { y(); } let s = self.shards[0].lock().unwrap(); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn closure_alias_resolves_the_shard_pool() {
        let src = "fn f(&self) { let guards: Vec<_> = self.shards.iter().map(|s| s.lock().unwrap()).collect(); let r = self.log.lock().unwrap(); }";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "lock-order");
        assert!(d[0].message.contains("`log`"));
    }

    #[test]
    fn for_loop_alias_resolves_and_releases_per_iteration() {
        let src = "fn f(&self) { for shard in &self.shards { let sh = shard.lock().unwrap(); } let g = self.log.lock().unwrap(); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn never_inside_is_enforced() {
        let src = "fn f(&self) { let s = self.shards[0].lock().unwrap(); let p = self.persist.lock().unwrap(); }";
        let d = run(src);
        assert!(
            d.iter().any(|d| d.message.contains("never taken inside")),
            "{d:?}"
        );
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let src = "fn f(&self) { let s = self.shards[0].lock().unwrap(); let n = stream.read(&mut buf); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = "fn f(&self) { let s = self.shards[0].lock().unwrap();\n// analyzer: allow(lock-order) -- sources is a leaf here\nlet g = self.log.lock().unwrap(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn wrapper_methods_are_acquisitions() {
        let src = "fn f(&self) { let s = self.shards[0].locked(); let g = self.log.locked(); }";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].check, "lock-order");
    }
}
