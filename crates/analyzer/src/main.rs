//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p ltm-analyzer                 # analyze the workspace; exit 1 on findings
//! cargo run -p ltm-analyzer -- --self-test  # fixture suite: every fixture must go red
//! cargo run -p ltm-analyzer -- --explain lock-order
//! ```
//!
//! Exit codes: 0 clean / all fixtures behave, 1 findings or fixture
//! mismatch, 2 usage or configuration error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ltm_analyzer::{analyze_source, analyze_workspace, explain, load_manifest, scan};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut explain_id: Option<String> = None;
    let mut self_test = false;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return usage("--root needs a path");
                };
                root = Some(PathBuf::from(v));
            }
            "--explain" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return usage("--explain needs a check id");
                };
                explain_id = Some(v.clone());
            }
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    if let Some(id) = explain_id {
        return match explain::explain(&id) {
            Some(text) => {
                println!("{id}\n{}\n\n{text}", "-".repeat(id.len()));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: unknown check id `{id}`; known ids:");
                for (known, _) in explain::EXPLANATIONS {
                    eprintln!("  {known}");
                }
                ExitCode::from(2)
            }
        };
    }

    let root = match root.map(Ok).unwrap_or_else(find_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let manifest = match load_manifest(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if self_test {
        return run_self_test(&root, &manifest);
    }

    match analyze_workspace(&root, &manifest) {
        Ok(diags) if diags.is_empty() => {
            println!("ltm-analyzer: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!(
                "\nltm-analyzer: {} finding(s); run with `--explain <check-id>` for details",
                diags.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Ascends from the current directory to the first one holding an
/// `analyzer.toml`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd unavailable: {e}"))?;
    loop {
        if dir.join("analyzer.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no analyzer.toml found here or in any parent (or pass --root)".into());
        }
    }
}

/// Runs every fixture under `crates/analyzer/tests/fixtures/` with all
/// path-scoped passes forced on, and requires the produced check-id set
/// to equal the fixture's `// expect:` header exactly.
fn run_self_test(root: &Path, manifest: &ltm_analyzer::manifest::Manifest) -> ExitCode {
    let dir = root.join("crates/analyzer/tests/fixtures");
    let fixtures = scan::collect_rs_files(&dir, &[]);
    if fixtures.is_empty() {
        eprintln!("error: no fixtures under {}", dir.display());
        return ExitCode::from(2);
    }
    let mut failed = 0usize;
    for path in &fixtures {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL {name}: read failed: {e}");
                failed += 1;
                continue;
            }
        };
        let mut expected = expected_checks(&src);
        expected.sort();
        if expected.is_empty() {
            eprintln!("FAIL {name}: fixture has no `// expect: <check-id>` header");
            failed += 1;
            continue;
        }
        let rel = format!("crates/analyzer/tests/fixtures/{name}");
        let mut got: Vec<String> = analyze_source(&rel, &src, manifest, true)
            .into_iter()
            .map(|d| d.check)
            .collect();
        got.sort();
        got.dedup();
        if got == expected {
            println!("ok   {name}: {}", expected.join(", "));
        } else {
            eprintln!(
                "FAIL {name}: expected [{}], got [{}]",
                expected.join(", "),
                got.join(", ")
            );
            failed += 1;
        }
    }
    if failed == 0 {
        println!(
            "ltm-analyzer self-test: {} fixture(s) all red with expected check-ids",
            fixtures.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("ltm-analyzer self-test: {failed} fixture(s) FAILED");
        ExitCode::FAILURE
    }
}

/// Parses `// expect: a, b` header lines (deduplicated, unsorted).
fn expected_checks(src: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix("// expect:") else {
            continue;
        };
        for id in rest.split(',') {
            let id = id.trim();
            if !id.is_empty() && !out.iter().any(|x| x == id) {
                out.push(id.to_owned());
            }
        }
    }
    out
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    print_help();
    ExitCode::from(2)
}

fn print_help() {
    println!(
        "ltm-analyzer — static analysis for the latent-truth workspace

USAGE:
    ltm-analyzer [--root <dir>]     analyze the workspace (exit 1 on findings)
    ltm-analyzer --self-test        run the fixture suite (each must go red)
    ltm-analyzer --explain <id>     describe a check id

Invariants come from analyzer.toml at the workspace root; see
docs/ANALYZER.md for the full check list and suppression policy."
    );
}
