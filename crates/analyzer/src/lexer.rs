//! A hand-rolled Rust lexer, sufficient for invariant scanning.
//!
//! The checks in this crate only need a token stream that is *reliable
//! about what is code and what is not*: comments, string literals, char
//! literals, and raw strings must never leak their contents into the
//! token stream (a `panic!` inside a doc comment is not a diagnostic).
//! Everything else — idents, punctuation, literals — is passed through
//! with line numbers so diagnostics can point at the source.
//!
//! The lexer also collects `// analyzer: allow(...)` annotation comments
//! as structured [`AllowAnnotation`]s, since those live in exactly the
//! trivia the token stream drops.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Token classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `self`, `unwrap`, …).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `{`, `!`, …).
    Punct(char),
    /// String, byte-string, or raw-string literal (contents dropped).
    Str,
    /// Character or byte literal (contents dropped).
    Char,
    /// Numeric literal (text dropped).
    Num,
    /// Lifetime such as `'a` (name dropped).
    Lifetime,
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }
}

/// A parsed `// analyzer: allow(<checks>) -- <reason>` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowAnnotation {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Check ids listed inside `allow(...)`.
    pub checks: Vec<String>,
    /// The justification after `--` (may be empty — checked later).
    pub reason: String,
    /// Whether the annotation parsed well-formed (`allow(...)` with a
    /// `-- reason` tail). Malformed ones become `allow-syntax` errors.
    pub well_formed: bool,
    /// Whether any code precedes the comment on its line (a trailing
    /// annotation covers its own line; a standalone one covers the next).
    pub trailing: bool,
}

/// Lexer output: the token stream plus the annotation comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// `// analyzer: allow(...)` annotations found in comments.
    pub allows: Vec<AllowAnnotation>,
}

/// Lexes `src`. Never fails: unterminated literals simply consume to the
/// end of input (the compiler is the authority on syntax errors; the
/// analyzer only needs to stay out of strings and comments).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_had_code = false;

    macro_rules! bump_lines {
        ($range:expr) => {
            for &b in &bytes[$range] {
                if b == b'\n' {
                    line += 1;
                    line_had_code = false;
                }
            }
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                line_had_code = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = memchr_newline(bytes, i);
                let text = &src[i..end];
                if let Some(ann) = parse_allow_comment(text, line, line_had_code) {
                    out.allows.push(ann);
                }
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nested per Rust.
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines!(start..i);
            }
            b'"' => {
                let start = i;
                i = skip_string(bytes, i + 1);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                });
                line_had_code = true;
                bump_lines!(start..i);
            }
            b'r' | b'b' if starts_raw_or_byte_literal(bytes, i) => {
                let start = i;
                let (kind, end) = lex_r_or_b(bytes, i);
                i = end;
                out.tokens.push(Token { kind, line });
                line_had_code = true;
                bump_lines!(start..i);
            }
            b'\'' => {
                // Lifetime or char literal.
                let start = i;
                let (kind, end) = lex_quote(bytes, i);
                i = end;
                out.tokens.push(Token { kind, line });
                line_had_code = true;
                bump_lines!(start..i);
            }
            b'0'..=b'9' => {
                i = skip_number(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Num,
                    line,
                });
                line_had_code = true;
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_owned()),
                    line,
                });
                line_had_code = true;
            }
            _ => {
                // Multi-byte UTF-8 inside code can only appear in idents
                // (already handled via is_ident_start for ASCII; non-ASCII
                // idents are rare — treat bytes as opaque punct-ish and
                // advance one whole char).
                let ch = src[i..].chars().next().unwrap_or('\0');
                if ch.is_ascii() {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct(ch),
                        line,
                    });
                } else if ch.is_alphabetic() {
                    let start = i;
                    i += ch.len_utf8();
                    while i < bytes.len() {
                        let c = src[i..].chars().next().unwrap_or('\0');
                        if c.is_alphanumeric() || c == '_' {
                            i += c.len_utf8();
                        } else {
                            break;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident(src[start..i].to_owned()),
                        line,
                    });
                    line_had_code = true;
                    continue;
                }
                line_had_code = true;
                i += ch.len_utf8().max(1);
            }
        }
    }
    out
}

/// Whether `r`/`b` at `i` begins a raw string, byte string, byte char, or
/// raw identifier (vs a plain identifier starting with r/b).
fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'\'') | Some(b'r')),
        _ => false,
    }
}

/// Lexes a token starting with `r` or `b` already known to be a literal
/// or raw identifier. Returns `(kind, end_index)`.
fn lex_r_or_b(bytes: &[u8], i: usize) -> (TokenKind, usize) {
    match bytes[i] {
        b'r' => {
            // r"..." or r#"..."# or r#ident (raw identifier).
            let mut j = i + 1;
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                (TokenKind::Str, skip_raw_string(bytes, j + 1, hashes))
            } else if hashes == 1 && bytes.get(j).is_some_and(|&b| is_ident_start(b)) {
                // Raw identifier r#ident.
                let start = j;
                let mut k = start;
                while k < bytes.len() && is_ident_continue(bytes[k]) {
                    k += 1;
                }
                let text = String::from_utf8_lossy(&bytes[start..k]).into_owned();
                (TokenKind::Ident(text), k)
            } else {
                // `r#` with nothing lexable: treat as ident `r`.
                (TokenKind::Ident("r".into()), i + 1)
            }
        }
        b'b' => match bytes.get(i + 1) {
            Some(b'"') => (TokenKind::Str, skip_string(bytes, i + 2)),
            Some(b'\'') => {
                let (_, end) = lex_quote(bytes, i + 1);
                (TokenKind::Char, end)
            }
            Some(b'r') => {
                let mut j = i + 2;
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    (TokenKind::Str, skip_raw_string(bytes, j + 1, hashes))
                } else {
                    (TokenKind::Ident("b".into()), i + 1)
                }
            }
            _ => (TokenKind::Ident("b".into()), i + 1),
        },
        _ => unreachable!("caller checked the prefix"),
    }
}

/// Skips a `"..."` body starting just after the opening quote, honoring
/// backslash escapes. Returns the index just past the closing quote.
fn skip_string(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string body (after the opening quote) terminated by
/// `"` followed by `hashes` `#`s.
fn skip_raw_string(bytes: &[u8], mut i: usize, hashes: usize) -> usize {
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Lexes at a `'`: either a lifetime (`'a`) or a char literal (`'x'`,
/// `'\n'`, `'\u{1F600}'`). Returns `(kind, end_index)`.
fn lex_quote(bytes: &[u8], i: usize) -> (TokenKind, usize) {
    let next = bytes.get(i + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: skip to the closing quote.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return (TokenKind::Char, j + 1),
                    _ => j += 1,
                }
            }
            (TokenKind::Char, j)
        }
        Some(b) if is_ident_start(b) => {
            // `'a` could be a lifetime or `'a'` a char literal.
            let mut j = i + 1;
            while j < bytes.len() && is_ident_continue(bytes[j]) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') && j == i + 2 {
                (TokenKind::Char, j + 1)
            } else {
                (TokenKind::Lifetime, j)
            }
        }
        Some(_) => {
            // Non-ident char literal like '.' or '"' — find closing quote.
            if bytes.get(i + 2) == Some(&b'\'') {
                (TokenKind::Char, i + 3)
            } else {
                (TokenKind::Punct('\''), i + 1)
            }
        }
        None => (TokenKind::Punct('\''), i + 1),
    }
}

/// Skips a numeric literal (integers, floats, underscores, suffixes)
/// without swallowing `..` range punctuation.
fn skip_number(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1) != Some(&b'.') {
        // Fractional part — but `1.max(2)` is a method call, not a float:
        // only consume when a digit follows.
        if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    i
}

fn memchr_newline(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parses one line comment into an [`AllowAnnotation`] if it carries the
/// `analyzer:` marker. Returns `None` for ordinary comments.
fn parse_allow_comment(text: &str, line: u32, trailing: bool) -> Option<AllowAnnotation> {
    let body = text.trim_start_matches('/').trim();
    let rest = body.strip_prefix("analyzer:")?.trim();
    let malformed = |reason: &str| AllowAnnotation {
        line,
        checks: Vec::new(),
        reason: reason.to_owned(),
        well_formed: false,
        trailing,
    };
    let Some(rest) = rest.strip_prefix("allow") else {
        return Some(malformed("only `allow(...)` is recognized"));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(malformed("missing `(` after allow"));
    };
    let Some((list, tail)) = rest.split_once(')') else {
        return Some(malformed("missing `)` after check list"));
    };
    let checks: Vec<String> = list
        .split(',')
        .map(|c| c.trim().to_owned())
        .filter(|c| !c.is_empty())
        .collect();
    if checks.is_empty() {
        return Some(malformed("empty check list"));
    }
    let tail = tail.trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return Some(malformed("missing `-- <reason>`"));
    };
    let reason = reason.trim().to_owned();
    if reason.is_empty() {
        return Some(malformed("empty reason after `--`"));
    }
    Some(AllowAnnotation {
        line,
        checks,
        reason,
        well_formed: true,
        trailing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_and_strings_drop_contents() {
        let src = r##"
            // unwrap() panic! .lock()
            /* eprintln!("x") /* nested unwrap() */ still comment */
            let s = "panic!(\"in a string\") .lock()";
            let r = r#"unwrap() "quoted" panic!"#;
            let c = 'p';
            let b = b"bytes with unwrap()";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "panic"));
        assert!(ids.contains(&"let".to_owned()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';";
        let toks = lex(src);
        let lifetimes = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!((lifetimes, chars), (3, 1));
    }

    #[test]
    fn escaped_char_literal_does_not_derail() {
        let ids = idents(r"let q = '\''; let x = y.unwrap();");
        assert!(ids.contains(&"unwrap".to_owned()));
    }

    #[test]
    fn line_numbers_track() {
        let src = "a\nb\n  c";
        let toks = lex(src).tokens;
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn allow_annotation_parses() {
        let src = "x(); // analyzer: allow(panic-unwrap, panic-index) -- bounds checked above\n";
        let lexed = lex(src);
        let ann = &lexed.allows[0];
        assert!(ann.well_formed);
        assert!(ann.trailing);
        assert_eq!(ann.checks, vec!["panic-unwrap", "panic-index"]);
        assert_eq!(ann.reason, "bounds checked above");
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "// analyzer: allow(panic-unwrap)\nx();";
        let lexed = lex(src);
        assert!(!lexed.allows[0].well_formed);
        assert!(!lexed.allows[0].trailing);
    }

    #[test]
    fn number_then_method_is_not_swallowed() {
        let ids = idents("let x = 1.max(2); let y = 1.5_f64; let r = 0..n;");
        assert!(ids.contains(&"max".to_owned()));
        assert!(ids.contains(&"n".to_owned()));
    }
}
