//! File preparation: lexing plus structural landmarks.
//!
//! The checks need three structural facts the raw token stream doesn't
//! carry: which token ranges are test code (`#[cfg(test)]` modules and
//! `#[test]` functions — exempt from every check), where function bodies
//! begin and end (the lock-order analysis is per-body), and which lines
//! carry `// analyzer: allow(...)` suppressions.

use crate::lexer::{lex, AllowAnnotation, Token};
use std::path::{Path, PathBuf};

/// A function found in a file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name (for diagnostics).
    pub name: String,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index of the matching `}` (exclusive range end is `+1`).
    pub body_end: usize,
}

/// A lexed file with its structural landmarks.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Allow annotations by line.
    pub allows: Vec<AllowAnnotation>,
    /// Token ranges `[start, end)` that are test code.
    pub test_spans: Vec<(usize, usize)>,
    /// Function bodies, in source order (includes nested functions).
    pub fns: Vec<FnSpan>,
}

impl FileUnit {
    /// Lexes and indexes `src`.
    pub fn prepare(path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let test_spans = find_test_spans(&lexed.tokens);
        let fns = find_fns(&lexed.tokens, &test_spans);
        FileUnit {
            path: path.to_owned(),
            tokens: lexed.tokens,
            allows: lexed.allows,
            test_spans,
            fns,
        }
    }

    /// Whether token index `i` lies inside test code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// Whether a diagnostic of `check` at `line` is suppressed by a
    /// well-formed allow annotation (trailing on the same line, or
    /// standalone on the line directly above).
    pub fn is_allowed(&self, check: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.well_formed
                && a.checks.iter().any(|c| c == check)
                && ((a.trailing && a.line == line) || (!a.trailing && a.line + 1 == line))
        })
    }
}

/// Finds the token index of the matching closing delimiter for the
/// opener at `open` (`{`/`}`, `[`/`]`, `(`/`)`), or the stream end.
pub fn matching_close(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind.is_punct(open_ch) {
            depth += 1;
        } else if t.kind.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Token ranges covered by `#[cfg(test)]` items and `#[test]` functions.
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    let mut pending_test_attr = false;
    while i < tokens.len() {
        if tokens[i].kind.is_punct('#') {
            // `#[...]` or `#![...]`: scan the attribute contents.
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].kind.is_punct('!') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].kind.is_punct('[') {
                let end = matching_close(tokens, j, '[', ']');
                if attr_is_test(&tokens[j + 1..end]) {
                    pending_test_attr = true;
                }
                i = end + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if pending_test_attr {
            // The attribute's item: skip to its body/terminator and mark
            // the whole range. Items without braces (e.g. `use`) end at
            // the first `;` at depth zero.
            let start = i;
            let mut j = i;
            let end = loop {
                if j >= tokens.len() {
                    break tokens.len();
                }
                if tokens[j].kind.is_punct('{') {
                    break matching_close(tokens, j, '{', '}') + 1;
                }
                if tokens[j].kind.is_punct(';') {
                    break j + 1;
                }
                j += 1;
            };
            spans.push((start, end));
            pending_test_attr = false;
            i = end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Whether attribute tokens (inside `#[...]`) mean "test code": exactly
/// `test` or `cfg(test)` / `cfg(any(test, ...))`.
fn attr_is_test(attr: &[Token]) -> bool {
    let idents: Vec<&str> = attr.iter().filter_map(|t| t.kind.ident()).collect();
    match idents.as_slice() {
        ["test"] => true,
        [first, rest @ ..] if *first == "cfg" => {
            // cfg(test), cfg(any(test, fuzzing)), … — but NOT cfg(not(test)).
            rest.contains(&"test") && !rest.contains(&"not")
        }
        _ => false,
    }
}

/// Locates every `fn` body outside test spans.
fn find_fns(tokens: &[Token], test_spans: &[(usize, usize)]) -> Vec<FnSpan> {
    let in_test = |i: usize| test_spans.iter().any(|&(s, e)| i >= s && i < e);
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if in_test(i) || tokens[i].kind.ident() != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.kind.ident() else {
            i += 1;
            continue;
        };
        // Find the body `{` at paren depth zero; a `;` first means a
        // trait/extern declaration without a body.
        let mut j = i + 2;
        let mut paren = 0i64;
        let body = loop {
            let Some(t) = tokens.get(j) else {
                break None;
            };
            if t.kind.is_punct('(') {
                paren += 1;
            } else if t.kind.is_punct(')') {
                paren -= 1;
            } else if paren == 0 && t.kind.is_punct('{') {
                break Some(j);
            } else if paren == 0 && t.kind.is_punct(';') {
                break None;
            }
            j += 1;
        };
        match body {
            Some(start) => {
                let end = matching_close(tokens, start, '{', '}');
                fns.push(FnSpan {
                    name: name.to_owned(),
                    body_start: start,
                    body_end: end,
                });
                // Continue scanning *inside* the body so nested fns are
                // found too; the lock check skips nested ranges itself.
                i = start + 1;
            }
            None => i = j + 1,
        }
    }
    fns
}

/// Recursively collects `.rs` files under `dir` (sorted for stable
/// output). `skip_dirs` are directory names pruned wherever they appear.
pub fn collect_rs_files(dir: &Path, skip_dirs: &[&str]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if skip_dirs.contains(&name) {
                continue;
            }
            out.extend(collect_rs_files(&path, skip_dirs));
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    out
}

/// The workspace source set the analyzer walks: `src/` of the root crate
/// plus `crates/*/src/`. Vendored shims, tests, examples, and benches
/// are outside the invariant surface.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = collect_rs_files(&root.join("src"), &["target"]);
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return out;
    };
    let mut members: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    members.sort();
    for member in members {
        out.extend(collect_rs_files(&member.join("src"), &["target"]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_spanned() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let unit = FileUnit::prepare("f.rs", src);
        assert_eq!(unit.test_spans.len(), 1);
        // The second `unwrap` ident must be inside the span.
        let unwraps: Vec<usize> = unit
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind.ident() == Some("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unit.in_test(unwraps[0]));
        assert!(unit.in_test(unwraps[1]));
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let unit = FileUnit::prepare("f.rs", src);
        assert!(unit.test_spans.is_empty());
    }

    #[test]
    fn test_attr_fn_is_spanned() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn live() {}\n";
        let unit = FileUnit::prepare("f.rs", src);
        assert_eq!(unit.test_spans.len(), 1);
        assert_eq!(unit.fns.iter().filter(|f| f.name == "live").count(), 1);
    }

    #[test]
    fn fn_bodies_are_found_including_nested() {
        let src = "fn outer() { fn inner() { a(); } b(); }\ntrait T { fn decl(&self); }\n";
        let unit = FileUnit::prepare("f.rs", src);
        let names: Vec<&str> = unit.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn where_clause_and_generics_do_not_confuse_body_start() {
        let src = "fn f<T: Clone>(x: T) -> Vec<T> where T: Send { g(); }\n";
        let unit = FileUnit::prepare("f.rs", src);
        assert_eq!(unit.fns.len(), 1);
        let body = &unit.tokens[unit.fns[0].body_start..unit.fns[0].body_end];
        assert!(body.iter().any(|t| t.kind.ident() == Some("g")));
    }

    #[test]
    fn allow_suppression_lines() {
        let src = "a(); // analyzer: allow(x) -- fine\n// analyzer: allow(y) -- next line\nb();\n";
        let unit = FileUnit::prepare("f.rs", src);
        assert!(unit.is_allowed("x", 1));
        assert!(!unit.is_allowed("x", 2));
        assert!(unit.is_allowed("y", 3));
        assert!(!unit.is_allowed("y", 2));
    }
}
