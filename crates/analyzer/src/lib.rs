//! ltm-analyzer: workspace static analysis for the latent-truth serving
//! stack.
//!
//! A hand-rolled lexer + lightweight scanner (std-only, matching the
//! repo's vendored-deps policy) that enforces the invariants declared in
//! `analyzer.toml` at the workspace root:
//!
//! * **lock-order / lock-double** — every function acquires the store's
//!   locks consistently with the declared partial order
//!   (log → sources → shard → registry) and never re-acquires a held
//!   lock (crates/analyzer/src/checks/locks.rs).
//! * **panic-unwrap / panic-expect / panic-macro / panic-index** — the
//!   listed serve-path files are panic-free unless a site carries an
//!   `// analyzer: allow(<check>) -- <reason>` annotation
//!   (checks/panics.rs).
//! * **log-print** — no direct stdout/stderr writes inside the serving
//!   tree; the leveled logger is the only sink (checks/logging.rs).
//! * **forbidden-api** — manifest-banned names (`SystemTime::now`,
//!   `process::exit`, `f64::max`) outside their allowed paths
//!   (checks/forbidden.rs).
//!
//! The analysis is deliberately *intra-procedural and syntactic*: it
//! sees tokens, not types, and function calls are opaque. That boundary
//! is documented in docs/ANALYZER.md; the allow-annotation escape hatch
//! exists for the (rare, reviewed) sites where the analysis is wrong.

use std::fmt;
use std::path::Path;

pub mod checks;
pub mod explain;
pub mod lexer;
pub mod manifest;
pub mod scan;

use manifest::Manifest;
use scan::FileUnit;

/// One finding, printed rustc-style as `file:line: error[check]: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Check id (see [`explain::EXPLANATIONS`]).
    pub check: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.file, self.line, self.check, self.message
        )
    }
}

/// Analyzes one file's source text.
///
/// `path` is the workspace-relative path used both for diagnostics and
/// for deciding which manifest path-scoped passes apply. With
/// `force_all`, the panic and logging passes run regardless of path —
/// used by the fixture suite, whose files live outside the serve tree.
pub fn analyze_source(
    path: &str,
    src: &str,
    manifest: &Manifest,
    force_all: bool,
) -> Vec<Diagnostic> {
    let unit = FileUnit::prepare(path, src);
    let mut out = Vec::new();

    // Malformed or unknown-id allow annotations are themselves findings:
    // an allow that doesn't parse silently fails to suppress (or worse,
    // records no reason).
    for a in &unit.allows {
        if !a.well_formed {
            out.push(Diagnostic {
                file: path.to_owned(),
                line: a.line,
                check: "allow-syntax".to_owned(),
                message: "malformed allow annotation — expected \
                          `// analyzer: allow(check-a, check-b) -- reason`"
                    .to_owned(),
            });
            continue;
        }
        for c in &a.checks {
            if explain::explain(c).is_none() {
                out.push(Diagnostic {
                    file: path.to_owned(),
                    line: a.line,
                    check: "allow-syntax".to_owned(),
                    message: format!("allow annotation names unknown check `{c}`"),
                });
            }
        }
    }

    checks::locks::check(&unit, manifest, &mut out);
    if force_all
        || manifest
            .panic_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    {
        checks::panics::check(&unit, &mut out);
    }
    if force_all
        || checks::logging::applies(path, &manifest.logging_paths, &manifest.logging_allowed)
    {
        checks::logging::check(&unit, &mut out);
    }
    checks::forbidden::check(&unit, &manifest.forbidden, &mut out);

    out.sort_by(|a, b| (a.line, &a.check).cmp(&(b.line, &b.check)));
    out
}

/// Walks the workspace source set under `root` and runs every pass.
///
/// Returns diagnostics sorted by (file, line, check), or an error string
/// for an unreadable file.
pub fn analyze_workspace(root: &Path, manifest: &Manifest) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();
    for abs in scan::workspace_files(root) {
        let rel = abs
            .strip_prefix(root)
            .unwrap_or(&abs)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("{}: read failed: {e}", abs.display()))?;
        out.extend(analyze_source(&rel, &src, manifest, false));
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.check).cmp(&(&b.file, b.line, &b.check)));
    Ok(out)
}

/// Reads and parses `analyzer.toml` under `root`.
pub fn load_manifest(root: &Path) -> Result<Manifest, String> {
    let path = root.join("analyzer.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
    manifest::parse(&text).map_err(|e| format!("{}:{}: {}", path.display(), e.line, e.message))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_manifest() -> Manifest {
        manifest::parse(
            r#"
[locks]
order = ["log", "sources", "shards", "registry"]
multi_instance = ["shards"]

[panic]
paths = ["crates/serve/src/wal.rs"]

[logging]
paths = ["crates/serve/src"]
allowed = ["crates/serve/src/obs/log.rs"]

[[forbidden]]
name = "std::process::exit"
allowed = ["crates/serve/src/bin"]
reason = "bins only"
"#,
        )
        .expect("manifest parses")
    }

    #[test]
    fn path_scoping_gates_panic_and_logging_passes() {
        let m = mini_manifest();
        let src = "fn f() { a.unwrap(); eprintln!(\"x\"); }";
        let on_path = analyze_source("crates/serve/src/wal.rs", src, &m, false);
        let off_path = analyze_source("crates/eval/src/report.rs", src, &m, false);
        let forced = analyze_source("crates/eval/src/report.rs", src, &m, true);
        assert_eq!(
            on_path.iter().map(|d| d.check.as_str()).collect::<Vec<_>>(),
            vec!["log-print", "panic-unwrap"]
        );
        assert!(off_path.is_empty());
        assert_eq!(forced.len(), 2);
    }

    #[test]
    fn malformed_and_unknown_allows_are_reported() {
        let m = mini_manifest();
        let src = "fn f() {\n// analyzer: allow(panic-unwrap)\nlet x = 1;\n// analyzer: allow(no-such) -- why\nlet y = 2;\n}";
        let out = analyze_source("x.rs", src, &m, false);
        let checks: Vec<&str> = out.iter().map(|d| d.check.as_str()).collect();
        assert_eq!(checks, vec!["allow-syntax", "allow-syntax"]);
        assert!(out[0].message.contains("malformed"));
        assert!(out[1].message.contains("no-such"));
    }

    #[test]
    fn display_is_rustc_style() {
        let d = Diagnostic {
            file: "crates/serve/src/wal.rs".into(),
            line: 42,
            check: "panic-unwrap".into(),
            message: "boom".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/serve/src/wal.rs:42: error[panic-unwrap]: boom"
        );
    }
}
