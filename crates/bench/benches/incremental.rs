//! Criterion micro-benchmark: LTMinc closed-form prediction (Equation 3)
//! versus a full batch refit — the speedup that motivates §5.4.

use criterion::{criterion_group, criterion_main, Criterion};
use ltm_core::{IncrementalLtm, LtmConfig};
use ltm_datagen::movies::{self, MovieConfig};

fn bench_incremental(c: &mut Criterion) {
    let data = movies::generate(&MovieConfig {
        num_movies_raw: 2_000,
        labeled_entities: 10,
        seed: 3,
    });
    let db = &data.dataset.claims;
    let config = LtmConfig::scaled_for(db.num_facts());
    let fit = ltm_core::fit(db, &config);
    let predictor = IncrementalLtm::new(&fit.quality, &config.priors);

    let mut group = c.benchmark_group("incremental_vs_batch");
    group.sample_size(10);
    group.bench_function("ltminc_predict", |b| {
        b.iter(|| predictor.predict(db));
    });
    group.bench_function("batch_refit", |b| {
        b.iter(|| ltm_core::fit(db, &config));
    });
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
