//! Criterion micro-benchmark: one fit of each truth-finding method on the
//! same (reduced) movie dataset — the per-method cost behind Table 9.

use criterion::{criterion_group, criterion_main, Criterion};
use ltm_baselines::{all_baselines, TruthMethod};
use ltm_bench::LtmMethod;
use ltm_datagen::movies::{self, MovieConfig};

fn bench_methods(c: &mut Criterion) {
    let data = movies::generate(&MovieConfig {
        num_movies_raw: 2_000,
        labeled_entities: 10,
        seed: 3,
    });
    let db = &data.dataset.claims;

    let mut group = c.benchmark_group("method_fit");
    group.sample_size(10);
    for method in all_baselines() {
        group.bench_function(method.name(), |b| {
            b.iter(|| method.infer(db));
        });
    }
    let ltm = LtmMethod::scaled_for(db);
    group.bench_function("LTM", |b| {
        b.iter(|| ltm.infer(db));
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
