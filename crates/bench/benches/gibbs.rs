//! Criterion micro-benchmark: collapsed Gibbs sampling cost versus data
//! size (the per-iteration cost the paper proves linear in the number of
//! claims) and the three kernels against each other — cached log-ratio
//! tables versus naive log-space versus direct products (ablation A3).
//! The full throughput comparison with JSON output lives in the `perf`
//! binary (`cargo run --release -p ltm-bench --bin perf`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltm_core::{Arithmetic, LtmConfig, Priors, SampleSchedule};
use ltm_datagen::synthetic::{self, SyntheticConfig};

fn config(arithmetic: Arithmetic) -> LtmConfig {
    LtmConfig {
        priors: Priors::scaled_specificity(4_000),
        schedule: SampleSchedule::new(10, 2, 0),
        seed: 42,
        arithmetic,
    }
}

fn bench_gibbs_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("gibbs_10_iterations");
    group.sample_size(10);
    for facts in [1_000usize, 2_000, 4_000] {
        let data = synthetic::generate(&SyntheticConfig {
            num_facts: facts,
            num_sources: 20,
            seed: 7,
            ..Default::default()
        });
        group.throughput(criterion::Throughput::Elements(
            data.claims.num_claims() as u64
        ));
        group.bench_with_input(BenchmarkId::from_parameter(facts), &data.claims, |b, db| {
            b.iter(|| ltm_core::fit(db, &config(Arithmetic::CachedLog)));
        });
    }
    group.finish();
}

fn bench_arithmetic_parity(c: &mut Criterion) {
    let data = synthetic::generate(&SyntheticConfig {
        num_facts: 2_000,
        num_sources: 20,
        seed: 7,
        ..Default::default()
    });
    let mut group = c.benchmark_group("gibbs_arithmetic");
    group.sample_size(10);
    group.bench_function("cached_log", |b| {
        b.iter(|| ltm_core::fit(&data.claims, &config(Arithmetic::CachedLog)));
    });
    group.bench_function("log_space", |b| {
        b.iter(|| ltm_core::fit(&data.claims, &config(Arithmetic::LogSpace)));
    });
    group.bench_function("direct", |b| {
        b.iter(|| ltm_core::fit(&data.claims, &config(Arithmetic::Direct)));
    });
    group.finish();
}

fn bench_parallel_chains(c: &mut Criterion) {
    let data = synthetic::generate(&SyntheticConfig {
        num_facts: 2_000,
        num_sources: 20,
        seed: 7,
        ..Default::default()
    });
    let mut group = c.benchmark_group("gibbs_chains");
    group.sample_size(10);
    for chains in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(chains),
            &chains,
            |b, &chains| {
                b.iter(|| {
                    ltm_core::fit_chains(&data.claims, &config(Arithmetic::CachedLog), chains)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gibbs_scaling,
    bench_arithmetic_parity,
    bench_parallel_chains
);
criterion_main!(benches);
