//! Criterion micro-benchmark: claim-table construction (Definition 3)
//! from raw triple databases of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltm_datagen::movies::{self, MovieConfig};
use ltm_model::ClaimDb;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("claim_table_construction");
    group.sample_size(10);
    for raw_movies in [1_000usize, 2_000, 4_000] {
        let data = movies::generate(&MovieConfig {
            num_movies_raw: raw_movies,
            labeled_entities: 10,
            seed: 3,
        });
        group.throughput(criterion::Throughput::Elements(
            data.dataset.raw.len() as u64
        ));
        group.bench_with_input(
            BenchmarkId::from_parameter(raw_movies),
            &data.dataset.raw,
            |b, raw| {
                b.iter(|| ClaimDb::from_raw(raw));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
