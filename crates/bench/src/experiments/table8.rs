//! **Table 8** — the source-quality case study: MAP sensitivity and
//! specificity of every movie source, sorted by descending sensitivity,
//! alongside the quality profile the generator planted.

use std::path::Path;

use ltm_eval::report::{write_json, TextTable};
use serde::Serialize;

use crate::suite::Suite;

/// One source's row: inferred quality vs planted profile.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Source name.
    pub source: String,
    /// Inferred (MAP) sensitivity.
    pub sensitivity: f64,
    /// Inferred (MAP) specificity.
    pub specificity: f64,
    /// The sensitivity the generator planted for this source.
    pub planted_sensitivity: f64,
}

/// The Table 8 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Table8 {
    /// Rows sorted by descending inferred sensitivity, as in the paper.
    pub rows: Vec<Row>,
}

/// Fits LTM on the movie data and reads off source quality (§5.3).
pub fn run(suite: &Suite, out_dir: &Path) -> String {
    let data = &suite.movies;
    let fit = ltm_core::fit(&data.dataset.claims, &suite.movies_ltm_config());
    let rows: Vec<Row> = fit
        .quality
        .by_descending_sensitivity()
        .into_iter()
        .map(|s| Row {
            source: data.dataset.raw.source_name(s).to_string(),
            sensitivity: fit.quality.sensitivity(s),
            specificity: fit.quality.specificity(s),
            planted_sensitivity: data.profiles[s.index()].sensitivity,
        })
        .collect();
    let result = Table8 { rows };
    write_json(&out_dir.join("table8.json"), &result).expect("write table8.json");
    render(&result)
}

fn render(t: &Table8) -> String {
    let mut out =
        String::from("Table 8: source quality on the movie data (sorted by sensitivity)\n\n");
    let mut table = TextTable::new(["Source", "Sensitivity", "Specificity", "Planted sens."]);
    for r in &t.rows {
        table.row([
            r.source.clone(),
            format!("{:.4}", r.sensitivity),
            format!("{:.4}", r.specificity),
            format!("{:.2}", r.planted_sensitivity),
        ]);
    }
    out.push_str(&table.render());
    out
}
