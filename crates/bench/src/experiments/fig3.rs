//! **Figure 3** — area under the ROC curve per method per dataset, sorted
//! by decreasing average AUC.

use std::path::Path;

use ltm_eval::report::{fmt3, write_json, TextTable};
use ltm_eval::roc::auc;
use serde::Serialize;

use crate::suite::Suite;

/// AUC of one method on both datasets.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Method name.
    pub method: String,
    /// AUC on the book data.
    pub books: f64,
    /// AUC on the movie data.
    pub movies: f64,
}

/// The Figure 3 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3 {
    /// Rows sorted by decreasing mean AUC, as the paper plots them.
    pub rows: Vec<Row>,
}

/// Computes every method's AUC on both datasets.
pub fn run(suite: &Suite, out_dir: &Path) -> String {
    let book_cfg = suite.books_ltm_config();
    let movie_cfg = suite.movies_ltm_config();
    let book_methods = suite.methods_for(&suite.books, book_cfg);
    let movie_methods = suite.methods_for(&suite.movies, movie_cfg);

    let mut rows: Vec<Row> = book_methods
        .iter()
        .zip(movie_methods.iter())
        .map(|(bm, mm)| {
            debug_assert_eq!(bm.name(), mm.name());
            let b_pred = bm.infer(&suite.books.dataset.claims);
            let m_pred = mm.infer(&suite.movies.dataset.claims);
            Row {
                method: bm.name().to_string(),
                books: auc(&suite.books.dataset.truth, &b_pred),
                movies: auc(&suite.movies.dataset.truth, &m_pred),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        let ma = a.books + a.movies;
        let mb = b.books + b.movies;
        mb.partial_cmp(&ma).expect("AUCs are finite")
    });

    let result = Fig3 { rows };
    write_json(&out_dir.join("fig3.json"), &result).expect("write fig3.json");
    render(&result)
}

fn render(f: &Fig3) -> String {
    let mut out = String::from(
        "Figure 3: area under the ROC curve per method per dataset (sorted by mean AUC)\n\n",
    );
    let mut table = TextTable::new(["Method", "Books AUC", "Movies AUC"]);
    for r in &f.rows {
        table.row([r.method.clone(), fmt3(r.books), fmt3(r.movies)]);
    }
    out.push_str(&table.render());
    out
}
