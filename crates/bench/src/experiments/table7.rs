//! **Table 7** — inference results per dataset and per method at
//! threshold 0.5: precision, recall, FPR, accuracy, F1.

use std::path::Path;

use ltm_eval::calibration::{brier_score, expected_calibration_error};
use ltm_eval::metrics::{evaluate, Metrics};
use ltm_eval::report::{fmt3, write_json, TextTable};
use serde::Serialize;

use crate::suite::Suite;

/// One method's Table 7 row on one dataset, extended with the calibration
/// measures that quantify the Figure 2 discussion (Brier score and
/// expected calibration error; not in the paper's table, recorded in the
/// JSON artifact).
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Method name.
    pub method: String,
    /// The five Table 7 measures.
    pub metrics: Metrics,
    /// Brier score (mean squared probability error; lower is better).
    pub brier: f64,
    /// Expected calibration error over 10 bins (lower is better).
    pub ece: f64,
}

/// The full Table 7 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Table7 {
    /// Rows on the book data, in the paper's method order.
    pub books: Vec<Row>,
    /// Rows on the movie data.
    pub movies: Vec<Row>,
}

/// Runs every method on both datasets and evaluates at threshold 0.5.
pub fn run(suite: &Suite, out_dir: &Path) -> String {
    let books = rows_for(suite, true);
    let movies = rows_for(suite, false);
    let result = Table7 { books, movies };
    write_json(&out_dir.join("table7.json"), &result).expect("write table7.json");
    render(&result)
}

fn rows_for(suite: &Suite, books: bool) -> Vec<Row> {
    let (data, config) = if books {
        (&suite.books, suite.books_ltm_config())
    } else {
        (&suite.movies, suite.movies_ltm_config())
    };
    let truth = &data.dataset.truth;
    let db = &data.dataset.claims;
    suite
        .methods_for(data, config)
        .iter()
        .map(|m| {
            let pred = m.infer(db);
            Row {
                method: m.name().to_string(),
                metrics: evaluate(truth, &pred, 0.5),
                brier: brier_score(truth, &pred),
                ece: expected_calibration_error(truth, &pred, 10),
            }
        })
        .collect()
}

fn render(t: &Table7) -> String {
    let mut out =
        String::from("Table 7: inference results per dataset and per method (threshold 0.5)\n\n");
    for (name, rows) in [("book", &t.books), ("movie", &t.movies)] {
        out.push_str(&format!("Results on {name} data\n"));
        let mut table = TextTable::new([
            "Method",
            "Precision",
            "Recall",
            "FPR",
            "Accuracy",
            "F1",
            "Brier",
        ]);
        for r in rows {
            table.row([
                r.method.clone(),
                fmt3(r.metrics.precision),
                fmt3(r.metrics.recall),
                fmt3(r.metrics.fpr),
                fmt3(r.metrics.accuracy),
                fmt3(r.metrics.f1),
                fmt3(r.brier),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}
