//! **Table 9** — runtimes of all ten methods on entity-sampled movie
//! subsets (3k/6k/9k/12k/15k movies; all iterative methods fixed at 100
//! iterations, as the paper does for fairness).

use std::path::Path;

use ltm_baselines::{self as baselines, TruthMethod};
use ltm_core::IncrementalLtm;
use ltm_datagen::movies::entity_sample;
use ltm_eval::report::{write_json, TextTable};
use ltm_eval::timing::mean_seconds;
use serde::Serialize;

use crate::adapters::{LtmMethod, LtmPosMethod};
use crate::suite::Suite;

/// Measured runtimes for one method across the subset sizes.
#[derive(Debug, Clone, Serialize)]
pub struct MethodTimings {
    /// Method name.
    pub method: String,
    /// Mean seconds per subset, parallel to [`Table9::entities`].
    pub seconds: Vec<f64>,
}

/// The Table 9 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Table9 {
    /// Entity counts of the subsets.
    pub entities: Vec<usize>,
    /// Claim counts of the subsets (used again by Figure 6).
    pub claims: Vec<usize>,
    /// Rows sorted as measured (fastest methods first, as in the paper).
    pub methods: Vec<MethodTimings>,
    /// Timing repeats per cell.
    pub repeats: usize,
}

/// Runs the scaling study. `repeats` is the number of timed runs averaged
/// per cell (the paper uses 10).
pub fn run(suite: &Suite, out_dir: &Path, repeats: usize) -> String {
    let result = measure(suite, repeats);
    write_json(&out_dir.join("table9.json"), &result).expect("write table9.json");
    render(&result)
}

/// Builds the subsets and times every method on each.
pub fn measure(suite: &Suite, repeats: usize) -> Table9 {
    let total = suite.movies.dataset.claims.entity_ids().count();
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let sizes: Vec<usize> = fractions
        .iter()
        .map(|f| (total as f64 * f) as usize)
        .collect();
    let subsets: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| entity_sample(&suite.movies, n, 1000 + i as u64))
        .collect();
    let claims: Vec<usize> = subsets.iter().map(|d| d.claims.num_claims()).collect();

    // All iterative methods at 100 iterations (paper: "we conservatively
    // fix their number of iterations to 100").
    let config = suite.movies_ltm_config();
    let methods: Vec<Box<dyn TruthMethod>> = vec![
        Box::new(baselines::Voting),
        Box::new(baselines::AvgLog { iterations: 100 }),
        Box::new(baselines::HubAuthority { iterations: 100 }),
        Box::new(baselines::PooledInvestment {
            growth: 1.4,
            iterations: 100,
        }),
        Box::new(baselines::TruthFinder {
            max_iterations: 100,
            tolerance: 0.0, // force the full 100 iterations
            ..Default::default()
        }),
        Box::new(baselines::Investment {
            growth: 1.2,
            iterations: 100,
        }),
        Box::new(baselines::ThreeEstimates {
            iterations: 100,
            ..Default::default()
        }),
        Box::new(LtmMethod { config }),
        Box::new(LtmPosMethod { config }),
    ];

    let mut rows: Vec<MethodTimings> = Vec::new();

    // LTMinc: quality is learned once on the full data; what is timed is
    // the Equation-3 prediction pass, matching the paper's "we run LTMinc
    // on the same data ... by assuming the data is incremental and source
    // quality is given".
    let full_fit = ltm_core::fit(&suite.movies.dataset.claims, &config);
    let predictor = IncrementalLtm::new(&full_fit.quality, &config.priors);
    rows.push(MethodTimings {
        method: "LTMinc".into(),
        seconds: subsets
            .iter()
            .map(|d| mean_seconds(repeats, || predictor.predict(&d.claims)))
            .collect(),
    });

    for m in &methods {
        rows.push(MethodTimings {
            method: m.name().to_string(),
            seconds: subsets
                .iter()
                .map(|d| mean_seconds(repeats, || m.infer(&d.claims)))
                .collect(),
        });
    }

    // Present fastest-first (by time on the largest subset), echoing the
    // paper's ordering.
    rows.sort_by(|a, b| {
        a.seconds
            .last()
            .partial_cmp(&b.seconds.last())
            .expect("timings are finite")
    });

    Table9 {
        entities: subsets
            .iter()
            .map(|d| d.claims.entity_ids().count())
            .collect(),
        claims,
        methods: rows,
        repeats,
    }
}

fn render(t: &Table9) -> String {
    let mut out = String::from("Table 9: runtimes (seconds) on movie-data subsets\n\n");
    let mut headers = vec!["Method".to_string()];
    headers.extend(
        t.entities
            .iter()
            .map(|e| format!("{:.1}k", *e as f64 / 1000.0)),
    );
    let mut table = TextTable::new(headers);
    for m in &t.methods {
        let mut row = vec![m.method.clone()];
        row.extend(m.seconds.iter().map(|s| format!("{s:.3}")));
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(&format!("\n({} repeats per cell)\n", t.repeats));
    out
}
