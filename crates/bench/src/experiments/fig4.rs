//! **Figure 4** — LTM accuracy on synthetic data as planted source
//! quality degrades: one sweep varying expected sensitivity with expected
//! specificity fixed at 0.9, one varying expected specificity with
//! expected sensitivity fixed at 0.9 (paper §6.1/§6.2.1).

use std::path::Path;

use ltm_core::{LtmConfig, Priors};
use ltm_datagen::synthetic::{self, SyntheticConfig};
use ltm_eval::metrics::evaluate;
use ltm_eval::report::{write_json, TextTable};
use rayon::prelude::*;
use serde::Serialize;

/// One sweep point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Point {
    /// The varied expected quality (sensitivity or specificity).
    pub expected_quality: f64,
    /// LTM accuracy at threshold 0.5 against the full synthetic ground
    /// truth.
    pub accuracy: f64,
}

/// The Figure 4 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4 {
    /// Accuracy while varying expected sensitivity (specificity = 0.9).
    pub varying_sensitivity: Vec<Point>,
    /// Accuracy while varying expected specificity (sensitivity = 0.9).
    pub varying_specificity: Vec<Point>,
    /// Facts per generated dataset.
    pub num_facts: usize,
    /// Sources per generated dataset.
    pub num_sources: usize,
}

/// Runs both sweeps. `fast` shrinks the per-point dataset ~10×.
pub fn run(out_dir: &Path, fast: bool) -> String {
    let (num_facts, num_sources) = if fast { (1_000, 20) } else { (10_000, 20) };
    let grid: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();

    let sweep = |vary_sensitivity: bool| -> Vec<Point> {
        grid.par_iter()
            .map(|&q| {
                let mut cfg = if vary_sensitivity {
                    SyntheticConfig::with_expected_sensitivity(q, 2000 + (q * 100.0) as u64)
                } else {
                    SyntheticConfig::with_expected_specificity(q, 3000 + (q * 100.0) as u64)
                };
                cfg.num_facts = num_facts;
                cfg.num_sources = num_sources;
                let data = synthetic::generate(&cfg);
                let ltm_cfg = LtmConfig {
                    priors: Priors::scaled_specificity(num_facts),
                    seed: 42,
                    ..Default::default()
                };
                let fit = ltm_core::fit(&data.claims, &ltm_cfg);
                let m = evaluate(&data.ground, &fit.truth, 0.5);
                Point {
                    expected_quality: q,
                    accuracy: m.accuracy,
                }
            })
            .collect()
    };

    let result = Fig4 {
        varying_sensitivity: sweep(true),
        varying_specificity: sweep(false),
        num_facts,
        num_sources,
    };
    write_json(&out_dir.join("fig4.json"), &result).expect("write fig4.json");
    render(&result)
}

fn render(f: &Fig4) -> String {
    let mut out = format!(
        "Figure 4: LTM under degraded synthetic source quality \
         ({} facts x {} sources per point)\n\n",
        f.num_facts, f.num_sources
    );
    let mut table = TextTable::new([
        "Expected quality",
        "Acc (vary sensitivity, spec=0.9)",
        "Acc (vary specificity, sens=0.9)",
    ]);
    for (s, p) in f.varying_sensitivity.iter().zip(&f.varying_specificity) {
        table.row([
            format!("{:.1}", s.expected_quality),
            format!("{:.3}", s.accuracy),
            format!("{:.3}", p.accuracy),
        ]);
    }
    out.push_str(&table.render());
    out
}
