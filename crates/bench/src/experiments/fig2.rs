//! **Figure 2** — accuracy versus decision threshold for every method, on
//! the book data (left panel) and the movie data (right panel).

use std::path::Path;

use ltm_eval::report::{write_json, TextTable};
use ltm_eval::sweep::{accuracy_series, best_threshold};
use serde::Serialize;

use crate::suite::Suite;

/// One method's accuracy curve.
#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    /// Method name.
    pub method: String,
    /// `(threshold, accuracy)` over the 0.00..1.00 grid.
    pub series: Vec<(f64, f64)>,
    /// Best threshold and the accuracy there (the "optimal threshold" the
    /// paper discusses per method).
    pub best: (f64, f64),
}

/// The Figure 2 reproduction: one curve set per dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2 {
    /// Curves on the book data.
    pub books: Vec<Curve>,
    /// Curves on the movie data.
    pub movies: Vec<Curve>,
}

/// Sweeps every method's threshold on both datasets.
pub fn run(suite: &Suite, out_dir: &Path) -> String {
    let result = Fig2 {
        books: curves_for(suite, true),
        movies: curves_for(suite, false),
    };
    write_json(&out_dir.join("fig2.json"), &result).expect("write fig2.json");
    render(&result)
}

fn curves_for(suite: &Suite, books: bool) -> Vec<Curve> {
    let (data, config) = if books {
        (&suite.books, suite.books_ltm_config())
    } else {
        (&suite.movies, suite.movies_ltm_config())
    };
    let truth = &data.dataset.truth;
    let db = &data.dataset.claims;
    suite
        .methods_for(data, config)
        .iter()
        .map(|m| {
            let pred = m.infer(db);
            Curve {
                method: m.name().to_string(),
                series: accuracy_series(truth, &pred),
                best: best_threshold(truth, &pred),
            }
        })
        .collect()
}

fn render(f: &Fig2) -> String {
    let mut out = String::from(
        "Figure 2: accuracy vs threshold (sampled at 0.1 steps; full grid in fig2.json)\n\n",
    );
    for (name, curves) in [("book", &f.books), ("movie", &f.movies)] {
        out.push_str(&format!("Inferring true {name} attributes\n"));
        let mut headers = vec!["Threshold".to_string()];
        headers.extend(curves.iter().map(|c| c.method.clone()));
        let mut table = TextTable::new(headers);
        for step in 0..=10 {
            let idx = step * 10; // 0.0, 0.1, ..., 1.0 on the 101-point grid
            let mut row = vec![format!("{:.1}", step as f64 / 10.0)];
            row.extend(curves.iter().map(|c| format!("{:.3}", c.series[idx].1)));
            table.row(row);
        }
        out.push_str(&table.render());
        out.push_str("best threshold per method: ");
        for c in curves {
            out.push_str(&format!("{} {:.2}@{:.3}  ", c.method, c.best.0, c.best.1));
        }
        out.push_str("\n\n");
    }
    out
}
