//! **Figure 5** — convergence of LTM on the movie data: accuracy after
//! 7/10/20/50/100/200/500 total iterations (with the paper's burn-in and
//! thinning schedule per point), repeated 10 times for mean and 95%
//! confidence intervals.

use std::path::Path;

use ltm_core::{LtmConfig, SampleSchedule};
use ltm_eval::metrics::evaluate;
use ltm_eval::report::{write_json, TextTable};
use ltm_stats::MeanCi;
use rayon::prelude::*;
use serde::Serialize;

use crate::suite::Suite;

/// The paper's seven prediction schedules: (iterations, burn-in, gap).
pub const SCHEDULES: [(usize, usize, usize); 7] = [
    (7, 2, 0),
    (10, 2, 0),
    (20, 5, 0),
    (50, 10, 1),
    (100, 20, 4),
    (200, 50, 4),
    (500, 100, 9),
];

/// One convergence point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Point {
    /// Total iterations of the schedule.
    pub iterations: usize,
    /// Mean accuracy over the repeats.
    pub mean_accuracy: f64,
    /// Half-width of the 95% confidence interval.
    pub ci_half_width: f64,
}

/// The Figure 5 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5 {
    /// One point per schedule.
    pub points: Vec<Point>,
    /// Independent sampler runs per point.
    pub repeats: usize,
}

/// Runs `repeats` chains (different seeds); each chain serves all seven
/// schedules at once, exactly as the paper's "7 sequential predictions
/// using the samples in the same run".
pub fn run(suite: &Suite, out_dir: &Path, repeats: usize) -> String {
    let db = &suite.movies.dataset.claims;
    let truth = &suite.movies.dataset.truth;
    let base = suite.movies_ltm_config();
    let schedules: Vec<SampleSchedule> = SCHEDULES
        .iter()
        .map(|&(it, burn, gap)| SampleSchedule::new(it, burn, gap))
        .collect();

    // repeats × 7 accuracy values.
    let per_run: Vec<Vec<f64>> = (0..repeats as u64)
        .into_par_iter()
        .map(|seed| {
            let cfg = LtmConfig {
                seed: 4000 + seed,
                ..base
            };
            ltm_core::fit_with_schedules(db, &cfg, &schedules)
                .into_iter()
                .map(|t| evaluate(truth, &t, 0.5).accuracy)
                .collect()
        })
        .collect();

    let points: Vec<Point> = (0..schedules.len())
        .map(|i| {
            let values: Vec<f64> = per_run.iter().map(|run| run[i]).collect();
            let ci = MeanCi::of(&values);
            Point {
                iterations: schedules[i].iterations,
                mean_accuracy: ci.mean,
                ci_half_width: ci.half_width,
            }
        })
        .collect();

    let result = Fig5 { points, repeats };
    write_json(&out_dir.join("fig5.json"), &result).expect("write fig5.json");
    render(&result)
}

fn render(f: &Fig5) -> String {
    let mut out = format!(
        "Figure 5: convergence of LTM on the movie data ({} repeats per point)\n\n",
        f.repeats
    );
    let mut table = TextTable::new(["Iterations", "Mean accuracy", "95% CI half-width"]);
    for p in &f.points {
        table.row([
            p.iterations.to_string(),
            format!("{:.4}", p.mean_accuracy),
            format!("{:.4}", p.ci_half_width),
        ]);
    }
    out.push_str(&table.render());
    out
}
