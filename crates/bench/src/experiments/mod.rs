//! One module per reproduced table/figure (see DESIGN.md §4 for the
//! experiment index). Each experiment returns a rendered text report and
//! writes a JSON artifact under the output directory.

pub mod ablations;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table7;
pub mod table8;
pub mod table9;
