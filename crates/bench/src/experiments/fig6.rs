//! **Figure 6** — LTM runtime (100 iterations) as a function of the
//! number of claims, with the least-squares line and its `R²` (the paper
//! reports `R² = 0.9913` as evidence of linear scaling).

use std::path::Path;

use ltm_datagen::movies::entity_sample;
use ltm_eval::report::{write_json, TextTable};
use ltm_eval::timing::mean_seconds;
use ltm_stats::SimpleOls;
use serde::Serialize;

use crate::suite::Suite;

/// The Figure 6 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6 {
    /// `(claims, seconds)` measurements.
    pub measurements: Vec<(usize, f64)>,
    /// Fitted slope (seconds per claim).
    pub slope: f64,
    /// Fitted intercept (seconds).
    pub intercept: f64,
    /// Coefficient of determination of the linear fit.
    pub r_squared: f64,
    /// Timing repeats per measurement.
    pub repeats: usize,
}

/// Measures LTM runtime across entity-sampled subsets and fits a line.
pub fn run(suite: &Suite, out_dir: &Path, repeats: usize) -> String {
    let total = suite.movies.dataset.claims.entity_ids().count();
    let config = suite.movies_ltm_config();
    let mut measurements = Vec::new();
    for (i, frac) in [0.2, 0.4, 0.6, 0.8, 1.0].iter().enumerate() {
        let subset = entity_sample(
            &suite.movies,
            (total as f64 * frac) as usize,
            5000 + i as u64,
        );
        let secs = mean_seconds(repeats, || ltm_core::fit(&subset.claims, &config));
        measurements.push((subset.claims.num_claims(), secs));
    }
    let xs: Vec<f64> = measurements.iter().map(|&(c, _)| c as f64).collect();
    let ys: Vec<f64> = measurements.iter().map(|&(_, s)| s).collect();
    let fit = SimpleOls::fit(&xs, &ys);

    let result = Fig6 {
        measurements,
        slope: fit.line.slope,
        intercept: fit.line.intercept,
        r_squared: fit.r_squared,
        repeats,
    };
    write_json(&out_dir.join("fig6.json"), &result).expect("write fig6.json");
    render(&result)
}

fn render(f: &Fig6) -> String {
    let mut out = String::from("Figure 6: LTM runtime scaling in the number of claims\n\n");
    let mut table = TextTable::new(["Claims", "Seconds"]);
    for &(c, s) in &f.measurements {
        table.row([c.to_string(), format!("{s:.3}")]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nlinear fit: seconds = {:.3e} x claims + {:.4}   (R^2 = {:.4}, paper: 0.9913)\n",
        f.slope, f.intercept, f.r_squared
    ));
    out
}
