//! Ablations beyond the paper's figures (DESIGN.md §4, A2 and A4):
//!
//! * **A2 — specificity-prior strength.** The paper asserts (§4.3) that a
//!   strong `α₀` prior is required "since otherwise the model could flip
//!   every truth while still achieving high likelihood". This sweep fits
//!   LTM on the book data with `α₀,₀ ∈ {1, 10, 100, 1000, 10000}` (prior
//!   mean held at 0.99 where possible) and reports accuracy/F1.
//! * **A4 — adversarial sources.** Section 7 proposes iteratively
//!   removing sources whose specificity *and* precision fall below a
//!   threshold. We spike the movie data with a malicious source that
//!   asserts one fabricated director per covered movie and omits true
//!   ones, then compare plain LTM against the filtering loop.

use std::path::Path;

use ltm_core::{AdversarialFilter, BetaPair, LtmConfig, Priors};
use ltm_eval::metrics::evaluate;
use ltm_eval::report::{fmt3, write_json, TextTable};
use ltm_model::{Claim, ClaimDb, FactId, SourceId};
use serde::Serialize;

use crate::suite::Suite;

/// One point of the prior-strength sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PriorPoint {
    /// The prior true-negative pseudo-count `α₀,₀`.
    pub alpha0_neg: f64,
    /// Accuracy at threshold 0.5 on the labeled books.
    pub accuracy: f64,
    /// F1 at threshold 0.5.
    pub f1: f64,
}

/// The A2 ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct PriorAblation {
    /// Sweep points in increasing prior strength.
    pub points: Vec<PriorPoint>,
}

/// Runs the specificity-prior strength sweep on the book data.
pub fn run_prior(suite: &Suite, out_dir: &Path) -> String {
    let db = &suite.books.dataset.claims;
    let truth = &suite.books.dataset.truth;
    let base = suite.books_ltm_config();
    let points: Vec<PriorPoint> = [1.0f64, 10.0, 100.0, 1000.0, 10000.0]
        .into_iter()
        .map(|neg| {
            let cfg = LtmConfig {
                priors: Priors {
                    alpha0: BetaPair::new((neg / 100.0).max(0.5), neg),
                    ..base.priors
                },
                ..base
            };
            let fit = ltm_core::fit(db, &cfg);
            let m = evaluate(truth, &fit.truth, 0.5);
            PriorPoint {
                alpha0_neg: neg,
                accuracy: m.accuracy,
                f1: m.f1,
            }
        })
        .collect();
    let result = PriorAblation { points };
    write_json(&out_dir.join("ablation_prior.json"), &result).expect("write ablation_prior.json");

    let mut out = String::from(
        "Ablation A2: specificity-prior strength on the book data (threshold 0.5)\n\n",
    );
    let mut table = TextTable::new(["alpha0 TN count", "Accuracy", "F1"]);
    for p in &result.points {
        table.row([format!("{}", p.alpha0_neg), fmt3(p.accuracy), fmt3(p.f1)]);
    }
    out.push_str(&table.render());
    out
}

/// The A4 ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct AdversarialAblation {
    /// Accuracy of plain LTM on the spiked data.
    pub plain_accuracy: f64,
    /// Accuracy after the §7 filtering loop.
    pub filtered_accuracy: f64,
    /// Whether the planted adversary was removed.
    pub adversary_removed: bool,
    /// Names of removed sources.
    pub removed: Vec<String>,
}

/// Spikes the movie data with a malicious source and runs the filter.
pub fn run_adversarial(suite: &Suite, out_dir: &Path) -> String {
    let data = &suite.movies;
    let db = &data.dataset.claims;
    let truth = &data.dataset.truth;

    // Build the spiked database: one new source asserting a fabricated
    // fact for every movie it covers (every 3rd movie) and denying the
    // movie's real facts. Definition 3 applies to the fabricated facts
    // too: every source covering the movie gets a *negative* claim on
    // them (it covered the entity and did not assert the fabrication) —
    // this "low support" is exactly what lets LTM recognise the attack
    // (paper §7).
    let adversary = SourceId::from_usize(db.num_sources());
    let mut facts = db.facts().to_vec();
    let mut claims = db.all_claims();
    let mut spiked_fact_count = 0;
    for (i, e) in db.entity_ids().enumerate() {
        if i % 3 != 0 {
            continue;
        }
        let covering: Vec<SourceId> = db.fact_claim_sources(db.facts_of_entity(e)[0]).to_vec();
        for &f in db.facts_of_entity(e) {
            claims.push(Claim {
                fact: f,
                source: adversary,
                observation: false,
            });
        }
        // A fabricated director: a brand-new attribute id beyond the real
        // vocabulary (ids need not be dense in the attribute space).
        let fake = ltm_model::AttrId::from_usize(1_000_000 + spiked_fact_count);
        let new_fact = FactId::from_usize(facts.len());
        facts.push(ltm_model::Fact {
            entity: e,
            attr: fake,
        });
        claims.push(Claim {
            fact: new_fact,
            source: adversary,
            observation: true,
        });
        for s in covering {
            claims.push(Claim {
                fact: new_fact,
                source: s,
                observation: false,
            });
        }
        spiked_fact_count += 1;
    }
    let spiked = ClaimDb::from_parts(facts, claims, db.num_sources() + 1);

    // The spiked facts are false; extend the ground truth accordingly so
    // the evaluation sees the attack surface. Real labels carry over
    // because fact ids below db.num_facts() are unchanged.
    let mut spiked_truth = truth.clone();
    for i in db.num_facts()..spiked.num_facts() {
        let f = FactId::from_usize(i);
        let e = spiked.fact(f).entity;
        if spiked_truth.contains_entity(e) {
            spiked_truth.insert(e, f, false);
        }
    }

    let config = suite.movies_ltm_config();
    let plain = ltm_core::fit(&spiked, &config);
    let plain_accuracy = evaluate(&spiked_truth, &plain.truth, 0.5).accuracy;

    let filter = AdversarialFilter {
        min_specificity: 0.8,
        min_precision: 0.5,
        max_rounds: 3,
    };
    let filtered = ltm_core::fit_filtered(&spiked, &config, &filter);
    let filtered_accuracy = evaluate(&spiked_truth, &filtered.fit.truth, 0.5).accuracy;

    let removed: Vec<String> = filtered
        .removed
        .iter()
        .map(|&s| {
            if s == adversary {
                "<adversary>".to_string()
            } else {
                data.dataset.raw.source_name(s).to_string()
            }
        })
        .collect();
    let result = AdversarialAblation {
        plain_accuracy,
        filtered_accuracy,
        adversary_removed: filtered.removed.contains(&adversary),
        removed,
    };
    write_json(&out_dir.join("ablation_adversarial.json"), &result)
        .expect("write ablation_adversarial.json");

    format!(
        "Ablation A4: adversarial-source filtering on spiked movie data\n\n\
         plain LTM accuracy      {:.3}\n\
         filtered LTM accuracy   {:.3}\n\
         adversary removed       {}\n\
         removed sources         {:?}\n",
        result.plain_accuracy, result.filtered_accuracy, result.adversary_removed, result.removed
    )
}
