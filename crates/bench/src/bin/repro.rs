//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [OPTIONS] <COMMAND>...
//!
//! Commands:
//!   stats                 dataset statistics (paper §6.1.1)
//!   table7                effectiveness at threshold 0.5
//!   table8                movie source-quality case study
//!   table9                runtime scaling of all methods
//!   fig2                  accuracy vs threshold curves
//!   fig3                  AUC per method per dataset
//!   fig4                  synthetic source-quality degradation
//!   fig5                  convergence with confidence intervals
//!   fig6                  runtime vs claims + linear fit
//!   ablation-prior        specificity-prior strength sweep (A2)
//!   ablation-adversarial  §7 adversarial filtering (A4)
//!   all                   everything above
//!
//! Options:
//!   --out <DIR>      output directory for JSON artifacts
//!                    (default target/experiments)
//!   --repeats <N>    timing/convergence repeats (default 3; paper uses 10)
//!   --fast           ~10x smaller datasets, for smoke runs
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ltm_bench::experiments::{ablations, fig2, fig3, fig4, fig5, fig6, table7, table8, table9};
use ltm_bench::Suite;

struct Options {
    out: PathBuf,
    repeats: usize,
    fast: bool,
    commands: Vec<String>,
}

const COMMANDS: [&str; 12] = [
    "stats",
    "table7",
    "table8",
    "table9",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ablation-prior",
    "ablation-adversarial",
    "all",
];

fn parse_args() -> Result<Options, String> {
    let mut out = PathBuf::from("target/experiments");
    let mut repeats = 3usize;
    let mut fast = false;
    let mut commands = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out requires a directory")?);
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .ok_or("--repeats requires a number")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if repeats == 0 {
                    return Err("--repeats must be at least 1".into());
                }
            }
            "--fast" => fast = true,
            "--help" | "-h" => {
                commands.clear();
                commands.push("help".to_string());
                return Ok(Options {
                    out,
                    repeats,
                    fast,
                    commands,
                });
            }
            cmd if COMMANDS.contains(&cmd) => commands.push(cmd.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if commands.is_empty() {
        return Err("no command given; try --help".into());
    }
    Ok(Options {
        out,
        repeats,
        fast,
        commands,
    })
}

fn usage() -> &'static str {
    "repro — regenerate the tables and figures of\n\
     \"A Bayesian Approach to Discovering Truth from Conflicting Sources\"\n\
     (Zhao et al., VLDB 2012)\n\n\
     usage: repro [--out DIR] [--repeats N] [--fast] <command>...\n\
     commands: stats table7 table8 table9 fig2 fig3 fig4 fig5 fig6\n\
     \u{20}         ablation-prior ablation-adversarial all"
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if opts.commands == ["help"] {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let mut commands: Vec<&str> = opts.commands.iter().map(String::as_str).collect();
    if commands.contains(&"all") {
        commands = COMMANDS[..COMMANDS.len() - 1].to_vec();
    }

    eprintln!(
        "building datasets ({} scale)...",
        if opts.fast { "fast" } else { "paper" }
    );
    let suite = Suite::new(opts.fast);
    std::fs::create_dir_all(&opts.out).expect("create output directory");

    for cmd in commands {
        eprintln!("running {cmd}...");
        let report = match cmd {
            "stats" => {
                let mut s = String::from("Dataset statistics (paper section 6.1.1)\n\n");
                for d in [&suite.books, &suite.movies] {
                    s.push_str(&format!(
                        "== {} ==\n{}\n\n",
                        d.dataset.name,
                        d.dataset.stats()
                    ));
                }
                s
            }
            "table7" => table7::run(&suite, &opts.out),
            "table8" => table8::run(&suite, &opts.out),
            "table9" => table9::run(&suite, &opts.out, opts.repeats),
            "fig2" => fig2::run(&suite, &opts.out),
            "fig3" => fig3::run(&suite, &opts.out),
            "fig4" => fig4::run(&opts.out, opts.fast),
            "fig5" => fig5::run(&suite, &opts.out, opts.repeats.max(3)),
            "fig6" => fig6::run(&suite, &opts.out, opts.repeats),
            "ablation-prior" => ablations::run_prior(&suite, &opts.out),
            "ablation-adversarial" => ablations::run_adversarial(&suite, &opts.out),
            other => unreachable!("validated command {other}"),
        };
        println!("{report}");
    }
    eprintln!("JSON artifacts written to {}", opts.out.display());
    ExitCode::SUCCESS
}
