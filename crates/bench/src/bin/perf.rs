//! `perf` — Gibbs-kernel throughput benchmark, emitting `BENCH_gibbs.json`.
//!
//! Measures the collapsed Gibbs sweep on the paper's synthetic workload
//! (§6.1: every source claims every fact) at several sizes, comparing the
//! naive log-space kernel against the cached log-ratio kernel, verifying
//! their bit-identity, and measuring the multi-chain parallel driver.
//!
//! Usage:
//!
//! ```text
//! perf [--out <FILE>] [--repeats <N>] [--fast]
//!
//! Options:
//!   --out <FILE>   output JSON path (default BENCH_gibbs.json)
//!   --repeats <N>  timing repeats per measurement, best-of (default 3)
//!   --fast         smoke mode: small dataset, one repeat
//! ```
//!
//! The headline dataset is 5 000 facts × 20 sources = 100 000 claims; the
//! trajectory adds 25k and 50k claim points. Reported metrics per kernel:
//! wall seconds, sweeps/sec, and claim-updates/sec (claims × sweeps /
//! seconds — the paper's `O(|C|)` unit of work).

use std::path::PathBuf;
use std::time::Instant;

use ltm_core::{fit, fit_chains, Arithmetic, LtmConfig, Priors, SampleSchedule};
use ltm_datagen::synthetic::{self, SyntheticConfig};
use ltm_eval::report::write_json;
use serde::Serialize;

/// One kernel measurement on one dataset size.
#[derive(Debug, Clone, Serialize)]
struct KernelPoint {
    /// Kernel name (`cached_log`, `log_space`, `direct`).
    kernel: String,
    /// Claims in the dataset.
    claims: usize,
    /// Gibbs sweeps executed.
    sweeps: usize,
    /// Best-of-repeats wall time.
    seconds: f64,
    /// Sweeps per second.
    sweeps_per_sec: f64,
    /// Claim updates per second (claims × sweeps / seconds).
    claims_per_sec: f64,
}

/// Cached-vs-naive comparison at one dataset size.
#[derive(Debug, Clone, Serialize)]
struct TrajectoryPoint {
    claims: usize,
    facts: usize,
    sources: usize,
    cached: KernelPoint,
    naive: KernelPoint,
    /// `naive.seconds / cached.seconds`.
    speedup: f64,
    /// Whether both kernels produced bit-identical posteriors.
    parity: bool,
}

/// Multi-chain driver measurement on the headline dataset.
#[derive(Debug, Clone, Serialize)]
struct ParallelPoint {
    chains: usize,
    seconds: f64,
    /// Total sweeps across chains per second.
    sweeps_per_sec: f64,
    /// Wall-time ratio versus running the chains sequentially.
    speedup_vs_sequential: f64,
    max_rhat: f64,
    converged_fraction: f64,
}

/// The `BENCH_gibbs.json` schema.
#[derive(Debug, Clone, Serialize)]
struct BenchGibbs {
    /// Cached-vs-naive across dataset sizes (last entry is the headline).
    trajectory: Vec<TrajectoryPoint>,
    /// Headline speedup (100k-claim dataset).
    headline_speedup: f64,
    /// Direct-product kernel on the headline dataset, for reference.
    direct: KernelPoint,
    /// Multi-chain scaling on the headline dataset.
    parallel: Vec<ParallelPoint>,
    /// Timing repeats (best-of).
    repeats: usize,
    /// Gibbs sweeps per fit.
    sweeps: usize,
}

fn config(num_facts: usize, sweeps: usize, arithmetic: Arithmetic) -> LtmConfig {
    LtmConfig {
        priors: Priors::scaled_specificity(num_facts),
        schedule: SampleSchedule::new(sweeps, sweeps / 6, 0),
        seed: 42,
        arithmetic,
    }
}

fn best_of<T>(repeats: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = run();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("repeats >= 1"))
}

fn measure_kernel(
    name: &str,
    db: &ltm_model::ClaimDb,
    cfg: &LtmConfig,
    repeats: usize,
) -> (KernelPoint, ltm_model::TruthAssignment) {
    let (seconds, fitted) = best_of(repeats, || fit(db, cfg));
    let sweeps = cfg.schedule.iterations;
    let work = (db.num_claims() * sweeps) as f64;
    (
        KernelPoint {
            kernel: name.to_string(),
            claims: db.num_claims(),
            sweeps,
            seconds,
            sweeps_per_sec: sweeps as f64 / seconds,
            claims_per_sec: work / seconds,
        },
        fitted.truth,
    )
}

fn main() {
    let mut out = PathBuf::from("BENCH_gibbs.json");
    let mut repeats = 3usize;
    let mut fast = false;
    let usage = |msg: &str| -> ! {
        eprintln!("{msg}");
        eprintln!("usage: perf [--out FILE] [--repeats N] [--fast]");
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a path")))
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .unwrap_or_else(|| usage("--repeats needs a number"))
                    .parse()
                    .unwrap_or_else(|_| usage("--repeats must be a positive integer"));
                if repeats == 0 {
                    usage("--repeats must be at least 1");
                }
            }
            "--fast" => fast = true,
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if fast {
        repeats = 1;
    }

    let sources = 20usize;
    let fact_sizes: &[usize] = if fast {
        &[250, 500]
    } else {
        &[1_250, 2_500, 5_000]
    };
    let sweeps = if fast { 12 } else { 30 };

    let mut trajectory = Vec::new();
    for &facts in fact_sizes {
        let data = synthetic::generate(&SyntheticConfig {
            num_facts: facts,
            num_sources: sources,
            seed: 7,
            ..Default::default()
        });
        let db = &data.claims;
        let (cached, cached_truth) = measure_kernel(
            "cached_log",
            db,
            &config(facts, sweeps, Arithmetic::CachedLog),
            repeats,
        );
        let (naive, naive_truth) = measure_kernel(
            "log_space",
            db,
            &config(facts, sweeps, Arithmetic::LogSpace),
            repeats,
        );
        let point = TrajectoryPoint {
            claims: db.num_claims(),
            facts,
            sources,
            speedup: naive.seconds / cached.seconds,
            parity: cached_truth == naive_truth,
            cached,
            naive,
        };
        println!(
            "{:>7} claims: cached {:>12.0} claims/s, naive {:>12.0} claims/s, \
             speedup {:.2}x, parity {}",
            point.claims,
            point.cached.claims_per_sec,
            point.naive.claims_per_sec,
            point.speedup,
            point.parity
        );
        assert!(point.parity, "cached kernel diverged from log-space kernel");
        trajectory.push(point);
    }

    // Headline dataset: direct kernel reference + multi-chain scaling.
    let headline_facts = *fact_sizes.last().expect("non-empty sizes");
    let data = synthetic::generate(&SyntheticConfig {
        num_facts: headline_facts,
        num_sources: sources,
        seed: 7,
        ..Default::default()
    });
    let db = &data.claims;
    let (direct, _) = measure_kernel(
        "direct",
        db,
        &config(headline_facts, sweeps, Arithmetic::Direct),
        repeats,
    );

    let single_seconds = trajectory
        .last()
        .expect("non-empty trajectory")
        .cached
        .seconds;
    let mut parallel = Vec::new();
    for &chains in &[2usize, 4] {
        let cfg = config(headline_facts, sweeps, Arithmetic::CachedLog);
        let (seconds, multi) = best_of(repeats, || fit_chains(db, &cfg, chains));
        let total_sweeps = (sweeps * chains) as f64;
        let point = ParallelPoint {
            chains,
            seconds,
            sweeps_per_sec: total_sweeps / seconds,
            speedup_vs_sequential: single_seconds * chains as f64 / seconds,
            max_rhat: multi.diagnostics.max_rhat,
            converged_fraction: multi.diagnostics.converged_fraction,
        };
        println!(
            "{} chains: {:.3}s wall, {:.2}x vs sequential, max R-hat {:.3}, \
             {:.0}% of facts converged",
            point.chains,
            point.seconds,
            point.speedup_vs_sequential,
            point.max_rhat,
            point.converged_fraction * 100.0
        );
        parallel.push(point);
    }

    let headline_speedup = trajectory.last().expect("non-empty").speedup;
    let report = BenchGibbs {
        trajectory,
        headline_speedup,
        direct,
        parallel,
        repeats,
        sweeps,
    };
    write_json(&out, &report).expect("write BENCH_gibbs.json");
    println!(
        "headline: {:.2}x cached vs naive; wrote {}",
        report.headline_speedup,
        out.display()
    );
}
