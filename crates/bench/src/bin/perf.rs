//! `perf` — Gibbs-kernel throughput benchmark, emitting `BENCH_gibbs.json`.
//!
//! Measures the collapsed Gibbs sweep on the paper's synthetic workload
//! (§6.1: every source claims every fact) at several sizes, comparing the
//! naive log-space kernel against the cached log-ratio kernel, verifying
//! their bit-identity, and measuring the multi-chain parallel driver.
//!
//! Usage:
//!
//! ```text
//! perf [--out <FILE>] [--serve-out <FILE>] [--repeats <N>] [--fast]
//! perf --emit-goldens [<FILE>]
//!
//! Options:
//!   --out <FILE>        Gibbs output JSON path (default BENCH_gibbs.json)
//!   --serve-out <FILE>  serve-path output JSON path (default BENCH_serve.json)
//!   --repeats <N>       timing repeats per measurement, best-of (default 3)
//!   --fast              smoke mode: small dataset, one repeat
//!   --emit-goldens      regenerate the golden-accuracy fixture (default
//!                       tests/goldens/accuracy.json, relative to the
//!                       workspace root) and exit without benchmarking
//! ```
//!
//! The headline dataset is 5 000 facts × 20 sources = 100 000 claims; the
//! trajectory adds 25k and 50k claim points. Reported metrics per kernel:
//! wall seconds, sweeps/sec, and claim-updates/sec (claims × sweeps /
//! seconds — the paper's `O(|C|)` unit of work).
//!
//! After the kernel measurements, the binary boots an in-process
//! `ltm-serve` server on an ephemeral port and drives the serve path over
//! real HTTP: bulk-ingest a ~100k-claim workload, wait for the refit
//! daemon's first epoch, then run a mixed query/ingest phase (9:1) with
//! per-request latency percentiles — emitted as `BENCH_serve.json`.
//! A final phase re-runs the bulk ingest against WAL-enabled servers at
//! each `--wal-sync` policy to price the durability tax, and an A/B pair
//! of servers prices the observability layer (`obs_overhead`) and the
//! baseline shadow ensemble (`shadow_overhead`) on the hot paths. A
//! last phase (`high_concurrency`) storms the readiness-loop front end
//! with hundreds of parked keep-alive connections — asserting the
//! thread census does not grow — and prices `POST /query/batch`.

use std::path::PathBuf;
use std::time::Instant;

use ltm_core::{fit, fit_chains, Arithmetic, LtmConfig, Priors, SampleSchedule};
use ltm_datagen::synthetic::{self, SyntheticConfig};
use ltm_eval::report::write_json;
use serde::Serialize;

/// One kernel measurement on one dataset size.
#[derive(Debug, Clone, Serialize)]
struct KernelPoint {
    /// Kernel name (`cached_log`, `log_space`, `direct`).
    kernel: String,
    /// Claims in the dataset.
    claims: usize,
    /// Gibbs sweeps executed.
    sweeps: usize,
    /// Best-of-repeats wall time.
    seconds: f64,
    /// Sweeps per second.
    sweeps_per_sec: f64,
    /// Claim updates per second (claims × sweeps / seconds).
    claims_per_sec: f64,
}

/// Cached-vs-naive comparison at one dataset size.
#[derive(Debug, Clone, Serialize)]
struct TrajectoryPoint {
    claims: usize,
    facts: usize,
    sources: usize,
    cached: KernelPoint,
    naive: KernelPoint,
    /// `naive.seconds / cached.seconds`.
    speedup: f64,
    /// Whether both kernels produced bit-identical posteriors.
    parity: bool,
}

/// Multi-chain driver measurement on the headline dataset.
#[derive(Debug, Clone, Serialize)]
struct ParallelPoint {
    chains: usize,
    seconds: f64,
    /// Total sweeps across chains per second.
    sweeps_per_sec: f64,
    /// Wall-time ratio versus running the chains sequentially.
    speedup_vs_sequential: f64,
    max_rhat: f64,
    converged_fraction: f64,
}

/// The `BENCH_gibbs.json` schema.
#[derive(Debug, Clone, Serialize)]
struct BenchGibbs {
    /// Cached-vs-naive across dataset sizes (last entry is the headline).
    trajectory: Vec<TrajectoryPoint>,
    /// Headline speedup (100k-claim dataset).
    headline_speedup: f64,
    /// Direct-product kernel on the headline dataset, for reference.
    direct: KernelPoint,
    /// Multi-chain scaling on the headline dataset.
    parallel: Vec<ParallelPoint>,
    /// Timing repeats (best-of).
    repeats: usize,
    /// Gibbs sweeps per fit.
    sweeps: usize,
}

/// Latency percentiles over one request class, in milliseconds.
#[derive(Debug, Clone, Serialize)]
struct LatencyStats {
    ops: usize,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    mean_ms: f64,
}

impl LatencyStats {
    fn from_millis(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "latency class measured no requests");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pct = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
        Self {
            ops: samples.len(),
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
            max_ms: *samples.last().expect("non-empty"),
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
        }
    }
}

/// One point of the refit-scaling phase: a full refit over the resident
/// store versus an incremental refit over a small delta at the same size.
#[derive(Debug, Clone, Serialize)]
struct RefitScalePoint {
    /// Claims resident in the store when the full refit ran.
    resident_claims: usize,
    /// Wall seconds of the full (from-zero) refit at that size.
    full_refit_secs: f64,
    /// Triples in the delta the incremental refit folded.
    delta_triples: usize,
    /// Wall seconds of the incremental refit over that delta.
    incremental_refit_secs: f64,
    /// `incremental_refit_secs / full_refit_secs` — the delta-refit win.
    incremental_over_full: f64,
}

/// One domain's slice of the mixed two-domain phase.
#[derive(Debug, Clone, Serialize)]
struct DomainPhasePoint {
    /// Domain name.
    domain: String,
    /// Model kind (`boolean` | `real_valued`).
    kind: String,
    /// Rows bulk-ingested into the domain before the mixed phase.
    ingest_rows: usize,
    /// Claims the domain's store implies after the run.
    store_claims: usize,
    /// Per-request query latency over the mixed phase.
    query: LatencyStats,
    /// Epochs the domain's own daemon published during the run.
    epochs_published: f64,
}

/// The mixed two-domain phase: one server hosting a boolean and a
/// real-valued domain concurrently, queried in an interleaved stream
/// with per-domain latency percentiles — multi-model serving measured
/// over real HTTP.
#[derive(Debug, Clone, Serialize)]
struct MultiDomainPhase {
    /// Interleaved requests across both domains (queries + ingests).
    mixed_ops: usize,
    /// Per-domain breakdown (boolean first).
    domains: Vec<DomainPhasePoint>,
}

/// Ingest throughput under one WAL sync policy: the durability tax,
/// measured as triples/sec over real HTTP with the log enabled.
#[derive(Debug, Clone, Serialize)]
struct WalSyncPoint {
    /// The `--wal-sync` policy (`always` | `interval:5` | `never`).
    policy: String,
    /// Triples bulk-ingested (in `batch` triple batches).
    ingest_triples: usize,
    /// Triples per HTTP batch — `always` pays one fsync per batch.
    batch: usize,
    /// Wall seconds for the whole ingest.
    seconds: f64,
    /// Ingest throughput under this policy.
    triples_per_sec: f64,
    /// WAL records appended (one per accepted batch).
    wal_appends: f64,
    /// fsyncs issued — the knob the policy turns.
    wal_fsyncs: f64,
    /// Bytes framed into the log.
    wal_bytes: f64,
}

/// The observability tax: identical ingest + query workloads against a
/// metrics-recording server (the `metrics: true` default) and a
/// disabled one, interleaved call by call so every request pair sees
/// the same machine state, store state, and body. The overhead is
/// derived from the median per-call duration ratio — immune to the
/// strictly additive scheduler noise that dwarfs the true effect on a
/// shared 1-core container. CI gates both percentages at ≤ 3%.
#[derive(Debug, Clone, Serialize)]
struct ObsOverheadPhase {
    /// Triples bulk-ingested per mode per repeat.
    ingest_triples: usize,
    /// `/query` requests issued per mode per repeat.
    query_ops: usize,
    /// Interleaved A/B repeats; the pcts below are medians over these.
    repeats: usize,
    /// Best single-call ingest throughput with metrics recording on.
    ingest_on_per_sec: f64,
    /// Best single-call ingest throughput with metrics recording off.
    ingest_off_per_sec: f64,
    /// `(1 − 1/median(t_on/t_off)) × 100` — ingest throughput given up
    /// to metrics.
    ingest_overhead_pct: f64,
    /// Best single-call query throughput with metrics recording on.
    query_on_per_sec: f64,
    /// Best single-call query throughput with metrics recording off.
    query_off_per_sec: f64,
    /// `(1 − 1/median(t_on/t_off)) × 100` — query throughput given up
    /// to metrics.
    query_overhead_pct: f64,
}

/// The shadow-predictor tax: identical query workloads against a server
/// whose refits also fit the baseline shadow ensemble and one with
/// shadows disabled (`refit.shadows = false`), interleaved call by call
/// like [`ObsOverheadPhase`]. Shadow fitting runs on the refit daemon
/// thread, so the query path only pays for the heavier epoch snapshot it
/// clones — the phase prices exactly that. CI gates the median-ratio
/// overhead at ≤ 5%.
#[derive(Debug, Clone, Serialize)]
struct ShadowOverheadPhase {
    /// Triples bulk-ingested per mode.
    ingest_triples: usize,
    /// Plain `/query` requests issued per mode.
    query_ops: usize,
    /// Shadow methods fitted on the shadows-on server (8 = LTM + the
    /// seven Table 7 baselines).
    shadow_methods: usize,
    /// Facts covered by the published shadow tables.
    shadow_facts: usize,
    /// Plain-query latency with shadow tables published.
    query_on: LatencyStats,
    /// Plain-query latency with shadows disabled.
    query_off: LatencyStats,
    /// `(1 − 1/median(t_on/t_off)) × 100` over paired calls — query
    /// throughput given up to the shadow ensemble (the CI-gated number).
    query_overhead_pct: f64,
    /// `(p99_on/p99_off − 1) × 100` — the headline p99 regression.
    p99_regression_pct: f64,
    /// `?methods=all` latency on the shadows-on server (9 scores per
    /// answer), for reference — not gated.
    methods_all: LatencyStats,
}

/// The readiness-loop front end under fan-in: hundreds of keep-alive
/// connections held open at once while driver threads storm `/query`
/// round-robin across them, then a batched sub-phase that streams
/// `POST /query/batch` bodies of `batch_size` fact queries each. The
/// thread census is read from `/proc/self/status` before and after the
/// connections open — an epoll loop must serve N parked connections
/// with the same fixed thread count it booted with, unlike a
/// thread-per-connection front end. CI gates qps, p99, and facts/sec.
#[derive(Debug, Clone, Serialize)]
struct HighConcurrencyPhase {
    /// Front end that served the phase (`epoll` or `blocking`).
    frontend: String,
    /// Keep-alive connections open concurrently through the storm.
    connections: usize,
    /// Client driver threads sharing those connections round-robin.
    driver_threads: usize,
    /// Process thread count after boot, before any connection opened.
    threads_before: usize,
    /// Process thread count with every connection open and primed —
    /// must equal `threads_before`: connections cost no threads.
    threads_with_connections: usize,
    /// `/query` requests answered across all connections.
    query_ops: usize,
    /// Wall seconds of the single-query storm.
    seconds: f64,
    /// Sustained single-query throughput under the fan-in.
    qps: f64,
    /// Per-request latency under the storm.
    query: LatencyStats,
    /// Requests the server answered on a reused connection (its
    /// `keepalive_reuses` counter) — proves the storm stayed parked.
    keepalive_reuses: f64,
    /// Fact queries per `POST /query/batch` body.
    batch_size: usize,
    /// Batch requests issued.
    batch_ops: usize,
    /// Wall seconds of the batched sub-phase.
    batch_seconds: f64,
    /// Batched fact-query throughput: facts scored per second.
    batch_facts_per_sec: f64,
    /// Per-batch request latency.
    batch: LatencyStats,
}

/// The `BENCH_serve.json` schema.
#[derive(Debug, Clone, Serialize)]
struct BenchServe {
    /// Store shards / HTTP worker threads of the measured server.
    shards: usize,
    threads: usize,
    /// Bulk-ingest phase: triples sent, claims implied by the store.
    ingest_triples: usize,
    store_claims: usize,
    ingest_seconds: f64,
    ingest_triples_per_sec: f64,
    /// Wall time from the refit trigger to the first published epoch.
    first_epoch_seconds: f64,
    /// Mixed phase: total ops and the query share.
    mixed_ops: usize,
    query_fraction: f64,
    query: LatencyStats,
    ingest: LatencyStats,
    /// Epochs published by the daemon over the whole run.
    epoch_swaps: f64,
    /// Refit attempts the daemon started.
    refits_started: f64,
    /// Refit latency as the store grows: full vs incremental (paper
    /// §5.4 — an increment costs the size of the delta, not the store).
    refit_scaling: Vec<RefitScalePoint>,
    /// The mixed two-domain (boolean + real-valued) phase.
    multi_domain: MultiDomainPhase,
    /// Ingest throughput at each `--wal-sync` policy (the durability
    /// tax; the WAL-less baseline is `ingest_triples_per_sec` above).
    wal_sync: Vec<WalSyncPoint>,
    /// Metrics-recording overhead on the ingest and query hot paths.
    obs_overhead: ObsOverheadPhase,
    /// Query-path cost of publishing the baseline shadow ensemble.
    shadow_overhead: ShadowOverheadPhase,
    /// The readiness-loop front end under ≥ 256 keep-alive connections,
    /// plus the batched query path's facts/sec.
    high_concurrency: HighConcurrencyPhase,
}

/// Drives the serve path over HTTP and returns the measured report.
fn measure_serve(fast: bool) -> BenchServe {
    use ltm_serve::http::http_call;
    use ltm_serve::refit::RefitConfig;
    use ltm_serve::server::{ServeConfig, Server};

    // 2 attrs per entity, every source covering every entity → claims =
    // entities × 2 × sources; 2 500 × 2 × 20 = 100 000 on the full run.
    let entities: usize = if fast { 150 } else { 2_500 };
    let sources: usize = 20;
    let mixed_ops: usize = if fast { 300 } else { 2_000 };

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 4,
        threads: 4,
        refit: RefitConfig {
            ltm: LtmConfig {
                priors: Priors::scaled_specificity(entities * 2),
                schedule: SampleSchedule::new(60, 20, 1),
                ..LtmConfig::default()
            },
            chains: 2,
            rhat_gate: 1.5,
            // Manual triggers only: the phases below fire refits at
            // well-defined points so `first_epoch_seconds` measures a
            // clean trigger→publish interval and the later refits
            // provably overlap the mixed traffic.
            min_pending: usize::MAX,
            interval: std::time::Duration::from_millis(50),
            ..RefitConfig::default()
        },
        snapshot: None,
        ..ServeConfig::default()
    })
    .expect("boot serve benchmark server");
    let addr = server.addr();

    // Bulk ingest in batches of 1 000 triples.
    let triples: Vec<String> = (0..entities)
        .flat_map(|e| {
            (0..sources).map(move |s| {
                // Every source asserts one of the two attrs; both attrs
                // appear for every entity so the claim count is exact.
                let a = (e + s) % 2;
                format!("[\"e{e}\",\"a{a}\",\"s{s}\"]")
            })
        })
        .collect();
    let ingest_started = Instant::now();
    for chunk in triples.chunks(1_000) {
        let body = format!("{{\"triples\":[{}]}}", chunk.join(","));
        let (status, response) =
            http_call(addr, "POST", "/claims", Some(&body)).expect("bulk ingest");
        assert_eq!(status, 200, "{response}");
    }
    let ingest_seconds = ingest_started.elapsed().as_secs_f64();

    // Schema-less stats parsing through the vendored `serde::Value`.
    let stats_f64 = |body: &str, field: &str| -> f64 {
        let value: serde::Value = serde_json::from_str(body).expect("stats JSON");
        value
            .get_field(field)
            .and_then(serde::Value::as_f64)
            .unwrap_or_else(|| panic!("stats field {field} missing or non-numeric: {body}"))
    };
    // Waits until `at_least` refits have *finished* (published or
    // gate-rejected), so the counters read afterwards are settled.
    let wait_for_refits_done = |at_least: f64, what: &str| {
        let started = Instant::now();
        loop {
            let (_, body) = http_call(addr, "GET", "/stats", None).expect("stats");
            if stats_f64(&body, "epochs_published") + stats_f64(&body, "epochs_rejected")
                >= at_least
            {
                return;
            }
            assert!(
                started.elapsed().as_secs() < 600,
                "refit daemon never finished ({what}): {body}"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    };

    // First epoch: a clean trigger→publish interval on the full store.
    let epoch_started = Instant::now();
    server.trigger_refit();
    wait_for_refits_done(1.0, "first epoch");
    let first_epoch_seconds = epoch_started.elapsed().as_secs_f64();

    // Mixed phase: 9 queries per 1 ingest, measured per request, with
    // refits fired early and at the midpoint so epoch swaps demonstrably
    // overlap the measured traffic. Both triggers land just after an
    // ingest op (the first ingest is at i = 9): a trigger with no delta
    // since the last fold is an uncounted Empty pass, and the settle
    // barrier below would wait forever for its outcome.
    let mut query_ms = Vec::new();
    let mut ingest_ms = Vec::new();
    for i in 0..mixed_ops {
        if i == 10 || i == mixed_ops / 2 {
            server.trigger_refit();
        }
        let started = Instant::now();
        if i % 10 == 9 {
            let body = format!("[\"mixed{i}\",\"a0\",\"s{}\"]", i % sources);
            let (status, _) = http_call(
                addr,
                "POST",
                "/claims",
                Some(&format!("{{\"triples\":[{body}]}}")),
            )
            .expect("mixed ingest");
            assert_eq!(status, 200);
            ingest_ms.push(started.elapsed().as_secs_f64() * 1e3);
        } else {
            let body = format!(
                "{{\"claims\":[[\"s{}\",true],[\"s{}\",false],[\"s{}\",true]]}}",
                i % sources,
                (i + 7) % sources,
                (i + 13) % sources
            );
            let (status, response) =
                http_call(addr, "POST", "/query", Some(&body)).expect("mixed query");
            assert_eq!(status, 200, "{response}");
            query_ms.push(started.elapsed().as_secs_f64() * 1e3);
        }
    }

    // Let the mid-phase refits land before reading the final counters.
    wait_for_refits_done(3.0, "mixed-phase refits");
    let (_, stats) = http_call(addr, "GET", "/stats", None).expect("final stats");
    let store_claims = stats_f64(&stats, "claims") as usize;
    let epoch_swaps = stats_f64(&stats, "epochs_published");
    let refits_started = stats_f64(&stats, "refits_started");
    server.shutdown().expect("clean shutdown");

    // Refit-scaling phase on its own (now idle) server.
    let refit_scaling = measure_refit_scaling(fast);
    // Mixed two-domain phase on its own server.
    let multi_domain = measure_multi_domain(fast);
    // WAL sync-policy throughput, one fresh server per policy.
    let wal_sync = measure_wal_sync(fast);
    // Metrics on/off A-B, one fresh server per repeat.
    let obs_overhead = measure_obs_overhead(fast);
    // Shadows on/off A-B on a pair of servers.
    let shadow_overhead = measure_shadow_overhead(fast);
    // Keep-alive fan-in + batched query throughput on a fresh server.
    let high_concurrency = measure_high_concurrency(fast);

    BenchServe {
        shards: 4,
        threads: 4,
        ingest_triples: triples.len(),
        store_claims,
        ingest_seconds,
        ingest_triples_per_sec: triples.len() as f64 / ingest_seconds,
        first_epoch_seconds,
        mixed_ops,
        query_fraction: query_ms.len() as f64 / mixed_ops as f64,
        query: LatencyStats::from_millis(query_ms),
        ingest: LatencyStats::from_millis(ingest_ms),
        epoch_swaps,
        refits_started,
        refit_scaling,
        multi_domain,
        wal_sync,
        obs_overhead,
        shadow_overhead,
        high_concurrency,
    }
}

/// Thread count of this process, from `/proc/self/status` (Linux-only;
/// 0 where that file does not exist, which also disables the census
/// assertion in [`measure_high_concurrency`]).
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find_map(|line| line.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Storms the front end with hundreds of keep-alive connections and
/// prices the batched query path. Three claims, in order:
///
/// 1. **Connections are free.** The process thread count is read before
///    and after all `connections` keep-alive connections open (each
///    primed with one request, so the server has accepted and parked
///    every one of them). On the epoll front end both reads must match.
/// 2. **Keep-alive sustains the storm.** `driver_threads` client
///    threads each own an equal slice of the connections and issue
///    `/query` round-robin across the slice, so every connection stays
///    in rotation; afterwards the server's own `keepalive_reuses`
///    counter must account for (nearly) every request. The driver
///    count is kept small: per-request latency includes the driver's
///    own time on the run queue, so on small CI machines more drivers
///    fatten the measured tail without adding server load.
/// 3. **Batching amortizes.** One connection streams `/query/batch`
///    bodies of `batch_size` fact queries; facts/sec is the gated
///    number (the issue's floor: 100k facts/sec on the full run).
fn measure_high_concurrency(fast: bool) -> HighConcurrencyPhase {
    use ltm_serve::http::{http_call, HttpClient};
    use ltm_serve::refit::RefitConfig;
    use ltm_serve::server::{ServeConfig, Server};

    let connections: usize = if fast { 64 } else { 256 };
    let driver_threads: usize = 4;
    let per_thread_ops: usize = if fast { 1_000 } else { 8_000 };
    let batch_size: usize = 1_024;
    let batch_ops: usize = if fast { 30 } else { 200 };
    let entities: usize = if fast { 100 } else { 400 };
    let sources: usize = 20;

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 4,
        threads: 4,
        refit: RefitConfig {
            ltm: LtmConfig {
                priors: Priors::scaled_specificity(entities * 2),
                schedule: SampleSchedule::new(60, 20, 1),
                ..LtmConfig::default()
            },
            chains: 2,
            // Always promote: the phase measures the front end, not the
            // fit; queries must answer from a published epoch.
            rhat_gate: 1e9,
            min_pending: usize::MAX,
            interval: std::time::Duration::from_millis(50),
            ..RefitConfig::default()
        },
        snapshot: None,
        ..ServeConfig::default()
    })
    .expect("boot high-concurrency benchmark server");
    let addr = server.addr();
    let frontend = if ltm_serve::event_loop::SUPPORTED {
        "epoll"
    } else {
        "blocking"
    };

    let triples: Vec<String> = (0..entities)
        .flat_map(|e| {
            (0..sources).map(move |s| {
                let a = (e + s) % 2;
                format!("[\"e{e}\",\"a{a}\",\"s{s}\"]")
            })
        })
        .collect();
    for chunk in triples.chunks(1_000) {
        let body = format!("{{\"triples\":[{}]}}", chunk.join(","));
        let (status, response) =
            http_call(addr, "POST", "/claims", Some(&body)).expect("fan-in ingest");
        assert_eq!(status, 200, "{response}");
    }
    let stats_f64 = |field: &str| -> f64 {
        let (_, body) = http_call(addr, "GET", "/stats", None).expect("stats");
        let value: serde::Value = serde_json::from_str(&body).expect("stats JSON");
        value
            .get_field(field)
            .and_then(serde::Value::as_f64)
            .unwrap_or_else(|| panic!("stats field {field} missing or non-numeric: {body}"))
    };
    server.trigger_refit();
    let started = Instant::now();
    while stats_f64("epoch") < 1.0 {
        assert!(started.elapsed().as_secs() < 600, "no epoch published");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Census before a single connection exists, then with every
    // connection open and primed. The delta is the per-connection
    // thread cost — zero on the readiness loop.
    let threads_before = process_threads();
    let mut clients: Vec<HttpClient> = (0..connections)
        .map(|_| {
            let mut client = HttpClient::new(addr).expect("open keep-alive connection");
            let (status, body) = client
                .call("GET", "/healthz", None)
                .expect("prime connection");
            assert_eq!(status, 200, "{body}");
            client
        })
        .collect();
    let threads_with_connections = process_threads();
    if ltm_serve::event_loop::SUPPORTED && threads_before > 0 {
        assert_eq!(
            threads_with_connections, threads_before,
            "{connections} parked connections grew the thread census"
        );
    }

    // Partition the clients across the driver threads; each driver
    // rotates through its slice so all connections stay warm.
    let mut groups: Vec<Vec<HttpClient>> = Vec::with_capacity(driver_threads);
    let per_group = connections / driver_threads;
    for _ in 0..driver_threads {
        groups.push(clients.drain(..per_group).collect());
    }
    let storm_started = Instant::now();
    let per_thread_ms: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .enumerate()
            .map(|(t, mut group)| {
                scope.spawn(move || {
                    let mut ms = Vec::with_capacity(per_thread_ops);
                    for i in 0..per_thread_ops {
                        let body = format!(
                            "{{\"claims\":[[\"s{}\",true],[\"s{}\",false]]}}",
                            (t + i) % sources,
                            (t + i + 7) % sources
                        );
                        let len = group.len();
                        let client = &mut group[i % len];
                        let call_started = Instant::now();
                        let (status, response) = client
                            .call("POST", "/query", Some(&body))
                            .expect("storm query");
                        assert_eq!(status, 200, "{response}");
                        ms.push(call_started.elapsed().as_secs_f64() * 1e3);
                    }
                    ms
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread"))
            .collect()
    });
    let seconds = storm_started.elapsed().as_secs_f64();
    let query_ms: Vec<f64> = per_thread_ms.into_iter().flatten().collect();
    let query_ops = query_ms.len();
    let keepalive_reuses = stats_f64("keepalive_reuses");

    // Batched sub-phase: one connection, `batch_size` fact queries per
    // request, all answered against a single epoch snapshot.
    let queries: Vec<String> = (0..batch_size)
        .map(|i| {
            format!(
                "[[\"s{}\",true],[\"s{}\",false]]",
                i % sources,
                (i + 7) % sources
            )
        })
        .collect();
    let batch_body = format!("{{\"queries\":[{}]}}", queries.join(","));
    let mut batch_client = HttpClient::new(addr).expect("open batch connection");
    let mut batch_ms = Vec::with_capacity(batch_ops);
    let batch_started = Instant::now();
    for _ in 0..batch_ops {
        let call_started = Instant::now();
        let (status, response) = batch_client
            .call("POST", "/query/batch", Some(&batch_body))
            .expect("batch query");
        assert_eq!(status, 200, "{response}");
        batch_ms.push(call_started.elapsed().as_secs_f64() * 1e3);
    }
    let batch_seconds = batch_started.elapsed().as_secs_f64();
    server.shutdown().expect("clean fan-in shutdown");

    let point = HighConcurrencyPhase {
        frontend: frontend.to_string(),
        connections,
        driver_threads,
        threads_before,
        threads_with_connections,
        query_ops,
        seconds,
        qps: query_ops as f64 / seconds,
        query: LatencyStats::from_millis(query_ms),
        keepalive_reuses,
        batch_size,
        batch_ops,
        batch_seconds,
        batch_facts_per_sec: (batch_size * batch_ops) as f64 / batch_seconds,
        batch: LatencyStats::from_millis(batch_ms),
    };
    println!(
        "high-concurrency ({}): {} connections on {} threads (census {} -> {}), \
         {:.0} qps sustained, query p99 {:.3} ms, batch {:.0} facts/sec",
        point.frontend,
        point.connections,
        point.driver_threads,
        point.threads_before,
        point.threads_with_connections,
        point.qps,
        point.query.p99_ms,
        point.batch_facts_per_sec
    );
    point
}

/// Prices the shadow ensemble on the query path: two servers ingest the
/// same workload, both publish a first epoch (one fitting the eight
/// shadow predictors, one with `refit.shadows = false`), then an
/// interleaved plain-`/query` stream measures both call by call. The
/// overhead comes from the median per-call duration ratio — the same
/// scheduler-noise-immune methodology as [`measure_obs_overhead`]. A
/// final pass times `?methods=all` on the shadows-on server for scale.
fn measure_shadow_overhead(fast: bool) -> ShadowOverheadPhase {
    use ltm_serve::http::http_call;
    use ltm_serve::refit::RefitConfig;
    use ltm_serve::server::{ServeConfig, Server};

    let entities: usize = if fast { 200 } else { 800 };
    let sources: usize = 20;
    let query_ops: usize = if fast { 800 } else { 2_000 };

    let boot = |shadows: bool| -> Server {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4,
            threads: 4,
            refit: RefitConfig {
                ltm: LtmConfig {
                    priors: Priors::scaled_specificity(entities * 2),
                    schedule: SampleSchedule::new(60, 20, 1),
                    ..LtmConfig::default()
                },
                chains: 2,
                // Always promote: this phase prices the published shadow
                // tables, so the fit must land regardless of mixing.
                rhat_gate: 1e9,
                min_pending: usize::MAX,
                interval: std::time::Duration::from_millis(50),
                shadows,
                ..RefitConfig::default()
            },
            snapshot: None,
            ..ServeConfig::default()
        })
        .expect("boot shadow-overhead benchmark server")
    };
    let server_on = boot(true);
    let server_off = boot(false);
    let (addr_on, addr_off) = (server_on.addr(), server_off.addr());

    let triples: Vec<String> = (0..entities)
        .flat_map(|e| {
            (0..sources).map(move |s| {
                let a = (e + s) % 2;
                format!("[\"e{e}\",\"a{a}\",\"s{s}\"]")
            })
        })
        .collect();
    for chunk in triples.chunks(1_000) {
        let body = format!("{{\"triples\":[{}]}}", chunk.join(","));
        for addr in [addr_on, addr_off] {
            let (status, response) =
                http_call(addr, "POST", "/claims", Some(&body)).expect("shadow ingest");
            assert_eq!(status, 200, "{response}");
        }
    }

    // The shadow fields are per-domain, so read the nested `domains.default`
    // stats section rather than the flat epoch mirror at the top level.
    let stats_f64 = |addr: std::net::SocketAddr, field: &str| -> f64 {
        let (_, body) = http_call(addr, "GET", "/stats", None).expect("stats");
        let value: serde::Value = serde_json::from_str(&body).expect("stats JSON");
        value
            .get_field("domains")
            .and_then(|d| d.get_field("default"))
            .and_then(|s| s.get_field(field))
            .and_then(serde::Value::as_f64)
            .unwrap_or_else(|| panic!("stats field {field} missing or non-numeric: {body}"))
    };
    server_on.trigger_refit();
    server_off.trigger_refit();
    let started = Instant::now();
    loop {
        if stats_f64(addr_on, "shadow_facts") > 0.0 && stats_f64(addr_off, "epoch") >= 1.0 {
            break;
        }
        assert!(
            started.elapsed().as_secs() < 600,
            "shadow tables never published"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let shadow_facts = stats_f64(addr_on, "shadow_facts") as usize;

    fn median(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite duration ratios"));
        v[v.len() / 2]
    }

    // Interleaved plain-query stream: same body against both servers,
    // back to back, order alternating.
    let mut on_ms = Vec::with_capacity(query_ops);
    let mut off_ms = Vec::with_capacity(query_ops);
    let mut ratios = Vec::with_capacity(query_ops);
    for i in 0..query_ops {
        let body = format!(
            "{{\"claims\":[[\"s{}\",true],[\"s{}\",false]]}}",
            i % sources,
            (i + 7) % sources
        );
        let order: [usize; 2] = if i % 2 == 0 { [0, 1] } else { [1, 0] };
        let mut elapsed = [0.0f64; 2];
        for mode in order {
            let addr = if mode == 0 { addr_on } else { addr_off };
            let started = Instant::now();
            let (status, response) =
                http_call(addr, "POST", "/query", Some(&body)).expect("shadow query");
            elapsed[mode] = started.elapsed().as_secs_f64();
            assert_eq!(status, 200, "{response}");
        }
        on_ms.push(elapsed[0] * 1e3);
        off_ms.push(elapsed[1] * 1e3);
        ratios.push(elapsed[0] / elapsed[1]);
    }

    // `?methods=all` on the shadows-on server, for the report only.
    let mut methods_ms = Vec::with_capacity(query_ops.min(500));
    for i in 0..query_ops.min(500) {
        let body = format!(
            "{{\"claims\":[[\"s{}\",true],[\"s{}\",false]]}}",
            i % sources,
            (i + 3) % sources
        );
        let started = Instant::now();
        let (status, response) = http_call(addr_on, "POST", "/query?methods=all", Some(&body))
            .expect("methods=all query");
        methods_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, 200, "{response}");
        assert!(
            response.contains("\"ensemble\""),
            "methods=all answer lacks the ensemble score: {response}"
        );
    }

    server_on
        .shutdown()
        .expect("clean shadow-overhead shutdown");
    server_off
        .shutdown()
        .expect("clean shadow-overhead shutdown");

    let query_on = LatencyStats::from_millis(on_ms);
    let query_off = LatencyStats::from_millis(off_ms);
    let point = ShadowOverheadPhase {
        ingest_triples: triples.len(),
        query_ops,
        shadow_methods: 1 + ltm_baselines::all_baselines().len(),
        shadow_facts,
        query_overhead_pct: (1.0 - 1.0 / median(ratios)) * 100.0,
        p99_regression_pct: (query_on.p99_ms / query_off.p99_ms - 1.0) * 100.0,
        methods_all: LatencyStats::from_millis(methods_ms),
        query_on,
        query_off,
    };
    println!(
        "shadow-overhead: query p50 {:.2} ms on vs {:.2} ms off ({:+.2}% median-ratio, \
         p99 {:+.2}%), methods=all p50 {:.2} ms over {} facts × {} methods",
        point.query_on.p50_ms,
        point.query_off.p50_ms,
        point.query_overhead_pct,
        point.p99_regression_pct,
        point.methods_all.p50_ms,
        point.shadow_facts,
        point.shadow_methods
    );
    point
}

/// Runs the same ingest + query workload against a server with metrics
/// recording on and one with it off (`ServeConfig::metrics = false`),
/// best-of-N repeats per mode, and reports the throughput delta — the
/// price of the per-request histogram records and span timers. The two
/// modes share one process, so CPU frequency and allocator state match.
fn measure_obs_overhead(fast: bool) -> ObsOverheadPhase {
    use ltm_serve::http::http_call;
    use ltm_serve::refit::RefitConfig;
    use ltm_serve::server::{ServeConfig, Server};

    // Throughput on a shared 1-core container drifts far more than
    // the (tiny) true effect, so the modes run as a tightly interleaved
    // pair: both servers boot together and every ingest chunk / query
    // is sent to one then immediately the other (order alternating).
    let entities: usize = if fast { 600 } else { 1_200 };
    let sources: usize = 20;
    let batch: usize = 250;
    let query_ops: usize = if fast { 1_200 } else { 2_500 };
    let repeats: usize = 5;

    let triples: Vec<String> = (0..entities)
        .flat_map(|e| {
            (0..sources).map(move |s| {
                let a = (e + s) % 2;
                format!("[\"e{e}\",\"a{a}\",\"s{s}\"]")
            })
        })
        .collect();

    let boot = |metrics: bool| -> Server {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4,
            threads: 4,
            refit: RefitConfig {
                min_pending: usize::MAX, // no refits mid-measure
                ..RefitConfig::default()
            },
            snapshot: None,
            metrics,
            ..ServeConfig::default()
        })
        .expect("boot obs-overhead benchmark server")
    };
    let timed_post = |addr: std::net::SocketAddr, path: &str, body: &str| -> std::time::Duration {
        let started = Instant::now();
        let (status, response) = http_call(addr, "POST", path, Some(body)).expect("obs request");
        let elapsed = started.elapsed();
        assert_eq!(status, 200, "{response}");
        elapsed
    };

    fn median(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput ratios"));
        v[v.len() / 2]
    }

    // One interleaved pair: identical workloads against a metrics-on
    // and a metrics-off server, call by call. The two legs of each
    // call see the same store state and the same body back to back,
    // so their duration ratio isolates the metrics cost; the median
    // over ~50 (ingest) / ~1000 (query) paired ratios is immune to
    // the strictly additive preemption spikes that dominate single
    // timings. Returns ((ingest/s on, query/s on), (off, off),
    // (ingest t_on/t_off median, query t_on/t_off median)).
    let pair = || -> ((f64, f64), (f64, f64), (f64, f64)) {
        let server_on = boot(true);
        let server_off = boot(false);
        let (addr_on, addr_off) = (server_on.addr(), server_off.addr());

        let mut ingest_best = [0.0f64; 2];
        let mut ingest_ratios = Vec::new();
        for (i, chunk) in triples.chunks(batch).enumerate() {
            let body = format!("{{\"triples\":[{}]}}", chunk.join(","));
            let order: [usize; 2] = if i % 2 == 0 { [0, 1] } else { [1, 0] };
            let mut elapsed = [0.0f64; 2];
            for mode in order {
                let addr = if mode == 0 { addr_on } else { addr_off };
                elapsed[mode] = timed_post(addr, "/claims", &body).as_secs_f64();
                ingest_best[mode] = ingest_best[mode].max(chunk.len() as f64 / elapsed[mode]);
            }
            ingest_ratios.push(elapsed[0] / elapsed[1]);
        }

        let mut query_best = [0.0f64; 2];
        let mut query_ratios = Vec::with_capacity(query_ops);
        for i in 0..query_ops {
            let body = format!(
                "{{\"claims\":[[\"s{}\",true],[\"s{}\",false]]}}",
                i % sources,
                (i + 7) % sources
            );
            let order: [usize; 2] = if i % 2 == 0 { [0, 1] } else { [1, 0] };
            let mut elapsed = [0.0f64; 2];
            for mode in order {
                let addr = if mode == 0 { addr_on } else { addr_off };
                elapsed[mode] = timed_post(addr, "/query", &body).as_secs_f64();
                query_best[mode] = query_best[mode].max(1.0 / elapsed[mode]);
            }
            query_ratios.push(elapsed[0] / elapsed[1]);
        }

        server_on.shutdown().expect("clean obs-overhead shutdown");
        server_off.shutdown().expect("clean obs-overhead shutdown");
        (
            (ingest_best[0], query_best[0]),
            (ingest_best[1], query_best[1]),
            (median(ingest_ratios), median(query_ratios)),
        )
    };

    let mut on = Vec::with_capacity(repeats);
    let mut off = Vec::with_capacity(repeats);
    let mut ratios = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let (rates_on, rates_off, ratio_medians) = pair();
        on.push(rates_on);
        off.push(rates_off);
        ratios.push(ratio_medians);
    }

    // A t_on/t_off duration ratio of r means metrics cost (r − 1) of
    // the off-mode time, i.e. (1 − 1/r) of the on-mode throughput.
    let overhead_pct = |pick: fn(&(f64, f64)) -> f64| -> f64 {
        let r = median(ratios.iter().map(pick).collect());
        (1.0 - 1.0 / r) * 100.0
    };
    let best = |legs: &[(f64, f64)], pick: fn(&(f64, f64)) -> f64| -> f64 {
        // analyzer: allow(forbidden-api) -- legs hold finite medians of measured latencies
        legs.iter().map(pick).fold(0.0f64, f64::max)
    };

    let point = ObsOverheadPhase {
        ingest_triples: triples.len(),
        query_ops,
        repeats,
        ingest_on_per_sec: best(&on, |l| l.0),
        ingest_off_per_sec: best(&off, |l| l.0),
        ingest_overhead_pct: overhead_pct(|l| l.0),
        query_on_per_sec: best(&on, |l| l.1),
        query_off_per_sec: best(&off, |l| l.1),
        query_overhead_pct: overhead_pct(|l| l.1),
    };
    println!(
        "obs-overhead: ingest {:.0}/s on vs {:.0}/s off ({:+.2}%), query {:.0}/s on vs {:.0}/s off ({:+.2}%)",
        point.ingest_on_per_sec,
        point.ingest_off_per_sec,
        point.ingest_overhead_pct,
        point.query_on_per_sec,
        point.query_off_per_sec,
        point.query_overhead_pct
    );
    point
}

/// Boots one WAL-enabled server per sync policy and bulk-ingests the
/// same workload through each, measuring the durability tax: `always`
/// pays an fsync per acked batch, `interval:5` amortises it onto a
/// clock, `never` frames records but lets the OS flush.
fn measure_wal_sync(fast: bool) -> Vec<WalSyncPoint> {
    use ltm_serve::http::http_call;
    use ltm_serve::refit::RefitConfig;
    use ltm_serve::server::{ServeConfig, Server};
    use ltm_serve::wal::{WalConfig, WalSyncPolicy};

    let entities: usize = if fast { 60 } else { 500 };
    let sources: usize = 20;
    let batch: usize = 100;
    let triples: Vec<String> = (0..entities)
        .flat_map(|e| {
            (0..sources).map(move |s| {
                let a = (e + s) % 2;
                format!("[\"e{e}\",\"a{a}\",\"s{s}\"]")
            })
        })
        .collect();

    let policies = [
        ("always", WalSyncPolicy::Always),
        ("interval:5", WalSyncPolicy::IntervalMs(5)),
        ("never", WalSyncPolicy::Never),
    ];
    let mut points = Vec::new();
    for (name, policy) in policies {
        let dir = std::env::temp_dir().join(format!(
            "ltm-perf-wal-{}-{}",
            std::process::id(),
            name.replace(':', "-")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = WalConfig::new(dir.clone());
        wal.sync = policy;
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4,
            threads: 4,
            refit: RefitConfig {
                min_pending: usize::MAX, // pure ingest: no refits mid-measure
                ..RefitConfig::default()
            },
            snapshot: None,
            wal: Some(wal),
            ..ServeConfig::default()
        })
        .expect("boot wal-sync benchmark server");
        let addr = server.addr();

        let started = Instant::now();
        for chunk in triples.chunks(batch) {
            let body = format!("{{\"triples\":[{}]}}", chunk.join(","));
            let (status, response) =
                http_call(addr, "POST", "/claims", Some(&body)).expect("wal ingest");
            assert_eq!(status, 200, "{response}");
        }
        let seconds = started.elapsed().as_secs_f64();

        let (_, stats) = http_call(addr, "GET", "/stats", None).expect("wal stats");
        let stat = |field: &str| -> f64 {
            let value: serde::Value = serde_json::from_str(&stats).expect("stats JSON");
            value
                .get_field(field)
                .and_then(serde::Value::as_f64)
                .unwrap_or_else(|| panic!("stats field {field} missing: {stats}"))
        };
        let point = WalSyncPoint {
            policy: name.to_string(),
            ingest_triples: triples.len(),
            batch,
            seconds,
            triples_per_sec: triples.len() as f64 / seconds,
            wal_appends: stat("wal_appends"),
            wal_fsyncs: stat("wal_fsyncs"),
            wal_bytes: stat("wal_bytes"),
        };
        println!(
            "wal-sync {:>10}: {:>8.0} triples/s ({} triples, {} appends, {} fsyncs)",
            point.policy,
            point.triples_per_sec,
            point.ingest_triples,
            point.wal_appends,
            point.wal_fsyncs
        );
        server.shutdown().expect("clean wal-sync shutdown");
        let _ = std::fs::remove_dir_all(&dir);
        points.push(point);
    }
    points
}

/// Boots one server hosting a boolean `default` domain and a
/// real-valued `scores` domain, bulk-ingests both, waits for each
/// domain's first epoch, then drives an interleaved query stream (with
/// a 10% ingest mix) and reports query latency percentiles **per
/// domain** — proof that multi-model serving holds its latency on both
/// models at once.
fn measure_multi_domain(fast: bool) -> MultiDomainPhase {
    use ltm_datagen::streams::{real_valued_rows, RealStreamConfig};
    use ltm_serve::http::http_call;
    use ltm_serve::model::ModelKind;
    use ltm_serve::refit::RefitConfig;
    use ltm_serve::server::{ServeConfig, Server};

    let bool_entities: usize = if fast { 100 } else { 1_000 };
    let bool_sources: usize = 20;
    let real_entities: usize = if fast { 60 } else { 600 };
    let mixed_ops: usize = if fast { 300 } else { 2_000 };

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 4,
        threads: 4,
        refit: RefitConfig {
            ltm: LtmConfig {
                priors: Priors::scaled_specificity(bool_entities * 2),
                schedule: SampleSchedule::new(60, 20, 1),
                ..LtmConfig::default()
            },
            chains: 2,
            rhat_gate: 1.5,
            min_pending: usize::MAX, // manual triggers at phase boundaries
            interval: std::time::Duration::from_millis(50),
            ..RefitConfig::default()
        },
        domains: vec![("scores".into(), ModelKind::RealValued)],
        snapshot: None,
        ..ServeConfig::default()
    })
    .expect("boot multi-domain benchmark server");
    let addr = server.addr();

    // Bulk ingest: boolean workload on the legacy route, real-valued
    // rows (datagen stream) on the domain route.
    let bool_triples: Vec<String> = (0..bool_entities)
        .flat_map(|e| {
            (0..bool_sources).map(move |s| {
                let a = (e + s) % 2;
                format!("[\"e{e}\",\"a{a}\",\"s{s}\"]")
            })
        })
        .collect();
    for chunk in bool_triples.chunks(1_000) {
        let body = format!("{{\"triples\":[{}]}}", chunk.join(","));
        let (status, response) =
            http_call(addr, "POST", "/claims", Some(&body)).expect("boolean bulk ingest");
        assert_eq!(status, 200, "{response}");
    }
    let real_rows = real_valued_rows(&RealStreamConfig {
        entities: real_entities,
        attrs_per_entity: 2,
        sources: 10,
        informative_sources: 8,
        ..RealStreamConfig::default()
    });
    let real_rendered: Vec<String> = real_rows
        .iter()
        .map(|(e, a, s, v)| format!("[\"{e}\",\"{a}\",\"{s}\",{v}]"))
        .collect();
    for chunk in real_rendered.chunks(1_000) {
        let body = format!("{{\"triples\":[{}]}}", chunk.join(","));
        let (status, response) =
            http_call(addr, "POST", "/d/scores/claims", Some(&body)).expect("real bulk ingest");
        assert_eq!(status, 200, "{response}");
    }

    // First epoch on both domains before the mixed phase.
    let stat = |body: &str, domain: &str, field: &str| -> f64 {
        let value: serde::Value = serde_json::from_str(body).expect("stats JSON");
        let section = value
            .get_field("domains")
            .and_then(|d| d.get_field(domain))
            .unwrap_or_else(|| panic!("no domain {domain} in {body}"));
        section
            .get_field(field)
            .and_then(serde::Value::as_f64)
            .unwrap_or_else(|| panic!("field {field} missing or non-numeric: {body}"))
    };
    server.trigger_refit();
    let (status, _) = http_call(addr, "POST", "/d/scores/admin/refit", None).expect("refit");
    assert_eq!(status, 202);
    let started = Instant::now();
    loop {
        let (_, body) = http_call(addr, "GET", "/stats", None).expect("stats");
        if stat(&body, "default", "epoch") >= 1.0 && stat(&body, "scores", "epoch") >= 1.0 {
            break;
        }
        assert!(
            started.elapsed().as_secs() < 600,
            "multi-domain epochs never published: {body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Mixed phase: alternate boolean and real queries, with every 10th
    // op an ingest into the matching domain; refits fire mid-phase on
    // both domains so epoch swaps overlap the measured traffic.
    let mut bool_ms = Vec::new();
    let mut real_ms = Vec::new();
    for i in 0..mixed_ops {
        if i == mixed_ops / 2 {
            server.trigger_refit();
            let _ = http_call(addr, "POST", "/d/scores/admin/refit", None);
        }
        if i % 10 == 9 {
            let (route, row) = if i % 20 == 9 {
                (
                    "/claims".to_string(),
                    format!("[\"mix{i}\",\"a0\",\"s{}\"]", i % bool_sources),
                )
            } else {
                (
                    "/d/scores/claims".to_string(),
                    format!("[\"mix{i}\",\"a0\",\"s{}\",0.75]", i % 10),
                )
            };
            let (status, _) = http_call(
                addr,
                "POST",
                &route,
                Some(&format!("{{\"triples\":[{row}]}}")),
            )
            .expect("mixed ingest");
            assert_eq!(status, 200);
            continue;
        }
        if i % 2 == 0 {
            let body = format!(
                "{{\"claims\":[[\"s{}\",true],[\"s{}\",false]]}}",
                i % bool_sources,
                (i + 7) % bool_sources
            );
            let started = Instant::now();
            let (status, response) =
                http_call(addr, "POST", "/query", Some(&body)).expect("boolean query");
            assert_eq!(status, 200, "{response}");
            bool_ms.push(started.elapsed().as_secs_f64() * 1e3);
        } else {
            let body = format!(
                "{{\"claims\":[[\"s{}\",0.{}5],[\"s{}\",0.9]]}}",
                i % 10,
                i % 9,
                (i + 3) % 10
            );
            let started = Instant::now();
            let (status, response) =
                http_call(addr, "POST", "/d/scores/query", Some(&body)).expect("real query");
            assert_eq!(status, 200, "{response}");
            real_ms.push(started.elapsed().as_secs_f64() * 1e3);
        }
    }

    let (_, stats_body) = http_call(addr, "GET", "/stats", None).expect("final stats");
    let domains = vec![
        DomainPhasePoint {
            domain: "default".into(),
            kind: "boolean".into(),
            ingest_rows: bool_triples.len(),
            store_claims: stat(&stats_body, "default", "claims") as usize,
            query: LatencyStats::from_millis(bool_ms),
            epochs_published: stat(&stats_body, "default", "epochs_published"),
        },
        DomainPhasePoint {
            domain: "scores".into(),
            kind: "real_valued".into(),
            ingest_rows: real_rows.len(),
            store_claims: stat(&stats_body, "scores", "claims") as usize,
            query: LatencyStats::from_millis(real_ms),
            epochs_published: stat(&stats_body, "scores", "epochs_published"),
        },
    ];
    for d in &domains {
        println!(
            "multi-domain {} ({}): {} queries, p50 {:.2} ms, p99 {:.2} ms, \
             {} epochs over {} claims",
            d.domain,
            d.kind,
            d.query.ops,
            d.query.p50_ms,
            d.query.p99_ms,
            d.epochs_published,
            d.store_claims
        );
    }
    server.shutdown().expect("clean multi-domain shutdown");
    MultiDomainPhase { mixed_ops, domains }
}

/// Measures refit latency as the resident store grows: at each target
/// size, one **full** refit over everything versus one **incremental**
/// refit over a ~1k-triple delta of brand-new facts — the paper's §5.4
/// claim made measurable: the increment costs `O(Δ)`, not `O(store)`.
fn measure_refit_scaling(fast: bool) -> Vec<RefitScalePoint> {
    use ltm_serve::refit::{refit_once, RefitConfig, RefitMode, RefitOutcome, RefitState};
    use ltm_serve::server::{ServeConfig, Server};

    // Claims per entity: 2 attrs × 20 covering sources = 40.
    let sources: usize = 20;
    let entity_targets: &[usize] = if fast {
        &[50, 250] // 2k / 10k claims
    } else {
        &[250, 2_500, 12_500] // 10k / 100k / 500k claims
    };
    let delta_triples: usize = if fast { 200 } else { 1_000 };

    let config = RefitConfig {
        ltm: LtmConfig {
            priors: Priors::scaled_specificity(entity_targets.last().unwrap() * 2),
            schedule: SampleSchedule::new(60, 20, 1),
            ..LtmConfig::default()
        },
        chains: 2,
        rhat_gate: 1.5,
        min_pending: usize::MAX, // this phase drives refits directly
        ..RefitConfig::default()
    };
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 4,
        threads: 2,
        refit: config.clone(),
        snapshot: None,
        ..ServeConfig::default()
    })
    .expect("boot refit-scaling server");
    let store = server.store();
    let predictor = server.predictor();
    let state: std::sync::Arc<std::sync::Mutex<RefitState>> = server.refit_state();
    let refit_lock = server.refit_lock();

    let mut points = Vec::new();
    let mut next_entity = 0usize;
    let mut next_delta_entity = 0usize;
    let mut bump = 0u64;
    for &target in entity_targets {
        // Grow the resident store to the target (direct ingest: this
        // phase measures refits, not HTTP framing).
        while next_entity < target {
            // Every source covers every entity; attr parity alternates so
            // both attrs exist → claims = entities × 2 × sources exactly.
            for s in 0..sources {
                let a = (next_entity + s) % 2;
                store.ingest(
                    &format!("e{next_entity}"),
                    &format!("a{a}"),
                    &format!("s{s}"),
                );
            }
            next_entity += 1;
        }

        bump += 1;
        let started = Instant::now();
        let outcome = refit_once(
            &store,
            &predictor,
            ltm_serve::model::ModelKind::Boolean,
            &config,
            &state,
            &refit_lock,
            bump,
            RefitMode::Full,
        );
        let full_refit_secs = started.elapsed().as_secs_f64();
        let resident_claims = store.stats().claims;
        assert!(
            !matches!(outcome, RefitOutcome::Failed(_)),
            "full refit failed: {outcome:?}"
        );

        // A small delta of brand-new single-source facts.
        for _ in 0..delta_triples {
            store.ingest(
                &format!("delta{next_delta_entity}"),
                "a0",
                &format!("s{}", next_delta_entity % sources),
            );
            next_delta_entity += 1;
        }
        bump += 1;
        let started = Instant::now();
        let outcome = refit_once(
            &store,
            &predictor,
            ltm_serve::model::ModelKind::Boolean,
            &config,
            &state,
            &refit_lock,
            bump,
            RefitMode::Incremental,
        );
        let incremental_refit_secs = started.elapsed().as_secs_f64();
        assert!(
            !matches!(outcome, RefitOutcome::Failed(_)),
            "incremental refit failed: {outcome:?}"
        );

        let point = RefitScalePoint {
            resident_claims,
            full_refit_secs,
            delta_triples,
            incremental_refit_secs,
            incremental_over_full: incremental_refit_secs / full_refit_secs,
        };
        println!(
            "refit scaling @ {:>7} claims: full {:>8.2} ms, incremental ({} triples) \
             {:>7.2} ms ({:.1}% of full)",
            point.resident_claims,
            point.full_refit_secs * 1e3,
            point.delta_triples,
            point.incremental_refit_secs * 1e3,
            point.incremental_over_full * 100.0
        );
        points.push(point);
    }
    server.shutdown().expect("clean refit-scaling shutdown");
    points
}

fn config(num_facts: usize, sweeps: usize, arithmetic: Arithmetic) -> LtmConfig {
    LtmConfig {
        priors: Priors::scaled_specificity(num_facts),
        schedule: SampleSchedule::new(sweeps, sweeps / 6, 0),
        seed: 42,
        arithmetic,
    }
}

fn best_of<T>(repeats: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = run();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("repeats >= 1"))
}

fn measure_kernel(
    name: &str,
    db: &ltm_model::ClaimDb,
    cfg: &LtmConfig,
    repeats: usize,
) -> (KernelPoint, ltm_model::TruthAssignment) {
    let (seconds, fitted) = best_of(repeats, || fit(db, cfg));
    let sweeps = cfg.schedule.iterations;
    let work = (db.num_claims() * sweeps) as f64;
    (
        KernelPoint {
            kernel: name.to_string(),
            claims: db.num_claims(),
            sweeps,
            seconds,
            sweeps_per_sec: sweeps as f64 / seconds,
            claims_per_sec: work / seconds,
        },
        fitted.truth,
    )
}

fn main() {
    let mut out = PathBuf::from("BENCH_gibbs.json");
    let mut serve_out = PathBuf::from("BENCH_serve.json");
    let mut repeats = 3usize;
    let mut fast = false;
    let mut emit_goldens: Option<PathBuf> = None;
    let usage = |msg: &str| -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: perf [--out FILE] [--serve-out FILE] [--repeats N] [--fast]\n\
             \x20      perf --emit-goldens [FILE]"
        );
        #[allow(clippy::disallowed_methods)] // bin entry point, nothing to flush yet
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // The path operand is optional: a following flag (or nothing)
            // keeps the checked-in fixture location.
            "--emit-goldens" => {
                emit_goldens = Some(match args.next() {
                    Some(path) if !path.starts_with("--") => PathBuf::from(path),
                    Some(flag) => usage(&format!(
                        "--emit-goldens takes an optional FILE, not the flag `{flag}`"
                    )),
                    None => PathBuf::from("tests/goldens/accuracy.json"),
                });
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a path")))
            }
            "--serve-out" => {
                serve_out = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--serve-out needs a path")),
                )
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .unwrap_or_else(|| usage("--repeats needs a number"))
                    .parse()
                    .unwrap_or_else(|_| usage("--repeats must be a positive integer"));
                if repeats == 0 {
                    usage("--repeats must be at least 1");
                }
            }
            "--fast" => fast = true,
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if let Some(path) = emit_goldens {
        let report = ltm_bench::compute_goldens();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create goldens directory");
        }
        write_json(&path, &report).expect("write goldens");
        println!(
            "wrote {} golden records to {}",
            report.records.len(),
            path.display()
        );
        return;
    }
    if fast {
        repeats = 1;
    }

    let sources = 20usize;
    let fact_sizes: &[usize] = if fast {
        &[250, 500]
    } else {
        &[1_250, 2_500, 5_000]
    };
    let sweeps = if fast { 12 } else { 30 };

    let mut trajectory = Vec::new();
    for &facts in fact_sizes {
        let data = synthetic::generate(&SyntheticConfig {
            num_facts: facts,
            num_sources: sources,
            seed: 7,
            ..Default::default()
        });
        let db = &data.claims;
        let (cached, cached_truth) = measure_kernel(
            "cached_log",
            db,
            &config(facts, sweeps, Arithmetic::CachedLog),
            repeats,
        );
        let (naive, naive_truth) = measure_kernel(
            "log_space",
            db,
            &config(facts, sweeps, Arithmetic::LogSpace),
            repeats,
        );
        let point = TrajectoryPoint {
            claims: db.num_claims(),
            facts,
            sources,
            speedup: naive.seconds / cached.seconds,
            parity: cached_truth == naive_truth,
            cached,
            naive,
        };
        println!(
            "{:>7} claims: cached {:>12.0} claims/s, naive {:>12.0} claims/s, \
             speedup {:.2}x, parity {}",
            point.claims,
            point.cached.claims_per_sec,
            point.naive.claims_per_sec,
            point.speedup,
            point.parity
        );
        assert!(point.parity, "cached kernel diverged from log-space kernel");
        trajectory.push(point);
    }

    // Headline dataset: direct kernel reference + multi-chain scaling.
    let headline_facts = *fact_sizes.last().expect("non-empty sizes");
    let data = synthetic::generate(&SyntheticConfig {
        num_facts: headline_facts,
        num_sources: sources,
        seed: 7,
        ..Default::default()
    });
    let db = &data.claims;
    let (direct, _) = measure_kernel(
        "direct",
        db,
        &config(headline_facts, sweeps, Arithmetic::Direct),
        repeats,
    );

    let single_seconds = trajectory
        .last()
        .expect("non-empty trajectory")
        .cached
        .seconds;
    let mut parallel = Vec::new();
    for &chains in &[2usize, 4] {
        let cfg = config(headline_facts, sweeps, Arithmetic::CachedLog);
        let (seconds, multi) = best_of(repeats, || fit_chains(db, &cfg, chains));
        let total_sweeps = (sweeps * chains) as f64;
        let point = ParallelPoint {
            chains,
            seconds,
            sweeps_per_sec: total_sweeps / seconds,
            speedup_vs_sequential: single_seconds * chains as f64 / seconds,
            max_rhat: multi.diagnostics.max_rhat,
            converged_fraction: multi.diagnostics.converged_fraction,
        };
        println!(
            "{} chains: {:.3}s wall, {:.2}x vs sequential, max R-hat {:.3}, \
             {:.0}% of facts converged",
            point.chains,
            point.seconds,
            point.speedup_vs_sequential,
            point.max_rhat,
            point.converged_fraction * 100.0
        );
        parallel.push(point);
    }

    let headline_speedup = trajectory.last().expect("non-empty").speedup;
    let report = BenchGibbs {
        trajectory,
        headline_speedup,
        direct,
        parallel,
        repeats,
        sweeps,
    };
    write_json(&out, &report).expect("write BENCH_gibbs.json");
    println!(
        "headline: {:.2}x cached vs naive; wrote {}",
        report.headline_speedup,
        out.display()
    );

    // Serve-path workload over real HTTP (ingest → refit → mixed traffic).
    let serve_report = measure_serve(fast);
    println!(
        "serve: {} claims in store, query p50 {:.2} ms / p99 {:.2} ms, \
         ingest p50 {:.2} ms, {} epoch swaps",
        serve_report.store_claims,
        serve_report.query.p50_ms,
        serve_report.query.p99_ms,
        serve_report.ingest.p50_ms,
        serve_report.epoch_swaps
    );
    write_json(&serve_out, &serve_report).expect("write BENCH_serve.json");
    println!("wrote {}", serve_out.display());
}
