//! Dataset suite shared by all experiments: the two simulated datasets at
//! paper scale (or a reduced "fast" scale for smoke runs), with fixed
//! seeds so every experiment sees the same data.

use ltm_baselines::{self as baselines, TruthMethod};
use ltm_core::{LtmConfig, Priors, SampleSchedule};
use ltm_datagen::{books, movies, BookConfig, GeneratedDataset, MovieConfig};

use crate::adapters::{LtmIncMethod, LtmMethod, LtmPosMethod};

/// The evaluation suite: both datasets plus the method configurations the
/// paper uses on them.
pub struct Suite {
    /// Simulated book-author dataset.
    pub books: GeneratedDataset,
    /// Simulated movie-director dataset.
    pub movies: GeneratedDataset,
    /// Whether the suite was built at reduced scale.
    pub fast: bool,
}

impl Suite {
    /// Builds the suite at paper scale.
    pub fn paper_scale() -> Self {
        Self {
            books: books::generate(&BookConfig::default()),
            movies: movies::generate(&MovieConfig::default()),
            fast: false,
        }
    }

    /// A reduced-scale suite for smoke tests (~10× smaller, same
    /// structure).
    pub fn fast() -> Self {
        Self {
            books: books::generate(&BookConfig {
                num_books: 150,
                num_sources: 120,
                mean_sources_per_book: 22.0,
                labeled_entities: 40,
                seed: 2012,
            }),
            movies: movies::generate(&MovieConfig {
                num_movies_raw: 2_500,
                labeled_entities: 60,
                seed: 2012,
            }),
            fast: true,
        }
    }

    /// Builds either scale.
    pub fn new(fast: bool) -> Self {
        if fast {
            Self::fast()
        } else {
            Self::paper_scale()
        }
    }

    /// The LTM configuration the paper uses for the book data
    /// (`α₀ = (10, 1000)`, `α₁ = (50, 50)`, `β = (10, 10)`, 100 iterations
    /// with burn-in 20 and gap 4).
    pub fn books_ltm_config(&self) -> LtmConfig {
        LtmConfig {
            priors: if self.fast {
                Priors::scaled_specificity(self.books.dataset.claims.num_facts())
            } else {
                Priors::paper_books()
            },
            schedule: SampleSchedule::paper_default(),
            seed: 42,
            arithmetic: Default::default(),
        }
    }

    /// The LTM configuration for the movie data (`α₀ = (100, 10000)`).
    pub fn movies_ltm_config(&self) -> LtmConfig {
        LtmConfig {
            priors: if self.fast {
                Priors::scaled_specificity(self.movies.dataset.claims.num_facts())
            } else {
                Priors::paper_movies()
            },
            schedule: SampleSchedule::paper_default(),
            seed: 42,
            arithmetic: Default::default(),
        }
    }

    /// All ten methods for a dataset, in the paper's Table 7 order.
    pub fn methods_for(
        &self,
        data: &GeneratedDataset,
        config: LtmConfig,
    ) -> Vec<Box<dyn TruthMethod>> {
        let mut methods: Vec<Box<dyn TruthMethod>> = vec![
            Box::new(LtmIncMethod::for_truth(config, &data.dataset.truth)),
            Box::new(LtmMethod { config }),
            Box::new(baselines::ThreeEstimates::default()),
            Box::new(baselines::Voting),
            Box::new(baselines::TruthFinder::default()),
            Box::new(baselines::Investment::default()),
            Box::new(LtmPosMethod { config }),
            Box::new(baselines::HubAuthority::default()),
            Box::new(baselines::AvgLog::default()),
            Box::new(baselines::PooledInvestment::default()),
        ];
        // Keep the declared order stable for reports.
        debug_assert_eq!(methods.len(), 10);
        methods.shrink_to_fit();
        methods
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_suite_builds_and_names_are_unique() {
        let suite = Suite::fast();
        let cfg = suite.books_ltm_config();
        let methods = suite.methods_for(&suite.books, cfg);
        let mut names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 10);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "method names must be unique");
    }

    #[test]
    fn paper_configs_match_section_6() {
        let suite = Suite::fast();
        // Even in fast mode the schedule matches the paper.
        let cfg = suite.movies_ltm_config();
        assert_eq!(cfg.schedule.iterations, 100);
        assert_eq!(cfg.schedule.burn_in, 20);
        assert_eq!(cfg.schedule.sample_gap, 4);
    }
}
