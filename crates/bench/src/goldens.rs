//! Shared golden-accuracy computation for the regression suite.
//!
//! The workspace-root `golden_accuracy` test and `perf --emit-goldens`
//! both call [`compute_goldens`] on the same fixed-seed streams, so the
//! checked-in `tests/goldens/accuracy.json` can only drift when an
//! algorithm (or a generator) actually changes — never from harness
//! skew. Two streams cover the two regimes the paper evaluates:
//!
//! * `synthetic_boolean` — the §6.1 generative process (every source
//!   claims every fact, fully labeled);
//! * `books_conflict` — the planted-conflict book-author stream with its
//!   long-tail coverage and first-author-only false-negative structure,
//!   evaluated on the labeled subset only.
//!
//! Every method is scored with the paper's Table 7 measures (accuracy,
//! F1) at the 0.5 threshold plus AUC. The LTM fit runs one seeded chain,
//! so it is as reproducible as the closed-form baselines on a given
//! platform; [`tolerance`] still grants it a wider (but tiny) band to
//! absorb float reassociation across compiler versions.

use ltm_baselines::{all_baselines, TruthMethod};
use ltm_core::{LtmConfig, Priors, SampleSchedule};
use ltm_datagen::books::{self, BookConfig};
use ltm_datagen::synthetic::{self, SyntheticConfig};
use ltm_model::{ClaimDb, GroundTruth};
use serde::{Deserialize, Serialize};

use crate::adapters::LtmMethod;

/// One method's metrics on one stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenRecord {
    /// Stream name (`synthetic_boolean` | `books_conflict`).
    pub stream: String,
    /// Method display name (`LTM`, `Voting`, `3-Estimates`, …).
    pub method: String,
    /// Fraction of labeled facts classified correctly at threshold 0.5.
    pub accuracy: f64,
    /// Harmonic mean of precision and recall at threshold 0.5.
    pub f1: f64,
    /// Area under the ROC curve (tie-aware Mann–Whitney).
    pub auc: f64,
}

/// The `tests/goldens/accuracy.json` schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenReport {
    /// One record per (stream, method), streams in declaration order,
    /// LTM first then the Table 7 baselines in registry order.
    pub records: Vec<GoldenRecord>,
}

/// The fixed evaluation streams: `(name, claims, labels)`.
fn streams() -> Vec<(String, ClaimDb, GroundTruth)> {
    let synth = synthetic::generate(&SyntheticConfig {
        num_facts: 800,
        num_sources: 20,
        seed: 7,
        ..SyntheticConfig::default()
    });
    let books = books::generate(&BookConfig {
        num_books: 300,
        num_sources: 200,
        mean_sources_per_book: 12.0,
        labeled_entities: 60,
        seed: 2012,
    });
    vec![
        ("synthetic_boolean".to_owned(), synth.claims, synth.ground),
        (
            "books_conflict".to_owned(),
            books.dataset.claims.clone(),
            books.dataset.truth.clone(),
        ),
    ]
}

/// The seeded single-chain LTM configuration used for the goldens.
fn ltm_config(db: &ClaimDb) -> LtmConfig {
    LtmConfig {
        priors: Priors::scaled_specificity(db.num_facts()),
        schedule: SampleSchedule::new(60, 20, 1),
        seed: 42,
        ..LtmConfig::default()
    }
}

/// Fits LTM and every Table 7 baseline on both fixed streams and scores
/// them against the streams' labels.
pub fn compute_goldens() -> GoldenReport {
    let mut records = Vec::new();
    for (stream, db, truth) in streams() {
        let ltm = LtmMethod {
            config: ltm_config(&db),
        };
        let pred = ltm.infer(&db);
        records.push(record(&stream, "LTM", &truth, &pred));
        for method in all_baselines() {
            let pred = method.infer(&db);
            records.push(record(&stream, method.name(), &truth, &pred));
        }
    }
    GoldenReport { records }
}

fn record(
    stream: &str,
    method: &str,
    truth: &GroundTruth,
    pred: &ltm_model::TruthAssignment,
) -> GoldenRecord {
    let metrics = ltm_eval::evaluate(truth, pred, 0.5);
    GoldenRecord {
        stream: stream.to_owned(),
        method: method.to_owned(),
        accuracy: metrics.accuracy,
        f1: metrics.f1,
        auc: ltm_eval::auc(truth, pred),
    }
}

/// Per-method comparison tolerance for the regression test: the
/// closed-form baselines must reproduce to 1e-9; the seeded Gibbs chain
/// gets 1e-6 to absorb cross-compiler float reassociation.
pub fn tolerance(method: &str) -> f64 {
    if method.starts_with("LTM") {
        1e-6
    } else {
        1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goldens_cover_every_method_on_every_stream() {
        let report = compute_goldens();
        let methods = 1 + all_baselines().len();
        assert_eq!(report.records.len(), 2 * methods);
        for r in &report.records {
            assert!((0.0..=1.0).contains(&r.accuracy), "{r:?}");
            assert!((0.0..=1.0).contains(&r.f1), "{r:?}");
            assert!((0.0..=1.0).contains(&r.auc), "{r:?}");
        }
    }

    #[test]
    fn goldens_are_deterministic() {
        let a = compute_goldens();
        let b = compute_goldens();
        assert_eq!(a, b);
    }
}
