//! [`TruthMethod`] adapters for the LTM family, so the harness evaluates
//! LTM, LTMinc and LTMpos through the same interface as the baselines.

use ltm_baselines::TruthMethod;
use ltm_core::{IncrementalLtm, LtmConfig};
use ltm_model::{Claim, ClaimDb, EntityId, GroundTruth, TruthAssignment};

/// Full batch LTM (paper §5.2).
#[derive(Debug, Clone)]
pub struct LtmMethod {
    /// Sampler configuration (priors, schedule, seed).
    pub config: LtmConfig,
}

impl LtmMethod {
    /// LTM with priors scaled for `db` and the paper's default schedule.
    pub fn scaled_for(db: &ClaimDb) -> Self {
        Self {
            config: LtmConfig::scaled_for(db.num_facts()),
        }
    }
}

impl TruthMethod for LtmMethod {
    fn name(&self) -> &'static str {
        "LTM"
    }

    fn infer(&self, db: &ClaimDb) -> TruthAssignment {
        ltm_core::fit(db, &self.config).truth
    }
}

/// LTMpos — LTM run on positive claims only (paper §6.2).
#[derive(Debug, Clone)]
pub struct LtmPosMethod {
    /// Sampler configuration.
    pub config: LtmConfig,
}

impl TruthMethod for LtmPosMethod {
    fn name(&self) -> &'static str {
        "LTMpos"
    }

    fn infer(&self, db: &ClaimDb) -> TruthAssignment {
        ltm_core::positive_only::fit(db, &self.config).truth
    }
}

/// LTMinc — source quality is learned by batch LTM on all *unlabeled*
/// entities, then Equation 3 predicts every fact with no iteration
/// (paper §6.2: "run standard LTM on all the data except the 100 books or
/// movies with labeled truth, then apply the output source quality to
/// predict truth on the labeled data").
#[derive(Debug, Clone)]
pub struct LtmIncMethod {
    /// Sampler configuration for the quality-learning fit.
    pub config: LtmConfig,
    /// Entities excluded from training (the labeled evaluation subset).
    pub holdout: Vec<EntityId>,
}

impl LtmIncMethod {
    /// Builds the adapter from a dataset's evaluation labels.
    pub fn for_truth(config: LtmConfig, truth: &GroundTruth) -> Self {
        Self {
            config,
            holdout: truth.entities().collect(),
        }
    }
}

impl TruthMethod for LtmIncMethod {
    fn name(&self) -> &'static str {
        "LTMinc"
    }

    fn infer(&self, db: &ClaimDb) -> TruthAssignment {
        let training = without_entities(db, &self.holdout);
        let fit = ltm_core::fit(&training, &self.config);
        let predictor = IncrementalLtm::new(&fit.quality, &self.config.priors);
        predictor.predict(db)
    }
}

/// Returns a copy of `db` without the facts (and claims) of the given
/// entities. Fact ids are re-assigned; the source id space is preserved,
/// which is what allows quality learned on the subset to transfer.
pub fn without_entities(db: &ClaimDb, exclude: &[EntityId]) -> ClaimDb {
    let excluded: std::collections::HashSet<EntityId> = exclude.iter().copied().collect();
    let mut facts = Vec::new();
    let mut remap = vec![None; db.num_facts()];
    for f in db.fact_ids() {
        let fact = db.fact(f);
        if !excluded.contains(&fact.entity) {
            remap[f.index()] = Some(ltm_model::FactId::from_usize(facts.len()));
            facts.push(fact);
        }
    }
    let mut claims = Vec::new();
    for f in db.fact_ids() {
        if let Some(new_f) = remap[f.index()] {
            for (source, observation) in db.claims_of_fact(f) {
                claims.push(Claim {
                    fact: new_f,
                    source,
                    observation,
                });
            }
        }
    }
    ClaimDb::from_parts(facts, claims, db.num_sources())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_model::RawDatabaseBuilder;

    fn db() -> (ltm_model::RawDatabase, ClaimDb) {
        let mut b = RawDatabaseBuilder::new();
        b.add("A", "x", "s1");
        b.add("A", "y", "s2");
        b.add("B", "z", "s1");
        b.add("C", "w", "s2");
        let raw = b.build();
        let claims = ClaimDb::from_raw(&raw);
        (raw, claims)
    }

    #[test]
    fn without_entities_drops_their_facts() {
        let (raw, full) = db();
        let a = raw.entity_id("A").unwrap();
        let rest = without_entities(&full, &[a]);
        assert_eq!(rest.num_facts(), 2);
        assert_eq!(rest.num_sources(), full.num_sources());
        for f in rest.fact_ids() {
            assert_ne!(rest.fact(f).entity, a);
        }
    }

    #[test]
    fn without_entities_empty_exclusion_is_identity() {
        let (_, full) = db();
        let same = without_entities(&full, &[]);
        assert_eq!(same.num_facts(), full.num_facts());
        assert_eq!(same.num_claims(), full.num_claims());
    }

    #[test]
    fn ltm_adapter_runs() {
        let (_, full) = db();
        let m = LtmMethod::scaled_for(&full);
        let t = m.infer(&full);
        assert_eq!(t.len(), full.num_facts());
        assert_eq!(m.name(), "LTM");
    }

    #[test]
    fn ltminc_adapter_excludes_holdout_from_training() {
        let (raw, full) = db();
        let a = raw.entity_id("A").unwrap();
        let m = LtmIncMethod {
            config: LtmConfig::scaled_for(full.num_facts()),
            holdout: vec![a],
        };
        // Must still predict all facts of the full database.
        let t = m.infer(&full);
        assert_eq!(t.len(), full.num_facts());
    }

    #[test]
    fn ltmpos_adapter_runs() {
        let (_, full) = db();
        let m = LtmPosMethod {
            config: LtmConfig::scaled_for(full.num_facts()),
        };
        assert_eq!(m.infer(&full).len(), full.num_facts());
    }
}
