//! Experiment harness for the `latent-truth` workspace.
//!
//! The `repro` binary (in `src/bin/repro.rs`) regenerates every table and
//! figure of the paper's evaluation (Section 6); this library holds the
//! pieces:
//!
//! * [`adapters`] — [`ltm_baselines::TruthMethod`] implementations for the
//!   LTM family (LTM, LTMinc, LTMpos) so the harness treats all ten
//!   methods uniformly;
//! * [`suite`] — construction of the simulated book/movie datasets and
//!   entity-sampled subsets, with one shared set of seeds;
//! * [`experiments`] — one module per table/figure, each returning a
//!   serialisable result and a rendered text table;
//! * [`goldens`] — the fixed-seed golden-accuracy computation shared by
//!   the workspace regression test and `perf --emit-goldens`.
//!
//! Criterion micro-benchmarks live under `benches/`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adapters;
pub mod experiments;
pub mod goldens;
pub mod suite;

pub use adapters::{LtmIncMethod, LtmMethod, LtmPosMethod};
pub use goldens::{compute_goldens, GoldenRecord, GoldenReport};
pub use suite::Suite;
