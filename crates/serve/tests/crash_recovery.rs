//! Crash-recovery fault-injection harness for the WAL (`ltm serve
//! --wal-dir …`).
//!
//! The core test boots the real `ltm` binary, streams ingest batches at
//! it while a killer thread `SIGKILL`s the process at a randomized
//! offset, restarts it on the same WAL directory, and repeats — 20
//! rounds on one continuously-growing lineage. After every kill it
//! asserts the ack contract: every batch acked with HTTP 200 is present
//! after recovery, and the one in-flight batch either landed whole or
//! not at all (never partially). At the end, a control server that never
//! crashed ingests the exact accepted ledger and both servers must agree
//! bit-for-bit: store counts, source resolution, per-fact responses, and
//! Gibbs-refit query probabilities.
//!
//! Companion tests cover a torn final record (appended garbage must be
//! truncated at boot, never refuse to start), mid-log corruption (must
//! refuse to start, with a nonzero exit), and the injectable fault hook
//! (`/healthz` flips to 503 `degraded` while WAL writes fail).

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ltm_serve::http_call;
use serde::Value;

/// Deterministic splitmix64 — no rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ltm-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Extra flags every server in these tests shares: tiny segments (so
/// rotation + background compaction actually happen), auto-refits
/// disabled (so the crashed lineage and the control both take exactly
/// one forced full refit at daemon attempt 1 — same Gibbs seed, hence
/// bit-identical probabilities).
const COMMON_FLAGS: &[&str] = &[
    "--shards",
    "2",
    "--threads",
    "2",
    "--wal-sync",
    "always",
    "--wal-segment-bytes",
    "4096",
    "--refit-claims",
    "1000000000",
    "--refit-millis",
    "3600000",
];

struct ServerProc {
    child: Mutex<Child>,
    addr: String,
}

impl ServerProc {
    /// Boots `ltm serve --wal-dir <wal>` and waits for the port file.
    fn start(wal_dir: &Path, port_file: &Path) -> ServerProc {
        let _ = std::fs::remove_file(port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_ltm"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .arg("--wal-dir")
            .arg(wal_dir)
            .arg("--port-file")
            .arg(port_file)
            .args(COMMON_FLAGS)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn ltm serve");
        let deadline = Instant::now() + Duration::from_secs(60);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(port_file) {
                if text.contains(':') {
                    break text.trim().to_owned();
                }
            }
            assert!(
                Instant::now() < deadline,
                "server did not write its port file in time"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        ServerProc {
            child: Mutex::new(child),
            addr,
        }
    }

    /// SIGKILL + reap (the crash).
    fn kill(&self) {
        let mut child = self.child.lock().unwrap();
        let _ = child.kill();
        let _ = child.wait();
    }

    /// Graceful stop via `POST /admin/shutdown`, then reap.
    fn shutdown(&self) {
        let _ = http_call(&self.addr, "POST", "/admin/shutdown", Some(""));
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut child = self.child.lock().unwrap();
        loop {
            if child.try_wait().expect("try_wait").is_some() {
                return;
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                let _ = child.wait();
                panic!("server did not exit after /admin/shutdown");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Batch `b` of the ingest stream: 5 globally-unique triples over a
/// fixed pool of 8 sources. Uniqueness makes `positive_claims` equal the
/// number of accepted rows, which is how each round resolves whether the
/// in-flight batch landed.
fn batch_body(b: u64) -> String {
    let rows: Vec<String> = (0..5)
        .map(|i| format!("[\"e{b}-{i}\",\"a\",\"s{}\"]", (b * 5 + i) % 8))
        .collect();
    format!("{{\"triples\":[{}]}}", rows.join(","))
}

fn stat_u64(addr: &str, field: &str) -> u64 {
    let (status, body) = http_call(addr, "GET", "/stats", None).expect("GET /stats");
    assert_eq!(status, 200, "{body}");
    let parsed: Value = serde_json::from_str(&body).expect("stats json");
    parsed
        .get_field(field)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("no numeric `{field}` in {body}")) as u64
}

#[test]
fn acked_batches_survive_twenty_randomized_kills_and_match_a_control() {
    let root = temp_dir("kills");
    let wal_dir = root.join("wal");
    let port_file = root.join("port.txt");
    let mut rng = Rng(0x0001_775B_ADC0_FFEE);

    // The resolved ledger: batch ids that are durably accepted (acked,
    // or in-flight at the kill and found to have landed).
    let mut ledger: Vec<u64> = Vec::new();
    let mut next_batch = 0u64;

    let mut server = ServerProc::start(&wal_dir, &port_file);
    for round in 0..20 {
        let delay = Duration::from_millis(1 + rng.next() % 25);
        // Stream batches while the killer thread waits out its random
        // offset; the synchronous client means at most one batch is ever
        // unresolved per kill.
        let mut maybe: Option<u64> = None;
        std::thread::scope(|scope| {
            let server = &server;
            let killer = scope.spawn(move || {
                std::thread::sleep(delay);
                server.kill();
            });
            for _ in 0..40 {
                let b = next_batch;
                match http_call(&server.addr, "POST", "/claims", Some(&batch_body(b))) {
                    Ok((200, _)) => {
                        ledger.push(b);
                        next_batch += 1;
                    }
                    _ => {
                        // Refused, reset, or EOF: the server died before
                        // the ack. The batch may still have reached the
                        // log (killed between fsync and response).
                        maybe = Some(b);
                        break;
                    }
                }
            }
            killer.join().unwrap();
        });
        server.kill(); // no-op if the killer already got it

        // Restart on the same WAL directory and resolve the ack ledger.
        server = ServerProc::start(&wal_dir, &port_file);
        let recovered = stat_u64(&server.addr, "positive_claims");
        let acked = ledger.len() as u64 * 5;
        match maybe {
            Some(b) if recovered == acked + 5 => {
                // The in-flight batch landed whole; adopt it.
                ledger.push(b);
                next_batch = b + 1;
            }
            _ => {
                assert_eq!(
                    recovered,
                    acked,
                    "round {round}: recovery lost acked rows or kept a partial batch \
                     (ledger {} batches, in-flight {maybe:?})",
                    ledger.len()
                );
                if let Some(b) = maybe {
                    // Not durable: the client would retry it; our stream
                    // simply re-sends it next round.
                    next_batch = b;
                }
            }
        }
        assert!(
            stat_u64(&server.addr, "wal_replayed_rows") <= recovered,
            "replayed more rows than the store holds"
        );
    }
    assert!(
        !ledger.is_empty(),
        "no batch was ever acked across 20 rounds — the harness is broken"
    );

    // A never-crashed control ingests the exact resolved ledger.
    let control_wal = root.join("control-wal");
    let control = ServerProc::start(&control_wal, &root.join("control-port.txt"));
    for &b in &ledger {
        let (status, body) =
            http_call(&control.addr, "POST", "/claims", Some(&batch_body(b))).unwrap();
        assert_eq!(status, 200, "{body}");
    }

    // Same store shape on both sides.
    for field in ["positive_claims", "facts", "claims", "sources", "pending"] {
        assert_eq!(
            stat_u64(&server.addr, field),
            stat_u64(&control.addr, field),
            "`{field}` diverged from the control"
        );
    }

    // One forced full Gibbs refit each (both at daemon attempt 1 → same
    // seed → bit-identical quality), then compare answers.
    for s in [&server, &control] {
        let (status, _) = http_call(&s.addr, "POST", "/admin/refit?mode=full", Some("")).unwrap();
        assert_eq!(status, 202);
        let deadline = Instant::now() + Duration::from_secs(120);
        while stat_u64(&s.addr, "epochs_published") < 1 {
            assert!(Instant::now() < deadline, "refit never published an epoch");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    for source in 0..8 {
        let body = format!("{{\"claims\":[[\"s{source}\",true]]}}");
        let a = http_call(&server.addr, "POST", "/query", Some(&body)).unwrap();
        let b = http_call(&control.addr, "POST", "/query", Some(&body)).unwrap();
        assert_eq!(a, b, "query answer for s{source} diverged from the control");
    }
    for fact in [0u64, 1, 2] {
        let a = http_call(&server.addr, "GET", &format!("/facts/{fact}"), None).unwrap();
        let b = http_call(&control.addr, "GET", &format!("/facts/{fact}"), None).unwrap();
        assert_eq!(a, b, "fact {fact} diverged from the control");
    }

    server.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Newest WAL segment of the default domain.
fn newest_segment(wal_dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(wal_dir.join("default"))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segs.sort();
    segs.pop().expect("at least one WAL segment")
}

#[test]
fn torn_final_record_is_truncated_and_the_server_boots() {
    let root = temp_dir("torn");
    let wal_dir = root.join("wal");
    let port_file = root.join("port.txt");

    let server = ServerProc::start(&wal_dir, &port_file);
    for b in 0..4 {
        let (status, body) =
            http_call(&server.addr, "POST", "/claims", Some(&batch_body(b))).unwrap();
        assert_eq!(status, 200, "{body}");
    }
    server.kill();

    // A crash mid-append: a frame header promising 200 bytes with only a
    // few behind it, at the very end of the newest segment.
    let seg = newest_segment(&wal_dir);
    let mut file = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
    file.write_all(&[200, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3])
        .unwrap();
    drop(file);

    let server = ServerProc::start(&wal_dir, &port_file);
    assert_eq!(
        stat_u64(&server.addr, "positive_claims"),
        20,
        "every acked row must survive the torn tail"
    );
    let (status, body) = http_call(&server.addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");

    // The metrics surface is live immediately after replay and reports
    // the replayed rows through the same counters /stats reads.
    let (status, metrics) = http_call(&server.addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200, "{metrics}");
    assert!(
        metrics.contains("ltm_wal_replayed_rows_total{domain=\"default\"} 20"),
        "replay counter missing from the scrape:\n{metrics}"
    );

    // Explicit compaction folds the whole log into the snapshot and
    // frees the sealed segments.
    let (status, body) = http_call(&server.addr, "POST", "/admin/compact", Some("")).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"deleted_segments\""), "{body}");
    assert!(wal_dir.join("snapshot.json").exists());

    // And the compacted state still recovers after a clean stop.
    server.shutdown();
    let server = ServerProc::start(&wal_dir, &port_file);
    assert_eq!(stat_u64(&server.addr, "positive_claims"), 20);
    assert_eq!(
        stat_u64(&server.addr, "wal_replayed_rows"),
        0,
        "clean shutdown leaves no tail"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn mid_log_corruption_refuses_to_boot_with_a_nonzero_exit() {
    let root = temp_dir("corrupt");
    let wal_dir = root.join("wal");
    let port_file = root.join("port.txt");

    let server = ServerProc::start(&wal_dir, &port_file);
    for b in 0..3 {
        let (status, _) = http_call(&server.addr, "POST", "/claims", Some(&batch_body(b))).unwrap();
        assert_eq!(status, 200);
    }
    server.kill();

    // Flip a payload byte of the FIRST record — valid records follow, so
    // this is disk corruption, not a torn append.
    let seg = newest_segment(&wal_dir);
    let mut bytes = std::fs::read(&seg).unwrap();
    assert!(bytes.len() > 40, "expected several records in the segment");
    bytes[12] ^= 0xFF;
    std::fs::write(&seg, &bytes).unwrap();

    let _ = std::fs::remove_file(&port_file);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ltm"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .arg("--wal-dir")
        .arg(&wal_dir)
        .arg("--port-file")
        .arg(&port_file)
        .args(COMMON_FLAGS)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("server booted (or hung) on a corrupt mid-log record");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(!status.success(), "boot must fail on mid-log corruption");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(
        stderr.contains("corrupt WAL record"),
        "error should name the corruption, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unwritable_wal_dir_is_a_clean_startup_error() {
    let root = temp_dir("unwritable");
    let blocked = root.join("not-a-dir");
    std::fs::write(&blocked, "a file where a directory should be").unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_ltm"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .arg("--wal-dir")
        .arg(&blocked)
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("failed to start") && stderr.contains("--wal-dir"),
        "want a clean validation error, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn wal_write_failures_degrade_healthz_until_writes_recover() {
    use ltm_serve::server::{ServeConfig, Server};
    use ltm_serve::wal::{WalConfig, WalOp};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let root = temp_dir("degraded");
    let fail = Arc::new(AtomicBool::new(false));
    let hook_flag = Arc::clone(&fail);
    let mut wal = WalConfig::new(root.join("wal"));
    wal.fault_hook = Some(Arc::new(move |op| {
        (op == WalOp::Append && hook_flag.load(Ordering::Relaxed))
            .then(|| std::io::Error::other("injected disk failure"))
    }));
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        wal: Some(wal),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    let (status, _) = http_call(&addr, "POST", "/claims", Some(&batch_body(0))).unwrap();
    assert_eq!(status, 200);
    let (status, body) = http_call(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!((status, body.contains("\"ok\"")), (200, true), "{body}");

    fail.store(true, Ordering::Relaxed);
    let (status, body) = http_call(&addr, "POST", "/claims", Some(&batch_body(1))).unwrap();
    assert_eq!(status, 500, "a failed WAL append must not be acked: {body}");
    assert!(body.contains("NOT durable"), "{body}");
    let (status, body) = http_call(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("degraded"), "{body}");

    // Retrying while writes still fail dedupes in memory (accepted: 0),
    // but the rows are only in memory — the ack must still be refused
    // until they can be re-journaled.
    let (status, body) = http_call(&addr, "POST", "/claims", Some(&batch_body(1))).unwrap();
    assert_eq!(
        status, 500,
        "a duplicate-only retry must not be acked while its rows are un-journaled: {body}"
    );

    fail.store(false, Ordering::Relaxed);
    // The retry of the failed batch: all duplicates in memory, but the
    // ack path re-journals the queued frame first, so this 200 is honest.
    let (status, body) = http_call(&addr, "POST", "/claims", Some(&batch_body(1))).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"duplicates\":5"), "{body}");
    let (status, body) = http_call(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "recovered writes must clear the flag: {body}");
    let (status, _) = http_call(&addr, "POST", "/claims", Some(&batch_body(2))).unwrap();
    assert_eq!(status, 200);

    // The interesting step: restart on the same WAL. The re-journaled
    // frame means the log has no sequence gap — the server must boot
    // (not refuse with "WAL jumps to sequence") and hold every acked
    // row, including batch 1.
    server.shutdown().unwrap();
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        wal: Some(WalConfig::new(root.join("wal"))),
        ..ServeConfig::default()
    })
    .expect("the recovered WAL must boot");
    let addr = server.addr().to_string();
    assert_eq!(
        stat_u64(&addr, "positive_claims"),
        15,
        "batches 0, 1, and 2 must all survive the restart"
    );
    let (status, body) = http_call(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!((status, body.contains("\"ok\"")), (200, true), "{body}");

    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}
