//! The event-driven HTTP front end: one epoll readiness loop, a
//! connection table it exclusively owns, and a worker pool running the
//! request handlers off-loop.
//!
//! Replaces "one blocking reader thread per in-flight connection" with
//! "one loop watching every connection": the loop thread accepts,
//! reads, parses (`crate::http::parse_request`), and writes; complete
//! requests are dispatched to a [`WorkerPool`] so a slow handler (a
//! refit admin call, a big snapshot) never stalls readiness; finished
//! responses come back through a completion queue plus a socketpair
//! waker. Connection count is therefore decoupled from thread count —
//! the thread census is `1 (loop) + workers`, independent of how many
//! keep-alive peers are parked. See DESIGN.md §6 "Readiness-loop front
//! end".
//!
//! **Ordering.** HTTP/1.1 pipelining requires responses in request
//! order. The loop dispatches at most one in-flight request per
//! connection; further parsed requests queue in arrival order on the
//! connection and dispatch one by one as completions return. Responses
//! on one connection therefore serialize naturally — no sequence
//! numbers, no reordering buffer — while distinct connections still run
//! handlers in parallel.
//!
//! **Deadlines** (the slow-loris protections, ported from the blocking
//! front end): a *request deadline* bounds the time from a request's
//! first byte to its last (drip-feeding a header one byte at a time
//! trips it); an *idle deadline* reaps keep-alive connections with no
//! request in progress; a *write deadline* drops peers that stop
//! reading their response. All three derive from
//! [`crate::server::ServeConfig::io_timeout`].

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{parse_request, render_response, Parsed, Request, Response, WorkerPool};
use crate::obs::{Counter, Gauge};
use crate::sync::LockExt;

/// Whether this build target supports the event-loop front end.
pub const SUPPORTED: bool = cfg!(unix) && epoll::SUPPORTED;

/// Event-loop tuning handed down from [`crate::server::ServeConfig`].
pub(crate) struct EventLoopConfig {
    /// Worker threads executing request handlers.
    pub workers: usize,
    /// The request/idle/write deadline base; `None` disables all three.
    pub io_timeout: Option<Duration>,
    /// Whether to move the connection gauges/counters.
    pub metrics: bool,
    /// `ltm_open_connections` (tracks the connection table size).
    pub open_connections: Arc<Gauge>,
    /// `ltm_keepalive_reuse_total` (second and later requests parsed on
    /// one connection).
    pub keepalive_reuse: Arc<Counter>,
    /// Observes a request that never parsed (the front end answers 400
    /// or 413 and closes, or reaps on deadline) so hostile traffic
    /// still counts.
    pub observe_malformed: Arc<dyn Fn(u16) + Send + Sync>,
}

/// What the loop hands a worker: the connection token to route the
/// response back, the parsed request, and its `Connection` semantics.
pub(crate) struct Job {
    token: u64,
    request: Request,
    close_after: bool,
}

/// A rendered response travelling back from a worker to the loop.
type Completion = (u64, Vec<u8>, bool);

/// Handles one parsed request, returning the response to render.
pub(crate) type RequestHandler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Cap on parsed-but-undispatched requests per connection: a pipelining
/// peer can run at most this far ahead of its responses before the loop
/// stops reading its socket (backpressure via TCP).
const MAX_PIPELINE: usize = 64;

/// Per-wakeup read budget, so one fat pipe cannot starve its neighbours
/// (level-triggered epoll re-arms anything left unread).
const READ_BUDGET: usize = 16 * 4096;

/// The sweep cadence when deadlines are armed: epoll_wait never sleeps
/// past this, so reaping lags a deadline by at most one tick.
const SWEEP_MS: i32 = 100;

/// One connection's state, owned exclusively by the loop thread.
struct Conn {
    stream: TcpStream,
    /// Raw fd for epoll bookkeeping.
    fd: i32,
    /// Unparsed request bytes.
    inbuf: Vec<u8>,
    /// Rendered response bytes not yet fully written (from `outpos`).
    outbuf: Vec<u8>,
    outpos: usize,
    /// Parsed requests waiting their turn (pipelining).
    pending: VecDeque<(Request, bool)>,
    /// Whether a request from this connection is at a worker.
    in_flight: bool,
    /// Stop reading; close once `outbuf` drains.
    close_after_write: bool,
    /// The peer's read side is done (EOF): serve what's owed, then close.
    peer_closed: bool,
    /// Armed while `inbuf` holds a partial request: the moment the
    /// current request must be complete by.
    request_deadline: Option<Instant>,
    /// Last moment this connection went completely quiet (idle reaping).
    idle_since: Instant,
    /// First moment the current unwritten response bytes stalled
    /// (write reaping); cleared on progress.
    write_since: Option<Instant>,
    /// Requests parsed on this connection (keep-alive reuse counting).
    requests_parsed: u64,
    /// The epoll interest currently registered, to skip no-op rearms.
    interest: u32,
}

impl Conn {
    /// The epoll interest this connection's state wants right now.
    fn wanted_interest(&self) -> u32 {
        let mut events = epoll::events::EPOLLRDHUP;
        if !self.close_after_write && !self.peer_closed && self.pending.len() < MAX_PIPELINE {
            events |= epoll::events::EPOLLIN;
        }
        if self.outpos < self.outbuf.len() {
            events |= epoll::events::EPOLLOUT;
        }
        events
    }

    /// Whether the connection is completely quiet (idle-reap candidate).
    fn is_idle(&self) -> bool {
        self.inbuf.is_empty()
            && self.pending.is_empty()
            && !self.in_flight
            && self.outpos >= self.outbuf.len()
    }
}

/// A running event-loop front end.
pub(crate) struct EventLoop {
    join: Option<JoinHandle<()>>,
    pool: Option<WorkerPool<Job>>,
    waker: Arc<std::os::unix::net::UnixStream>,
    stop: Arc<AtomicBool>,
}

impl EventLoop {
    /// Registers `listener` with a fresh epoll instance and spawns the
    /// loop thread plus `cfg.workers` handler workers.
    pub(crate) fn start(
        listener: TcpListener,
        handler: RequestHandler,
        cfg: EventLoopConfig,
    ) -> io::Result<EventLoop> {
        use std::os::fd::AsRawFd;
        listener.set_nonblocking(true)?;
        let (waker_rx, waker_tx) = std::os::unix::net::UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        let waker_tx = Arc::new(waker_tx);
        let stop = Arc::new(AtomicBool::new(false));

        let epfd = epoll::create(true)?;
        let register = |fd: i32, token: u64| {
            epoll::ctl(
                epfd,
                epoll::ControlOptions::EpollCtlAdd,
                fd,
                epoll::Event::new(epoll::events::EPOLLIN, token),
            )
        };
        if let Err(e) = register(listener.as_raw_fd(), LISTENER_TOKEN)
            .and_then(|()| register(waker_rx.as_raw_fd(), WAKER_TOKEN))
        {
            let _ = epoll::close(epfd);
            return Err(e);
        }

        // Completed responses flow loop-ward through this queue; the
        // waker socketpair kicks the loop out of epoll_wait to drain it.
        let completions: Arc<Mutex<VecDeque<Completion>>> = Arc::new(Mutex::new(VecDeque::new()));
        let worker_completions = Arc::clone(&completions);
        let worker_waker = Arc::clone(&waker_tx);
        let worker: Arc<dyn Fn(Job) + Send + Sync> = Arc::new(move |job: Job| {
            let response = handler(&job.request);
            let keep_alive = !job.close_after;
            let bytes = render_response(
                response.status,
                response.content_type,
                &response.body,
                keep_alive,
            );
            worker_completions
                .locked()
                .push_back((job.token, bytes, job.close_after));
            // A full pipe means the loop is already awake (wakeups
            // coalesce), so WouldBlock is success here.
            let _ = (&*worker_waker).write(&[1u8]);
        });
        let pool = WorkerPool::new(cfg.workers, "ltm-handler", worker);
        let jobs = pool.sender_clone();

        let loop_stop = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("ltm-event-loop".into())
            .spawn(move || {
                let mut state = LoopState {
                    epfd,
                    listener,
                    waker_rx,
                    conns: HashMap::new(),
                    next_token: FIRST_CONN_TOKEN,
                    completions,
                    jobs,
                    cfg,
                };
                state.run(&loop_stop);
                // The connection table drops here (closing every
                // socket); registrations die with the epoll fd.
                let _ = epoll::close(epfd);
            })
            // analyzer: allow(panic-expect) -- boot-time spawn; fails only on OS thread exhaustion, before the server serves
            .expect("spawn event loop thread");

        Ok(EventLoop {
            join: Some(join),
            pool: Some(pool),
            waker: waker_tx,
            stop,
        })
    }

    /// Stops the loop and joins it and every worker.
    pub(crate) fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = (&*self.waker).write(&[1u8]);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

/// Everything the loop thread owns.
struct LoopState {
    epfd: i32,
    listener: TcpListener,
    waker_rx: std::os::unix::net::UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    jobs: Option<mpsc::Sender<Job>>,
    cfg: EventLoopConfig,
}

impl LoopState {
    fn run(&mut self, stop: &AtomicBool) {
        let mut events = [epoll::Event::new(0, 0); 128];
        while !stop.load(Ordering::SeqCst) {
            let timeout = self.wait_timeout_ms();
            let n = match epoll::wait(self.epfd, timeout, &mut events) {
                Ok(n) => n,
                Err(e) => {
                    crate::log_error!("http", "epoll_wait failed: {e}; front end stops");
                    break;
                }
            };
            for ev in events.iter().take(n) {
                match ev.data() {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.drain_waker(),
                    token => self.conn_ready(token, ev.events()),
                }
            }
            self.drain_completions();
            self.reap_deadlines();
        }
    }

    /// How long epoll_wait may sleep: forever when no deadline can
    /// expire, else until the next sweep tick.
    fn wait_timeout_ms(&self) -> i32 {
        if self.cfg.io_timeout.is_some() && !self.conns.is_empty() {
            SWEEP_MS
        } else {
            -1
        }
    }

    // -- accept / close / interest ------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if let Err(e) = self.add_conn(stream) {
                        crate::log_warn!("http", "cannot register connection: {e}");
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient accept errors (EMFILE, ECONNABORTED):
                    // log and retry on the next readiness wakeup.
                    crate::log_warn!("http", "accept failed: {e}");
                    break;
                }
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let fd = stream.as_raw_fd();
        let token = self.next_token;
        self.next_token += 1;
        let interest = epoll::events::EPOLLIN | epoll::events::EPOLLRDHUP;
        epoll::ctl(
            self.epfd,
            epoll::ControlOptions::EpollCtlAdd,
            fd,
            epoll::Event::new(interest, token),
        )?;
        self.conns.insert(
            token,
            Conn {
                stream,
                fd,
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                outpos: 0,
                pending: VecDeque::new(),
                in_flight: false,
                close_after_write: false,
                peer_closed: false,
                request_deadline: None,
                idle_since: Instant::now(),
                write_since: None,
                requests_parsed: 0,
                interest,
            },
        );
        if self.cfg.metrics {
            self.cfg.open_connections.inc();
        }
        Ok(())
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = epoll::ctl(
                self.epfd,
                epoll::ControlOptions::EpollCtlDel,
                conn.fd,
                epoll::Event::new(0, 0),
            );
            if self.cfg.metrics {
                self.cfg.open_connections.dec();
            }
            // conn.stream drops here, closing the socket.
        }
    }

    /// Re-registers a connection's epoll interest if its wanted set
    /// changed since the last registration.
    fn rearm(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let wanted = conn.wanted_interest();
        if wanted == conn.interest {
            return;
        }
        conn.interest = wanted;
        let _ = epoll::ctl(
            self.epfd,
            epoll::ControlOptions::EpollCtlMod,
            conn.fd,
            epoll::Event::new(wanted, token),
        );
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match (&self.waker_rx).read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: fully drained
            }
        }
    }

    // -- per-connection readiness -------------------------------------

    fn conn_ready(&mut self, token: u64, events: u32) {
        if events & (epoll::events::EPOLLERR | epoll::events::EPOLLHUP) != 0 {
            self.close_conn(token);
            return;
        }
        if events & epoll::events::EPOLLOUT != 0 && !self.write_ready(token) {
            return; // connection closed
        }
        if events & (epoll::events::EPOLLIN | epoll::events::EPOLLRDHUP) != 0 {
            self.read_ready(token);
        } else {
            self.rearm(token);
        }
    }

    /// Reads whatever the socket has (within the fairness budget), then
    /// parses, dispatches, flushes, and rearms.
    fn read_ready(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; 4096];
        let mut total = 0usize;
        let mut peer_closed = conn.peer_closed;
        while !peer_closed && total < READ_BUDGET && conn.pending.len() < MAX_PIPELINE {
            match conn.stream.read(&mut chunk) {
                Ok(0) => peer_closed = true,
                Ok(n) => {
                    total += n;
                    // analyzer: allow(panic-index) -- read() returns n <= chunk.len()
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => peer_closed = true,
            }
        }
        conn.peer_closed = peer_closed;
        self.parse_and_dispatch(token);
        self.flush_then_maybe_close(token);
    }

    /// Parses as many complete requests out of the in-buffer as the
    /// pipeline cap allows, then dispatches the next queued request if
    /// none is in flight. Called after reads and after completions (a
    /// drained pipeline may leave parseable bytes behind with no further
    /// readiness event to trigger parsing).
    fn parse_and_dispatch(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.close_after_write {
            conn.inbuf.clear();
        }
        let now = Instant::now();
        let mut parse_failure: Option<u16> = None;
        while !conn.close_after_write && conn.pending.len() < MAX_PIPELINE {
            match parse_request(&conn.inbuf) {
                Ok(Parsed::Complete {
                    request,
                    consumed,
                    close_after,
                }) => {
                    conn.inbuf.drain(..consumed);
                    conn.requests_parsed += 1;
                    if conn.requests_parsed > 1 && self.cfg.metrics {
                        self.cfg.keepalive_reuse.inc();
                    }
                    conn.request_deadline = None;
                    conn.pending.push_back((request, close_after));
                    if close_after {
                        conn.inbuf.clear();
                        break;
                    }
                }
                Ok(Parsed::Partial) => {
                    if conn.inbuf.is_empty() || conn.peer_closed {
                        // Nothing buffered, or a trailing fragment that
                        // can never complete (the peer is done sending).
                        conn.inbuf.clear();
                        conn.request_deadline = None;
                    } else if conn.request_deadline.is_none() {
                        // The current request's clock starts at its
                        // first byte.
                        conn.request_deadline = self.cfg.io_timeout.map(|t| now + t);
                    }
                    break;
                }
                Err(e) => {
                    // Answer the rejection and close; everything the
                    // peer queued behind it is void.
                    let status = e.status();
                    let body = format!("{{\"error\":\"{}\"}}", e.message());
                    conn.outbuf.extend_from_slice(&render_response(
                        status,
                        "application/json",
                        &body,
                        false,
                    ));
                    conn.close_after_write = true;
                    conn.inbuf.clear();
                    conn.pending.clear();
                    conn.request_deadline = None;
                    parse_failure = Some(status);
                    break;
                }
            }
        }
        let next = if conn.in_flight {
            None
        } else {
            conn.pending.pop_front()
        };
        if let Some((request, close_after)) = next {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.in_flight = true;
            }
            self.dispatch(token, request, close_after);
        }
        if let Some(status) = parse_failure {
            (self.cfg.observe_malformed)(status);
        }
    }

    /// Writes as much of the out-buffer as the socket accepts. Returns
    /// `false` if the connection was closed.
    fn write_ready(&mut self, token: u64) -> bool {
        let now = Instant::now();
        let mut should_close = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            loop {
                if conn.outpos >= conn.outbuf.len() {
                    conn.outbuf.clear();
                    conn.outpos = 0;
                    conn.write_since = None;
                    if conn.is_idle() {
                        conn.idle_since = now;
                        // Everything owed is delivered: close if either
                        // side asked for it.
                        if conn.close_after_write || (conn.peer_closed && conn.inbuf.is_empty()) {
                            should_close = true;
                        }
                    }
                    break;
                }
                // analyzer: allow(panic-index) -- outpos < outbuf.len() was checked above
                match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                    Ok(0) => {
                        should_close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.outpos += n;
                        conn.write_since = Some(now);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // Stalled: the write deadline starts at the first
                        // unwritten byte and resets on progress.
                        if conn.write_since.is_none() {
                            conn.write_since = Some(now);
                        }
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        should_close = true;
                        break;
                    }
                }
            }
        }
        if should_close {
            self.close_conn(token);
            return false;
        }
        true
    }

    /// An optimistic write after state changes (small responses go out
    /// without waiting a readiness round), then an interest rearm.
    fn flush_then_maybe_close(&mut self, token: u64) {
        if self.write_ready(token) {
            self.rearm(token);
        }
    }

    fn dispatch(&self, token: u64, request: Request, close_after: bool) {
        if let Some(jobs) = &self.jobs {
            // A send error means the pool is shutting down; the
            // connection is torn down with the loop moments later.
            let _ = jobs.send(Job {
                token,
                request,
                close_after,
            });
        }
    }

    /// Moves completed responses from the workers into their
    /// connections' write buffers, then lets each connection parse /
    /// dispatch its next pipelined request.
    fn drain_completions(&mut self) {
        loop {
            let completion = self.completions.locked().pop_front();
            let Some((token, bytes, close_after)) = completion else {
                break;
            };
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // connection reaped while the worker ran
            };
            conn.in_flight = false;
            conn.outbuf.extend_from_slice(&bytes);
            if close_after {
                conn.close_after_write = true;
                conn.pending.clear();
                conn.inbuf.clear();
            }
            self.parse_and_dispatch(token);
            self.flush_then_maybe_close(token);
        }
    }

    /// Enforces the three deadlines. Runs every sweep tick.
    fn reap_deadlines(&mut self) {
        let Some(io_timeout) = self.cfg.io_timeout else {
            return;
        };
        let now = Instant::now();
        let mut doomed: Vec<(u64, bool)> = Vec::new();
        for (&token, conn) in &self.conns {
            // Request deadline: a partial request outstayed its budget
            // (slow-loris drip-feed).
            if conn.request_deadline.is_some_and(|d| now >= d) {
                doomed.push((token, true));
                continue;
            }
            // Write deadline: the peer stopped reading its response.
            if conn.outpos < conn.outbuf.len()
                && conn
                    .write_since
                    .is_some_and(|since| now.saturating_duration_since(since) >= io_timeout)
            {
                doomed.push((token, false));
                continue;
            }
            // Idle deadline: a keep-alive connection with nothing going
            // on. Same budget as the request deadline.
            if conn.is_idle() && now.saturating_duration_since(conn.idle_since) >= io_timeout {
                doomed.push((token, false));
            }
        }
        for (token, timed_out_mid_request) in doomed {
            if timed_out_mid_request {
                (self.cfg.observe_malformed)(408);
            }
            self.close_conn(token);
        }
    }
}
