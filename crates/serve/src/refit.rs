//! The background refit daemon.
//!
//! A worker thread wakes when enough triples have accumulated (or a
//! forced trigger arrives) and folds the store into a **long-lived**
//! [`StreamingLtm`] accumulator shared across epochs (held in
//! [`RefitState`]). Two modes exist, exactly the paper's §5.4 split:
//!
//! * **Incremental** (the default): [`ShardedStore::shard_databases_since`]
//!   extracts only the facts dirtied since the fold watermark — including
//!   facts whose Definition-3 negative rows changed retroactively — and
//!   the fold costs `O(Δ)` Gibbs work, with shard locks held only to copy
//!   the dirty facts. Re-touched facts contribute their current rows
//!   *again* on top of their earlier contribution, so the accumulator
//!   drifts slowly toward over-weighting hot facts.
//! * **Full** (reconciliation): the accumulator is rebuilt from zero over
//!   every shard's complete CSR, discarding the drift. The daemon runs a
//!   full pass every [`RefitConfig::full_refit_every`] attempts, and
//!   `POST /admin/refit?mode=full` forces one.
//!
//! Each batch's fit is seeded with the quality priors accumulated so far
//! (shards/deltas as batches). The resulting cumulative quality becomes a
//! candidate [`EpochSnapshot`].
//!
//! **R̂-gated promotion**: the candidate is published only if its worst
//! per-fact Gelman–Rubin `R̂` (non-finite values read as `+∞`, never
//! silently dropped) is below the configured gate *or* no worse than the
//! currently served epoch's (an improvement is never rejected). A
//! rejected refit is counted and logged, but its fold *is* committed to
//! the accumulator and the store's pending counter is consumed — the data
//! was folded; only the promotion was vetoed — so a deterministic
//! non-converging fit cannot re-trigger in a hot loop. A **failed** fold
//! commits nothing and backs off exponentially instead of retrying every
//! interval.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ltm_core::positive_only::positive_only_view;
use ltm_core::{
    worst_rhat, IncrementalLtm, LtmConfig, RealLtmConfig, SampleSchedule, StreamError,
    StreamingLtm, StreamingRealLtm,
};

use crate::epoch::{EpochPredictor, EpochSnapshot};
use crate::model::{ModelKind, ServePredictor};
use crate::store::ShardedStore;
use crate::sync::LockExt;

/// Refit daemon configuration (shared by every domain of a server; the
/// per-domain [`ModelKind`] selects which model configuration applies).
#[derive(Debug, Clone)]
pub struct RefitConfig {
    /// Base boolean model configuration (priors, schedule, seed, kernel)
    /// — used by boolean and positive-only domains.
    pub ltm: LtmConfig,
    /// Real-valued model configuration (NIG priors, `β`, schedule) —
    /// used by real-valued domains. Its `seed` field is overridden by the
    /// same per-attempt bump as `ltm.seed`.
    pub real: RealLtmConfig,
    /// Parallel Gibbs chains per shard fit (≥ 2 for meaningful `R̂`).
    pub chains: usize,
    /// Promotion gate: reject a refit whose worst `R̂` exceeds this and
    /// regresses the served epoch.
    pub rhat_gate: f64,
    /// Accepted triples that arm an automatic refit.
    pub min_pending: usize,
    /// How often the daemon checks the trigger condition.
    pub interval: Duration,
    /// Every Nth daemon refit runs in full (reconciliation) mode,
    /// rebuilding the accumulator from zero to shed incremental drift.
    /// `0` disables automatic full refits (manual `mode=full` triggers
    /// still work).
    pub full_refit_every: u64,
    /// Cap on the exponential backoff applied after consecutive refit
    /// failures (the delay doubles from `interval` up to this).
    pub max_backoff: Duration,
    /// Fit the shadow baseline predictors on every published boolean or
    /// positive-only refit (see [`crate::shadow`]). Disabling skips the
    /// baseline fits entirely; `?methods=` queries beyond `ltm` then
    /// answer 409.
    pub shadows: bool,
}

impl Default for RefitConfig {
    fn default() -> Self {
        Self {
            ltm: LtmConfig {
                schedule: SampleSchedule::new(100, 20, 1),
                ..LtmConfig::default()
            },
            real: RealLtmConfig {
                iterations: 100,
                burn_in: 20,
                ..RealLtmConfig::default()
            },
            chains: 2,
            rhat_gate: 1.2,
            min_pending: 1,
            interval: Duration::from_millis(200),
            full_refit_every: 8,
            max_backoff: Duration::from_secs(60),
            shadows: true,
        }
    }
}

/// Which extraction a refit pass folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitMode {
    /// Fold only the facts dirtied since the fold watermark into the
    /// long-lived accumulator.
    Incremental,
    /// Rebuild the accumulator from zero over the whole store.
    Full,
}

impl std::fmt::Display for RefitMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefitMode::Incremental => write!(f, "incremental"),
            RefitMode::Full => write!(f, "full"),
        }
    }
}

/// Counter snapshot for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RefitCounters {
    /// Incremental refits that completed a fold (published or rejected).
    pub refits_incremental: u64,
    /// Full refits that completed a fold.
    pub refits_full: u64,
    /// Refit attempts whose fold failed (nothing committed).
    pub refits_failed: u64,
    /// Wall seconds of the most recent completed incremental fold.
    pub last_incremental_secs: f64,
    /// Wall seconds of the most recent completed full fold.
    pub last_full_secs: f64,
    /// Accepted rows covered by the accumulator.
    pub watermark: u64,
}

/// The accumulator state shared between a domain's refit daemon, its
/// `/stats` section, and snapshot capture/restore: one long-lived
/// streaming trainer whose accumulator spans every fold since the last
/// full refit, plus the fold watermark and mode counters. The trainer is
/// a [`StreamingLtm`] for boolean/positive-only domains and a
/// [`StreamingRealLtm`] for real-valued ones (at most one of the two is
/// ever populated — the owning domain's kind decides which). Always used
/// behind a `Mutex`; refit passes additionally serialise on the refit
/// lock, so the mutex is only ever held for short copies, never across a
/// fit.
#[derive(Debug, Default)]
pub struct RefitState {
    streaming: Option<StreamingLtm>,
    streaming_real: Option<StreamingRealLtm>,
    counters: RefitCounters,
    /// Phase-span metric handles attached by the server (absent in bare
    /// tests, where refits record nothing).
    obs: Option<RefitObs>,
    /// Per-method shadow-fit latency handles attached by the server
    /// (absent in bare tests).
    shadow_obs: Option<crate::shadow::ShadowObs>,
}

/// Refit phase-span metric handles: one histogram per phase of a refit
/// pass, labeled `phase=` and `domain=` and rendered as
/// `ltm_refit_phase_duration_seconds`.
#[derive(Debug, Clone)]
pub struct RefitObs {
    /// Delta extraction (`phase="extract"`): assembling the batches
    /// dirtied since the fold watermark.
    pub extract_seconds: Arc<crate::obs::Histogram>,
    /// The Gibbs fold (`phase="fold"`): multi-chain
    /// `try_observe_chains` over the delta, including per-batch R̂
    /// computation.
    pub fold_seconds: Arc<crate::obs::Histogram>,
    /// The promotion-gate decision (`phase="rhat"`): loading the served
    /// epoch and comparing diagnostics against the gate.
    pub rhat_seconds: Arc<crate::obs::Histogram>,
    /// Publish/reject plus accumulator commit (`phase="promote"`).
    pub promote_seconds: Arc<crate::obs::Histogram>,
}

impl RefitObs {
    /// Registers (or re-fetches) the refit phase metric family for
    /// `domain`.
    pub fn for_domain(registry: &crate::obs::Registry, domain: &str) -> Self {
        let phase = |name: &str| {
            registry.histogram(
                "ltm_refit_phase_duration_seconds",
                &[("phase", name), ("domain", domain)],
                crate::obs::Unit::Micros,
            )
        };
        RefitObs {
            extract_seconds: phase("extract"),
            fold_seconds: phase("fold"),
            rhat_seconds: phase("rhat"),
            promote_seconds: phase("promote"),
        }
    }
}

impl RefitState {
    /// Empty state: no accumulator, watermark zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The long-lived cumulative boolean trainer, if any fold has
    /// committed in a boolean or positive-only domain.
    pub fn streaming(&self) -> Option<&StreamingLtm> {
        self.streaming.as_ref()
    }

    /// The long-lived cumulative real-valued trainer, if any fold has
    /// committed in a real-valued domain.
    pub fn streaming_real(&self) -> Option<&StreamingRealLtm> {
        self.streaming_real.as_ref()
    }

    /// Accepted rows covered by the accumulator.
    pub fn watermark(&self) -> u64 {
        self.counters.watermark
    }

    /// Installs a restored boolean accumulator (the snapshot boot path),
    /// so the first post-restart refit folds only the unfolded tail
    /// instead of cold-refitting the whole store.
    pub fn restore(&mut self, streaming: StreamingLtm, watermark: u64) {
        self.streaming = Some(streaming);
        self.counters.watermark = watermark;
    }

    /// Installs a restored real-valued accumulator (see
    /// [`RefitState::restore`]).
    pub fn restore_real(&mut self, streaming: StreamingRealLtm, watermark: u64) {
        self.streaming_real = Some(streaming);
        self.counters.watermark = watermark;
    }

    /// Counter snapshot for `/stats`.
    pub fn counters(&self) -> RefitCounters {
        self.counters
    }

    /// Attaches phase-span metric handles (the server's boot path; a
    /// state without them records nothing).
    pub fn set_obs(&mut self, obs: RefitObs) {
        self.obs = Some(obs);
    }

    /// Attaches shadow-fit metric handles (the server's boot path; a
    /// state without them records nothing).
    pub fn set_shadow_obs(&mut self, obs: crate::shadow::ShadowObs) {
        self.shadow_obs = Some(obs);
    }
}

/// What one refit attempt did.
#[derive(Debug, Clone, PartialEq)]
pub enum RefitOutcome {
    /// A new epoch was published.
    Published {
        /// The new epoch number.
        epoch: u64,
        /// Worst per-fact `R̂` of the refit.
        max_rhat: f64,
        /// Which extraction was folded.
        mode: RefitMode,
        /// Claims contained in the folded batches.
        delta_claims: usize,
    },
    /// Diagnostics regressed past the gate; the served epoch is unchanged
    /// (the fold itself is still committed to the accumulator).
    Rejected {
        /// Worst per-fact `R̂` of the rejected refit.
        max_rhat: f64,
        /// The gate it failed.
        gate: f64,
        /// Which extraction was folded.
        mode: RefitMode,
    },
    /// Nothing to fold: the store held no claims, or no fact was dirtied
    /// since the watermark.
    Empty,
    /// A batch could not be folded (id-space drift); nothing was
    /// committed and pending was left armed — callers must back off.
    Failed(StreamError),
}

/// One completed (kind-specific) fold, ready for the promotion decision
/// and the accumulator commit.
struct Folded {
    /// The accumulator to commit on success.
    acc: FoldedAcc,
    /// The candidate epoch (epoch number overwritten by publish).
    candidate: EpochSnapshot,
    /// Watermark the fold covered.
    watermark: u64,
    /// Claims in the folded batches.
    delta_claims: usize,
}

enum FoldedAcc {
    Boolean(StreamingLtm),
    Real(StreamingRealLtm),
}

/// Outcome of the kind-specific extraction + fold step.
enum FoldStep {
    /// Nothing dirty since the watermark (which is still advanced).
    Empty {
        watermark: u64,
    },
    Done(Box<Folded>),
    Failed(StreamError),
}

/// Extraction + fold for boolean and positive-only domains. Positive-only
/// differs in exactly one step: each batch is filtered through
/// [`positive_only_view`] before it is fitted and folded (paper §6.2 —
/// the model never trains on negative claims).
fn fold_boolean(
    store: &ShardedStore,
    kind: ModelKind,
    config: &RefitConfig,
    state: &Mutex<RefitState>,
    seed: u64,
    mode: RefitMode,
) -> FoldStep {
    let ltm = LtmConfig { seed, ..config.ltm };
    let obs = state.locked().obs.clone();
    let extract_started = Instant::now();
    let (mut streaming, delta) = match mode {
        RefitMode::Full => (StreamingLtm::new(ltm), store.full_databases()),
        RefitMode::Incremental => {
            let st = state.locked();
            let mut streaming = st
                .streaming
                .clone()
                .unwrap_or_else(|| StreamingLtm::new(ltm));
            // The clone keeps the config it was created with; re-seed it
            // so the bump reaches steady-state incremental attempts too.
            streaming.set_seed(ltm.seed);
            let watermark = st.counters.watermark;
            drop(st);
            (streaming, store.shard_databases_since(watermark))
        }
    };
    if let Some(o) = &obs {
        o.extract_seconds.record_duration(extract_started.elapsed());
    }
    if delta.batches.is_empty() {
        return FoldStep::Empty {
            watermark: delta.watermark,
        };
    }

    let fold_started = Instant::now();
    let mut max_rhat: f64 = 1.0;
    let mut converged_weighted = 0.0;
    let mut facts_total = 0usize;
    for db in &delta.batches {
        let view;
        let batch = if kind == ModelKind::PositiveOnly {
            view = positive_only_view(db);
            &view
        } else {
            db
        };
        match streaming.try_observe_chains(batch, config.chains) {
            Ok(multi) => {
                max_rhat = worst_rhat(&[max_rhat, multi.diagnostics.max_rhat]);
                converged_weighted +=
                    multi.diagnostics.converged_fraction * batch.num_facts() as f64;
                facts_total += batch.num_facts();
            }
            Err(e) => return FoldStep::Failed(e),
        }
    }
    if let Some(o) = &obs {
        o.fold_seconds.record_duration(fold_started.elapsed());
    }

    let quality = streaming.quality();
    let candidate = EpochSnapshot {
        epoch: 0, // overwritten by publish()
        predictor: ServePredictor::Boolean(IncrementalLtm::new(&quality, &streaming.base_priors())),
        max_rhat,
        converged_fraction: if facts_total == 0 {
            1.0
        } else {
            converged_weighted / facts_total as f64
        },
        trained_claims: delta.total_claims,
        trained_sources: quality.num_sources(),
        shadow: None, // attached by refit_once iff the candidate promotes
    };
    FoldStep::Done(Box::new(Folded {
        acc: FoldedAcc::Boolean(streaming),
        candidate,
        watermark: delta.watermark,
        delta_claims: delta.delta_claims,
    }))
}

/// Extraction + fold for real-valued domains, over [`RealClaimDb`]
/// batches and the [`StreamingRealLtm`] accumulator.
fn fold_real(
    store: &ShardedStore,
    config: &RefitConfig,
    state: &Mutex<RefitState>,
    seed: u64,
    mode: RefitMode,
) -> FoldStep {
    let real = RealLtmConfig {
        seed,
        ..config.real
    };
    let obs = state.locked().obs.clone();
    let extract_started = Instant::now();
    let (mut streaming, delta) = match mode {
        RefitMode::Full => (StreamingRealLtm::new(real), store.full_real_databases()),
        RefitMode::Incremental => {
            let st = state.locked();
            let mut streaming = st
                .streaming_real
                .clone()
                .unwrap_or_else(|| StreamingRealLtm::new(real));
            streaming.set_seed(real.seed);
            let watermark = st.counters.watermark;
            drop(st);
            (streaming, store.real_databases_since(watermark))
        }
    };
    if let Some(o) = &obs {
        o.extract_seconds.record_duration(extract_started.elapsed());
    }
    if delta.batches.is_empty() {
        return FoldStep::Empty {
            watermark: delta.watermark,
        };
    }

    let fold_started = Instant::now();
    let mut max_rhat: f64 = 1.0;
    let mut converged_weighted = 0.0;
    let mut facts_total = 0usize;
    for db in &delta.batches {
        match streaming.try_observe_chains(db, config.chains) {
            Ok(multi) => {
                max_rhat = worst_rhat(&[max_rhat, multi.max_rhat]);
                converged_weighted += multi.converged_fraction * db.num_facts() as f64;
                facts_total += db.num_facts();
            }
            Err(e) => return FoldStep::Failed(e),
        }
    }
    if let Some(o) = &obs {
        o.fold_seconds.record_duration(fold_started.elapsed());
    }

    let candidate = EpochSnapshot {
        epoch: 0, // overwritten by publish()
        predictor: ServePredictor::Real(streaming.predictor()),
        max_rhat,
        converged_fraction: if facts_total == 0 {
            1.0
        } else {
            converged_weighted / facts_total as f64
        },
        trained_claims: delta.total_claims,
        trained_sources: streaming.accumulated().num_sources(),
        shadow: None, // real-valued domains have no boolean shadow fits
    };
    FoldStep::Done(Box::new(Folded {
        acc: FoldedAcc::Real(streaming),
        candidate,
        watermark: delta.watermark,
        delta_claims: delta.delta_claims,
    }))
}

/// Runs one refit over the store and (maybe) publishes an epoch.
///
/// `kind` selects the extraction, accumulator, and candidate-predictor
/// variant (see the kind table in [`crate::model`]). `refit_lock` is
/// held for the whole fold — tests grab it first to hold the daemon
/// hostage and prove queries still serve; it also serialises accumulator
/// read-modify-commit across callers. `seed_bump` decorrelates the
/// chains of successive attempts. The fold lands on a working copy of
/// the accumulator and is committed to `state` (with the new watermark)
/// only after it fully succeeds.
#[allow(clippy::too_many_arguments)] // the daemon is the only real caller
pub fn refit_once(
    store: &ShardedStore,
    predictor: &EpochPredictor,
    kind: ModelKind,
    config: &RefitConfig,
    state: &Mutex<RefitState>,
    refit_lock: &Mutex<()>,
    seed_bump: u64,
    mode: RefitMode,
) -> RefitOutcome {
    let _hostage = refit_lock.locked();
    let pending_at_start = store.pending();
    let started = Instant::now();

    let seed = config.ltm.seed.wrapping_add(seed_bump.wrapping_mul(0x9E37));
    let step = match kind {
        ModelKind::Boolean | ModelKind::PositiveOnly => {
            fold_boolean(store, kind, config, state, seed, mode)
        }
        ModelKind::RealValued => fold_real(store, config, state, seed, mode),
    };
    let folded = match step {
        FoldStep::Empty { watermark } => {
            // Nothing new to fold. Still advance the watermark and
            // consume pending: a snapshot race can restore pending
            // slightly larger than the accumulator's watermark implies,
            // and without this commit the daemon would re-arm forever
            // over an empty delta.
            let mut st = state.locked();
            st.counters.watermark = st.counters.watermark.max(watermark);
            drop(st);
            store.consume_pending(pending_at_start);
            return RefitOutcome::Empty;
        }
        FoldStep::Failed(e) => {
            state.locked().counters.refits_failed += 1;
            return RefitOutcome::Failed(e);
        }
        FoldStep::Done(folded) => folded,
    };
    let Folded {
        acc,
        mut candidate,
        watermark,
        delta_claims,
    } = *folded;
    let max_rhat = candidate.max_rhat;
    let elapsed = started.elapsed().as_secs_f64();
    let obs = state.locked().obs.clone();

    // The epoch decision is applied first, then the accumulator commit,
    // then pending is consumed. A snapshot capture reads the store first,
    // the refit state second, and the predictor last, so this ordering
    // means a racing capture can only pair a *newer* accumulator/epoch
    // with an older log — which errs toward a redundant re-fold after
    // restore, never toward silently excluding a folded tail.
    let rhat_started = Instant::now();
    let current = predictor.load();
    let promote = max_rhat <= config.rhat_gate || max_rhat <= current.max_rhat;
    if let Some(o) = &obs {
        o.rhat_seconds.record_duration(rhat_started.elapsed());
    }
    let promote_started = Instant::now();
    let outcome = if promote {
        // Shadow baselines are fit only for epochs that will actually be
        // published (a vetoed candidate is dropped whole), on a fresh
        // full extraction so every method — including the LTM column the
        // candidate will serve — scores one consistent claim database
        // keyed by global fact id. This runs on the daemon thread behind
        // the epoch pointer-swap; queries never wait on it.
        if config.shadows {
            if let Some(ltm) = candidate.predictor.as_boolean().cloned() {
                let shadow_obs = state.locked().shadow_obs.clone();
                let (full, globals) = store.full_databases_with_ids();
                if !full.batches.is_empty() {
                    candidate.shadow = Some(Arc::new(crate::shadow::fit_shadow_tables(
                        &full.batches,
                        &globals,
                        &ltm,
                        shadow_obs.as_ref(),
                    )));
                }
            }
        }
        let epoch = predictor.publish(candidate);
        RefitOutcome::Published {
            epoch,
            max_rhat,
            mode,
            delta_claims,
        }
    } else {
        predictor.record_rejection();
        RefitOutcome::Rejected {
            max_rhat,
            gate: config.rhat_gate,
            mode,
        }
    };
    {
        let mut st = state.locked();
        match acc {
            FoldedAcc::Boolean(s) => st.streaming = Some(s),
            FoldedAcc::Real(s) => st.streaming_real = Some(s),
        }
        st.counters.watermark = watermark;
        match mode {
            RefitMode::Incremental => {
                st.counters.refits_incremental += 1;
                st.counters.last_incremental_secs = elapsed;
            }
            RefitMode::Full => {
                st.counters.refits_full += 1;
                st.counters.last_full_secs = elapsed;
            }
        }
    }
    store.consume_pending(pending_at_start);
    if let Some(o) = &obs {
        o.promote_seconds.record_duration(promote_started.elapsed());
    }
    outcome
}

/// Delay before the next attempt after `failures` consecutive refit
/// failures: `interval · 2^failures`, capped at `max_backoff`.
fn failure_backoff(interval: Duration, failures: u32, max_backoff: Duration) -> Duration {
    interval
        .saturating_mul(2u32.saturating_pow(failures.min(16)))
        .min(max_backoff)
        .max(interval)
}

/// What a forced trigger asks for: a refit in whatever mode the daemon's
/// schedule picks next, or explicitly a full reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForcedTrigger {
    Auto,
    Full,
}

/// Shared daemon state behind the trigger condvar.
#[derive(Debug, Default)]
struct DaemonState {
    shutdown: bool,
    forced: Option<ForcedTrigger>,
}

/// Handle to the background refit thread.
#[derive(Debug)]
pub struct RefitDaemon {
    state: Arc<(Mutex<DaemonState>, Condvar)>,
    refits_started: Arc<AtomicU64>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl RefitDaemon {
    /// Spawns the daemon thread for one domain of kind `kind`.
    pub fn spawn(
        store: Arc<ShardedStore>,
        predictor: Arc<EpochPredictor>,
        kind: ModelKind,
        config: RefitConfig,
        refit_state: Arc<Mutex<RefitState>>,
        refit_lock: Arc<Mutex<()>>,
    ) -> Self {
        let state = Arc::new((Mutex::new(DaemonState::default()), Condvar::new()));
        let refits_started = Arc::new(AtomicU64::new(0));
        let thread_state = Arc::clone(&state);
        let thread_refits = Arc::clone(&refits_started);
        let handle = std::thread::Builder::new()
            .name("ltm-refit".into())
            .spawn(move || {
                let (lock, cv) = &*thread_state;
                let mut attempt: u64 = 0;
                let mut since_full: u64 = 0;
                let mut failures: u32 = 0;
                let mut backoff_until: Option<Instant> = None;
                loop {
                    let forced;
                    {
                        let mut st = lock.locked();
                        loop {
                            if st.shutdown {
                                return;
                            }
                            // A forced trigger bypasses both the pending
                            // threshold and the failure backoff.
                            if let Some(t) = st.forced.take() {
                                forced = Some(t);
                                break;
                            }
                            let in_backoff =
                                backoff_until.is_some_and(|until| Instant::now() < until);
                            if !in_backoff && store.pending() >= config.min_pending {
                                forced = None;
                                break;
                            }
                            let (next, _timeout) = cv
                                .wait_timeout(st, config.interval)
                                .unwrap_or_else(|poisoned| poisoned.into_inner());
                            st = next;
                        }
                    }
                    // Fold failures are deterministic state mismatches
                    // (id-space drift between accumulator and store), and
                    // a full rebuild is their one remedy — so after two
                    // consecutive failures the schedule escalates to Full
                    // on its own instead of retrying the same doomed
                    // incremental fold under backoff forever. Operators
                    // who disabled automatic full refits keep the manual
                    // heal only.
                    let scheduled = if config.full_refit_every > 0
                        && (failures >= 2 || since_full + 1 >= config.full_refit_every)
                    {
                        RefitMode::Full
                    } else {
                        RefitMode::Incremental
                    };
                    let mode = match forced {
                        Some(ForcedTrigger::Full) => RefitMode::Full,
                        _ => scheduled,
                    };
                    attempt += 1;
                    thread_refits.fetch_add(1, Ordering::Relaxed);
                    let outcome = refit_once(
                        &store,
                        &predictor,
                        kind,
                        &config,
                        &refit_state,
                        &refit_lock,
                        attempt,
                        mode,
                    );
                    match &outcome {
                        RefitOutcome::Failed(e) => {
                            // Exponential backoff: a persistent fold error
                            // must not retry every interval forever,
                            // spamming stderr and burning a core.
                            failures += 1;
                            let delay =
                                failure_backoff(config.interval, failures, config.max_backoff);
                            backoff_until = Some(Instant::now() + delay);
                            crate::log_warn!(
                                "refit",
                                "{mode} refit failed ({failures} consecutive): {e}; \
                                 backing off {delay:?}"
                            );
                            continue;
                        }
                        RefitOutcome::Published {
                            epoch, max_rhat, ..
                        } => {
                            crate::log_info!(
                                "refit",
                                "published epoch {epoch} ({mode} refit, \
                                 max R-hat {max_rhat:.3})"
                            );
                        }
                        RefitOutcome::Rejected { max_rhat, gate, .. } => {
                            crate::log_info!(
                                "refit",
                                "rejected {mode} refit: \
                                 max R-hat {max_rhat:.3} > gate {gate:.3}"
                            );
                        }
                        RefitOutcome::Empty => {}
                    }
                    failures = 0;
                    backoff_until = None;
                    if mode == RefitMode::Full {
                        since_full = 0;
                    } else {
                        since_full += 1;
                    }
                }
            })
            // analyzer: allow(panic-expect) -- boot-time spawn; fails only on OS thread exhaustion, before the domain serves
            .expect("spawn refit daemon");
        Self {
            state,
            refits_started,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Forces a refit pass regardless of the pending threshold (and of
    /// any failure backoff). The daemon's own full/incremental schedule
    /// picks the mode.
    pub fn trigger(&self) {
        self.force(ForcedTrigger::Auto);
    }

    /// Forces a full (reconciliation) refit pass.
    pub fn trigger_full(&self) {
        self.force(ForcedTrigger::Full);
    }

    fn force(&self, trigger: ForcedTrigger) {
        let (lock, cv) = &*self.state;
        let mut st = lock.locked();
        // A pending full request is never downgraded by a later auto one.
        st.forced = match (st.forced, trigger) {
            (Some(ForcedTrigger::Full), _) | (_, ForcedTrigger::Full) => Some(ForcedTrigger::Full),
            _ => Some(ForcedTrigger::Auto),
        };
        drop(st);
        cv.notify_all();
    }

    /// Refit attempts started since boot.
    pub fn refits_started(&self) -> u64 {
        self.refits_started.load(Ordering::Relaxed)
    }

    /// Stops the daemon and joins its thread (idempotent).
    pub fn shutdown(&self) {
        let (lock, cv) = &*self.state;
        if let Ok(mut st) = lock.lock() {
            st.shutdown = true;
        }
        cv.notify_all();
        let handle = self.handle.locked().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for RefitDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_core::ExpectedCounts;

    fn fast_config() -> RefitConfig {
        RefitConfig {
            ltm: LtmConfig {
                schedule: SampleSchedule::new(60, 20, 1),
                ..LtmConfig::default()
            },
            chains: 2,
            rhat_gate: 1.2,
            min_pending: usize::MAX, // manual triggers only
            interval: Duration::from_millis(10),
            ..RefitConfig::default()
        }
    }

    fn seeded_store() -> Arc<ShardedStore> {
        let store = Arc::new(ShardedStore::new(3));
        for e in 0..12 {
            for a in 0..2 {
                store.ingest(&format!("e{e}"), &format!("a{a}"), "good");
            }
            store.ingest(&format!("e{e}"), "a0", "lazy");
        }
        store
    }

    fn run(
        store: &ShardedStore,
        predictor: &EpochPredictor,
        cfg: &RefitConfig,
        state: &Mutex<RefitState>,
        bump: u64,
        mode: RefitMode,
    ) -> RefitOutcome {
        let lock = Mutex::new(());
        refit_once(
            store,
            predictor,
            ModelKind::Boolean,
            cfg,
            state,
            &lock,
            bump,
            mode,
        )
    }

    #[test]
    fn refit_once_publishes_an_epoch() {
        let store = seeded_store();
        let cfg = fast_config();
        let predictor = EpochPredictor::new(&cfg.ltm.priors);
        let state = Mutex::new(RefitState::new());
        let outcome = run(&store, &predictor, &cfg, &state, 1, RefitMode::Full);
        match outcome {
            RefitOutcome::Published { epoch, mode, .. } => {
                assert_eq!(epoch, 1);
                assert_eq!(mode, RefitMode::Full);
            }
            other => panic!("expected publish, got {other:?}"),
        }
        let snap = predictor.load();
        assert_eq!(snap.trained_claims, store.stats().claims);
        assert_eq!(store.pending(), 0, "pending consumed");
        let st = state.locked();
        assert_eq!(st.watermark(), store.accepted_seq());
        assert_eq!(st.counters().refits_full, 1);
        assert!(st.counters().last_full_secs > 0.0);
        drop(st);
        // The learned quality must rank `good` above `lazy` on sensitivity.
        let good = store.source_id("good").unwrap();
        let lazy = store.source_id("lazy").unwrap();
        let p_good = snap.predictor.predict_fact(&[(good, true)]);
        let p_lazy = snap.predictor.predict_fact(&[(lazy, true)]);
        assert!(
            p_good > p_lazy,
            "good-source claim should carry more weight: {p_good} vs {p_lazy}"
        );
    }

    #[test]
    fn refit_on_empty_store_is_a_noop() {
        let store = Arc::new(ShardedStore::new(2));
        let cfg = fast_config();
        let predictor = EpochPredictor::new(&cfg.ltm.priors);
        let state = Mutex::new(RefitState::new());
        for mode in [RefitMode::Full, RefitMode::Incremental] {
            assert_eq!(
                run(&store, &predictor, &cfg, &state, 0, mode),
                RefitOutcome::Empty
            );
        }
        assert_eq!(predictor.load().epoch, 0);
    }

    #[test]
    fn incremental_refit_folds_only_the_delta() {
        let store = seeded_store();
        let cfg = fast_config();
        let predictor = EpochPredictor::new(&cfg.ltm.priors);
        let state = Mutex::new(RefitState::new());
        // First incremental fold over an empty accumulator covers
        // everything (it IS the full extraction semantically).
        match run(&store, &predictor, &cfg, &state, 1, RefitMode::Incremental) {
            RefitOutcome::Published { delta_claims, .. } => {
                assert_eq!(delta_claims, store.stats().claims)
            }
            other => panic!("expected publish, got {other:?}"),
        }
        // A new entity asserted by one known source is a 1-claim delta.
        store.ingest("brand-new", "a0", "good");
        match run(&store, &predictor, &cfg, &state, 2, RefitMode::Incremental) {
            RefitOutcome::Published { delta_claims, .. } => assert_eq!(delta_claims, 1),
            other => panic!("expected publish, got {other:?}"),
        }
        assert_eq!(store.pending(), 0);
        let st = state.locked();
        assert_eq!(st.counters().refits_incremental, 2);
        assert_eq!(st.watermark(), store.accepted_seq());
        // The accumulator still covers the whole history, not just the
        // last delta.
        let acc_total = st.streaming().unwrap().accumulated().total();
        assert!(
            (acc_total - store.stats().claims as f64).abs() < 1e-6,
            "accumulator covers {acc_total}, store holds {}",
            store.stats().claims
        );
    }

    #[test]
    fn retroactive_coverage_flows_through_the_delta() {
        // A new source covering an old entity adds Definition-3 negative
        // rows to the entity's other facts; those rows must reach the
        // accumulator through the delta path, not wait for a full refit.
        let store = Arc::new(ShardedStore::new(2));
        store.ingest("e0", "a0", "s0");
        store.ingest("e0", "a1", "s0");
        store.ingest("e1", "a0", "s0");
        let cfg = fast_config();
        let predictor = EpochPredictor::new(&cfg.ltm.priors);
        let state = Mutex::new(RefitState::new());
        run(&store, &predictor, &cfg, &state, 1, RefitMode::Incremental);

        // `late` asserts one fact of e0 → covers e0 → negative on (e0,a1).
        store.ingest("e0", "a0", "late");
        match run(&store, &predictor, &cfg, &state, 2, RefitMode::Incremental) {
            RefitOutcome::Published { delta_claims, .. } => assert_eq!(
                delta_claims, 4,
                "both facts of e0 re-fold with 2 covering sources each"
            ),
            other => panic!("expected publish, got {other:?}"),
        }
        let st = state.locked();
        let acc = st.streaming().unwrap().accumulated();
        let late = store.source_id("late").unwrap();
        let late_total: f64 = [(true, true), (true, false), (false, true), (false, false)]
            .iter()
            .map(|&(label, obs)| acc.get(late, label, obs))
            .sum();
        assert!(
            (late_total - 2.0).abs() < 1e-9,
            "late contributed its positive AND its retroactive negative: {late_total}"
        );
    }

    #[test]
    fn full_refit_sheds_incremental_drift() {
        // Re-assert an already-covered fact between incremental refits:
        // the dirty fact re-folds on top of its earlier contribution, so
        // the accumulator over-counts. A full refit rebuilds it exactly.
        let store = seeded_store();
        let cfg = fast_config();
        let predictor = EpochPredictor::new(&cfg.ltm.priors);
        let state = Mutex::new(RefitState::new());
        run(&store, &predictor, &cfg, &state, 1, RefitMode::Incremental);
        // `lazy` now asserts a fact it previously only covered: the fact
        // was folded once already and re-folds entirely.
        store.ingest("e0", "a1", "lazy");
        run(&store, &predictor, &cfg, &state, 2, RefitMode::Incremental);
        let drifted = state
            .lock()
            .unwrap()
            .streaming()
            .unwrap()
            .accumulated()
            .total();
        let claims = store.stats().claims as f64;
        assert!(
            drifted > claims + 0.5,
            "re-folded fact double-counts: accumulator {drifted} vs store {claims}"
        );
        run(&store, &predictor, &cfg, &state, 3, RefitMode::Full);
        let reconciled = state
            .lock()
            .unwrap()
            .streaming()
            .unwrap()
            .accumulated()
            .total();
        assert!(
            (reconciled - claims).abs() < 1e-6,
            "full refit rebuilds exactly: {reconciled} vs {claims}"
        );
    }

    #[test]
    fn rhat_gate_rejects_regressions_but_commits_the_fold() {
        let store = seeded_store();
        let cfg = RefitConfig {
            // An impossible gate: any R̂ > 0 fails unless it improves on
            // the served epoch.
            rhat_gate: 0.0,
            ..fast_config()
        };
        let predictor = EpochPredictor::new(&cfg.ltm.priors);
        // Pretend the served epoch already has a perfect R̂ so the
        // "never reject an improvement" clause cannot save the candidate.
        let mut served = EpochSnapshot::boot(&cfg.ltm.priors);
        served.max_rhat = 0.0;
        predictor.restore(served);
        let state = Mutex::new(RefitState::new());
        match run(&store, &predictor, &cfg, &state, 1, RefitMode::Incremental) {
            RefitOutcome::Rejected { gate, .. } => assert_eq!(gate, 0.0),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(predictor.load().epoch, 0, "served epoch unchanged");
        assert_eq!(predictor.epochs_rejected(), 1);
        assert_eq!(store.pending(), 0, "pending consumed even on rejection");
        let st = state.locked();
        assert!(
            st.streaming().is_some() && st.watermark() == store.accepted_seq(),
            "the fold is committed even when promotion is vetoed"
        );
    }

    /// An accumulator claiming more sources than the store has interned:
    /// every incremental fold then fails with `SourceSpaceShrunk`.
    fn poisoned_state(cfg: &RefitConfig) -> RefitState {
        let mut st = RefitState::new();
        st.restore(
            StreamingLtm::from_accumulated(cfg.ltm, ExpectedCounts::zeros(64), 1),
            0,
        );
        st
    }

    #[test]
    fn failed_fold_commits_nothing_and_counts() {
        let store = seeded_store();
        let cfg = fast_config();
        let predictor = EpochPredictor::new(&cfg.ltm.priors);
        let state = Mutex::new(poisoned_state(&cfg));
        let pending_before = store.pending();
        match run(&store, &predictor, &cfg, &state, 1, RefitMode::Incremental) {
            RefitOutcome::Failed(StreamError::SourceSpaceShrunk { .. }) => {}
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(store.pending(), pending_before, "pending stays armed");
        let st = state.locked();
        assert_eq!(st.counters().refits_failed, 1);
        assert_eq!(st.watermark(), 0, "watermark not advanced");
        drop(st);
        // A full refit reconciles: fresh accumulator, healthy again.
        match run(&store, &predictor, &cfg, &state, 2, RefitMode::Full) {
            RefitOutcome::Published { .. } => {}
            other => panic!("expected full refit to heal, got {other:?}"),
        }
        assert_eq!(store.pending(), 0);
    }

    #[test]
    fn failure_backoff_doubles_and_caps() {
        let i = Duration::from_millis(100);
        let cap = Duration::from_secs(5);
        assert_eq!(failure_backoff(i, 1, cap), Duration::from_millis(200));
        assert_eq!(failure_backoff(i, 2, cap), Duration::from_millis(400));
        assert_eq!(failure_backoff(i, 5, cap), Duration::from_millis(3200));
        assert_eq!(failure_backoff(i, 6, cap), cap);
        assert_eq!(failure_backoff(i, 60, cap), cap, "exponent saturates");
        assert_eq!(failure_backoff(i, 0, cap), i, "never below the interval");
    }

    #[test]
    fn daemon_backs_off_after_persistent_failures() {
        // A poisoned accumulator makes every armed refit fail. Without
        // backoff the 10 ms interval would run ~10 attempts in 700 ms;
        // with exponential backoff (20, 40, 80, 160, 320 ms…) far fewer
        // land, and each failure is counted.
        let store = seeded_store();
        let cfg = RefitConfig {
            min_pending: 1,      // armed by the seeded ingest
            full_refit_every: 0, // no auto-reconciliation: every attempt fails
            ..fast_config()
        };
        let predictor = Arc::new(EpochPredictor::new(&cfg.ltm.priors));
        let state = Arc::new(Mutex::new(poisoned_state(&cfg)));
        let lock = Arc::new(Mutex::new(()));
        let daemon = RefitDaemon::spawn(
            Arc::clone(&store),
            Arc::clone(&predictor),
            ModelKind::Boolean,
            cfg,
            Arc::clone(&state),
            Arc::clone(&lock),
        );
        std::thread::sleep(Duration::from_millis(700));
        let started = daemon.refits_started();
        let failed = state.locked().counters().refits_failed;
        daemon.shutdown();
        assert!(started >= 2, "daemon must keep retrying: {started}");
        assert!(
            started <= 7,
            "daemon retried too often for an exponential backoff: {started}"
        );
        assert_eq!(failed, started, "every attempt failed and was counted");
        assert_eq!(predictor.load().epoch, 0);
    }

    #[test]
    fn daemon_escalates_to_full_after_persistent_failures() {
        // A poisoned accumulator makes incremental folds fail
        // deterministically; with automatic full refits enabled, the
        // daemon must escalate to a full rebuild on its own after two
        // consecutive failures and heal without operator intervention.
        let store = seeded_store();
        let cfg = RefitConfig {
            min_pending: 1,
            ..fast_config() // full_refit_every: default (8, enabled)
        };
        let predictor = Arc::new(EpochPredictor::new(&cfg.ltm.priors));
        let state = Arc::new(Mutex::new(poisoned_state(&cfg)));
        let daemon = RefitDaemon::spawn(
            Arc::clone(&store),
            Arc::clone(&predictor),
            ModelKind::Boolean,
            cfg,
            Arc::clone(&state),
            Arc::new(Mutex::new(())),
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        while predictor.load().epoch == 0 {
            assert!(Instant::now() < deadline, "daemon never self-healed");
            std::thread::sleep(Duration::from_millis(10));
        }
        let c = state.locked().counters();
        assert!(c.refits_failed >= 2, "escalation needs two failures: {c:?}");
        assert!(
            c.refits_full >= 1,
            "the healing refit was a full one: {c:?}"
        );
        assert_eq!(store.pending(), 0);
        daemon.shutdown();
    }

    #[test]
    fn forced_full_trigger_bypasses_backoff_and_heals() {
        let store = seeded_store();
        let cfg = RefitConfig {
            min_pending: 1,
            ..fast_config()
        };
        let predictor = Arc::new(EpochPredictor::new(&cfg.ltm.priors));
        let state = Arc::new(Mutex::new(poisoned_state(&cfg)));
        let daemon = RefitDaemon::spawn(
            Arc::clone(&store),
            Arc::clone(&predictor),
            ModelKind::Boolean,
            cfg,
            Arc::clone(&state),
            Arc::new(Mutex::new(())),
        );
        // Wait for at least one failure so a backoff is in force.
        let deadline = Instant::now() + Duration::from_secs(30);
        while state.locked().counters().refits_failed == 0 {
            assert!(Instant::now() < deadline, "daemon never attempted");
            std::thread::sleep(Duration::from_millis(10));
        }
        // A forced full refit rebuilds the accumulator and publishes
        // without waiting out the backoff.
        daemon.trigger_full();
        let deadline = Instant::now() + Duration::from_secs(30);
        while predictor.load().epoch == 0 {
            assert!(Instant::now() < deadline, "forced full refit never healed");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(state.locked().counters().refits_full >= 1);
        daemon.shutdown();
    }

    #[test]
    fn daemon_runs_periodic_full_refits() {
        let store = seeded_store();
        let cfg = RefitConfig {
            min_pending: usize::MAX,
            full_refit_every: 2, // every 2nd attempt reconciles
            ..fast_config()
        };
        let predictor = Arc::new(EpochPredictor::new(&cfg.ltm.priors));
        let state = Arc::new(Mutex::new(RefitState::new()));
        let daemon = RefitDaemon::spawn(
            Arc::clone(&store),
            Arc::clone(&predictor),
            ModelKind::Boolean,
            cfg,
            Arc::clone(&state),
            Arc::new(Mutex::new(())),
        );
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            // New data before each trigger so no attempt is Empty.
            store.ingest(&format!("fresh-{}", daemon.refits_started()), "a0", "good");
            daemon.trigger();
            let c = state.locked().counters();
            if c.refits_full >= 1 && c.refits_incremental >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "daemon never mixed modes: {c:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon.shutdown();
    }

    #[test]
    fn daemon_trigger_and_shutdown() {
        let store = seeded_store();
        let cfg = fast_config();
        let predictor = Arc::new(EpochPredictor::new(&cfg.ltm.priors));
        let state = Arc::new(Mutex::new(RefitState::new()));
        let lock = Arc::new(Mutex::new(()));
        let daemon = RefitDaemon::spawn(
            Arc::clone(&store),
            Arc::clone(&predictor),
            ModelKind::Boolean,
            cfg,
            Arc::clone(&state),
            Arc::clone(&lock),
        );
        daemon.trigger();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while predictor.load().epoch == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never published"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(daemon.refits_started() >= 1);
        daemon.shutdown();
    }
}
