//! The background refit daemon.
//!
//! A worker thread wakes when enough triples have accumulated (or a
//! forced trigger arrives), rebuilds every shard's [`ClaimDb`], and folds
//! them batch-by-batch through a fresh [`StreamingLtm`] using multi-chain
//! Gibbs fits — each shard's fit is seeded with the quality priors
//! accumulated from the shards before it, exactly the paper's §5.4
//! batch-over-batch scheme with shards as batches. The resulting
//! cumulative quality becomes a candidate [`EpochSnapshot`].
//!
//! **R̂-gated promotion**: the candidate is published only if its worst
//! per-fact Gelman–Rubin `R̂` is below the configured gate *or* no worse
//! than the currently served epoch's (an improvement is never rejected).
//! A rejected refit is counted, logged, and the store's pending counter is
//! still consumed — otherwise a deterministic non-converging fit would
//! re-trigger in a hot loop; fresh ingests re-arm the trigger and each
//! attempt re-seeds its chains.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ltm_core::{LtmConfig, SampleSchedule, StreamError, StreamingLtm};

use crate::epoch::{EpochPredictor, EpochSnapshot};
use crate::store::ShardedStore;

/// Refit daemon configuration.
#[derive(Debug, Clone)]
pub struct RefitConfig {
    /// Base model configuration (priors, schedule, seed, kernel).
    pub ltm: LtmConfig,
    /// Parallel Gibbs chains per shard fit (≥ 2 for meaningful `R̂`).
    pub chains: usize,
    /// Promotion gate: reject a refit whose worst `R̂` exceeds this and
    /// regresses the served epoch.
    pub rhat_gate: f64,
    /// Accepted triples that arm an automatic refit.
    pub min_pending: usize,
    /// How often the daemon checks the trigger condition.
    pub interval: Duration,
}

impl Default for RefitConfig {
    fn default() -> Self {
        Self {
            ltm: LtmConfig {
                schedule: SampleSchedule::new(100, 20, 1),
                ..LtmConfig::default()
            },
            chains: 2,
            rhat_gate: 1.2,
            min_pending: 1,
            interval: Duration::from_millis(200),
        }
    }
}

/// What one refit attempt did.
#[derive(Debug, Clone, PartialEq)]
pub enum RefitOutcome {
    /// A new epoch was published.
    Published {
        /// The new epoch number.
        epoch: u64,
        /// Worst per-fact `R̂` of the refit.
        max_rhat: f64,
    },
    /// Diagnostics regressed past the gate; the served epoch is unchanged.
    Rejected {
        /// Worst per-fact `R̂` of the rejected refit.
        max_rhat: f64,
        /// The gate it failed.
        gate: f64,
    },
    /// The store held no claims; nothing to fit.
    Empty,
    /// A shard batch could not be folded (id-space drift).
    Failed(StreamError),
}

/// Runs one full refit over the store and (maybe) publishes an epoch.
///
/// `refit_lock` is held for the whole fold — tests grab it first to hold
/// the daemon hostage and prove queries still serve; `seed_bump`
/// decorrelates the chains of successive attempts.
pub fn refit_once(
    store: &ShardedStore,
    predictor: &EpochPredictor,
    config: &RefitConfig,
    refit_lock: &Mutex<()>,
    seed_bump: u64,
) -> RefitOutcome {
    let _hostage = refit_lock.lock().expect("refit lock");
    let pending_at_start = store.pending();
    let dbs = store.shard_databases();
    let total_claims: usize = dbs.iter().map(|db| db.num_claims()).sum();
    if total_claims == 0 {
        return RefitOutcome::Empty;
    }

    let ltm = LtmConfig {
        seed: config.ltm.seed.wrapping_add(seed_bump.wrapping_mul(0x9E37)),
        ..config.ltm
    };
    let mut streaming = StreamingLtm::new(ltm);
    let mut max_rhat: f64 = 1.0;
    let mut converged_weighted = 0.0;
    let mut facts_total = 0usize;
    for db in &dbs {
        match streaming.try_observe_chains(db, config.chains) {
            Ok(multi) => {
                max_rhat = max_rhat.max(multi.diagnostics.max_rhat);
                converged_weighted += multi.diagnostics.converged_fraction * db.num_facts() as f64;
                facts_total += db.num_facts();
            }
            Err(e) => return RefitOutcome::Failed(e),
        }
    }

    let quality = streaming.quality();
    let candidate = EpochSnapshot {
        epoch: 0, // overwritten by publish()
        predictor: ltm_core::IncrementalLtm::new(&quality, &streaming.base_priors()),
        max_rhat,
        converged_fraction: if facts_total == 0 {
            1.0
        } else {
            converged_weighted / facts_total as f64
        },
        trained_claims: total_claims,
        trained_sources: quality.num_sources(),
    };

    // Pending is consumed whether or not the candidate is promoted (the
    // data *was* folded; only the promotion was vetoed) — but always
    // AFTER the epoch decision is applied. A snapshot capture reads the
    // store first and the predictor second, so consuming first would
    // open a window where capture pairs the OLD epoch with pending
    // already zero and the folded tail is silently excluded after a
    // restore; publish-then-consume errs toward a redundant refit
    // instead.
    let current = predictor.load();
    if max_rhat <= config.rhat_gate || max_rhat <= current.max_rhat {
        let epoch = predictor.publish(candidate);
        store.consume_pending(pending_at_start);
        RefitOutcome::Published { epoch, max_rhat }
    } else {
        predictor.record_rejection();
        store.consume_pending(pending_at_start);
        RefitOutcome::Rejected {
            max_rhat,
            gate: config.rhat_gate,
        }
    }
}

/// Shared daemon state behind the trigger condvar.
#[derive(Debug, Default)]
struct DaemonState {
    shutdown: bool,
    forced: bool,
}

/// Handle to the background refit thread.
#[derive(Debug)]
pub struct RefitDaemon {
    state: Arc<(Mutex<DaemonState>, Condvar)>,
    refits_started: Arc<AtomicU64>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl RefitDaemon {
    /// Spawns the daemon thread.
    pub fn spawn(
        store: Arc<ShardedStore>,
        predictor: Arc<EpochPredictor>,
        config: RefitConfig,
        refit_lock: Arc<Mutex<()>>,
    ) -> Self {
        let state = Arc::new((Mutex::new(DaemonState::default()), Condvar::new()));
        let refits_started = Arc::new(AtomicU64::new(0));
        let thread_state = Arc::clone(&state);
        let thread_refits = Arc::clone(&refits_started);
        let handle = std::thread::Builder::new()
            .name("ltm-refit".into())
            .spawn(move || {
                let (lock, cv) = &*thread_state;
                let mut attempt: u64 = 0;
                loop {
                    {
                        let mut st = lock.lock().expect("daemon lock");
                        while !st.shutdown && !st.forced && store.pending() < config.min_pending {
                            let (next, _timeout) = cv
                                .wait_timeout(st, config.interval)
                                .expect("daemon lock poisoned");
                            st = next;
                        }
                        if st.shutdown {
                            return;
                        }
                        st.forced = false;
                    }
                    attempt += 1;
                    thread_refits.fetch_add(1, Ordering::Relaxed);
                    let outcome =
                        refit_once(&store, &predictor, &config, &refit_lock, attempt);
                    match &outcome {
                        RefitOutcome::Published { epoch, max_rhat } => {
                            eprintln!("[ltm-refit] published epoch {epoch} (max R-hat {max_rhat:.3})");
                        }
                        RefitOutcome::Rejected { max_rhat, gate } => {
                            eprintln!("[ltm-refit] rejected refit: max R-hat {max_rhat:.3} > gate {gate:.3}");
                        }
                        RefitOutcome::Failed(e) => {
                            eprintln!("[ltm-refit] refit failed: {e}");
                        }
                        RefitOutcome::Empty => {}
                    }
                }
            })
            .expect("spawn refit daemon");
        Self {
            state,
            refits_started,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Forces a refit pass regardless of the pending threshold.
    pub fn trigger(&self) {
        let (lock, cv) = &*self.state;
        lock.lock().expect("daemon lock").forced = true;
        cv.notify_all();
    }

    /// Refit attempts started since boot.
    pub fn refits_started(&self) -> u64 {
        self.refits_started.load(Ordering::Relaxed)
    }

    /// Stops the daemon and joins its thread (idempotent).
    pub fn shutdown(&self) {
        let (lock, cv) = &*self.state;
        if let Ok(mut st) = lock.lock() {
            st.shutdown = true;
        }
        cv.notify_all();
        let handle = self.handle.lock().expect("daemon handle lock").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for RefitDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> RefitConfig {
        RefitConfig {
            ltm: LtmConfig {
                schedule: SampleSchedule::new(60, 20, 1),
                ..LtmConfig::default()
            },
            chains: 2,
            rhat_gate: 1.2,
            min_pending: usize::MAX, // manual triggers only
            interval: Duration::from_millis(10),
        }
    }

    fn seeded_store() -> Arc<ShardedStore> {
        let store = Arc::new(ShardedStore::new(3));
        for e in 0..12 {
            for a in 0..2 {
                store.ingest(&format!("e{e}"), &format!("a{a}"), "good");
            }
            store.ingest(&format!("e{e}"), "a0", "lazy");
        }
        store
    }

    #[test]
    fn refit_once_publishes_an_epoch() {
        let store = seeded_store();
        let cfg = fast_config();
        let predictor = EpochPredictor::new(&cfg.ltm.priors);
        let lock = Mutex::new(());
        let outcome = refit_once(&store, &predictor, &cfg, &lock, 1);
        match outcome {
            RefitOutcome::Published { epoch, .. } => assert_eq!(epoch, 1),
            other => panic!("expected publish, got {other:?}"),
        }
        let snap = predictor.load();
        assert_eq!(snap.trained_claims, store.stats().claims);
        assert_eq!(store.pending(), 0, "pending consumed");
        // The learned quality must rank `good` above `lazy` on sensitivity.
        let good = store.source_id("good").unwrap();
        let lazy = store.source_id("lazy").unwrap();
        let p_good = snap.predictor.predict_fact(&[(good, true)]);
        let p_lazy = snap.predictor.predict_fact(&[(lazy, true)]);
        assert!(
            p_good > p_lazy,
            "good-source claim should carry more weight: {p_good} vs {p_lazy}"
        );
    }

    #[test]
    fn refit_on_empty_store_is_a_noop() {
        let store = Arc::new(ShardedStore::new(2));
        let cfg = fast_config();
        let predictor = EpochPredictor::new(&cfg.ltm.priors);
        let lock = Mutex::new(());
        assert_eq!(
            refit_once(&store, &predictor, &cfg, &lock, 0),
            RefitOutcome::Empty
        );
        assert_eq!(predictor.load().epoch, 0);
    }

    #[test]
    fn rhat_gate_rejects_regressions() {
        let store = seeded_store();
        let cfg = RefitConfig {
            // An impossible gate: any R̂ > 0 fails unless it improves on
            // the served epoch.
            rhat_gate: 0.0,
            ..fast_config()
        };
        let predictor = EpochPredictor::new(&cfg.ltm.priors);
        // Pretend the served epoch already has a perfect R̂ so the
        // "never reject an improvement" clause cannot save the candidate.
        let mut served = EpochSnapshot::boot(&cfg.ltm.priors);
        served.max_rhat = 0.0;
        predictor.restore(served);
        let lock = Mutex::new(());
        match refit_once(&store, &predictor, &cfg, &lock, 1) {
            RefitOutcome::Rejected { gate, .. } => assert_eq!(gate, 0.0),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(predictor.load().epoch, 0, "served epoch unchanged");
        assert_eq!(predictor.epochs_rejected(), 1);
        assert_eq!(store.pending(), 0, "pending consumed even on rejection");
    }

    #[test]
    fn daemon_trigger_and_shutdown() {
        let store = seeded_store();
        let cfg = fast_config();
        let predictor = Arc::new(EpochPredictor::new(&cfg.ltm.priors));
        let lock = Arc::new(Mutex::new(()));
        let daemon = RefitDaemon::spawn(
            Arc::clone(&store),
            Arc::clone(&predictor),
            cfg,
            Arc::clone(&lock),
        );
        daemon.trigger();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while predictor.load().epoch == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never published"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(daemon.refits_started() >= 1);
        daemon.shutdown();
    }
}
