//! `ltm` — the truth-discovery service CLI.
//!
//! ```text
//! ltm serve  [--addr A] [--shards N] [--threads N] [--chains N]
//!            [--refit-claims N] [--refit-millis MS] [--rhat-gate X]
//!            [--full-refit-every N] [--snapshot FILE] [--port-file FILE]
//!            [--io-timeout-millis MS]
//! ltm ingest <TRIPLES.csv> [--addr A] [--batch N]
//! ltm query  <SOURCE=true|false>... [--addr A]
//! ```
//!
//! `serve` runs the sharded server until `POST /admin/shutdown`;
//! `ingest` streams a `entity,attribute,source` CSV (the
//! `ltm_model::io` triples format) into a running server; `query` scores
//! an ad-hoc claim list and prints the JSON response.

use std::path::PathBuf;
use std::time::Duration;

use ltm_core::{LtmConfig, SampleSchedule};
use ltm_serve::http::http_call;
use ltm_serve::refit::RefitConfig;
use ltm_serve::server::{ServeConfig, Server};

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage:\n  ltm serve  [--addr A] [--shards N] [--threads N] [--chains N]\n\
         \x20            [--refit-claims N] [--refit-millis MS] [--rhat-gate X]\n\
         \x20            [--full-refit-every N] [--snapshot FILE] [--port-file FILE]\n\
         \x20            [--io-timeout-millis MS]\n\
         \x20 ltm ingest <TRIPLES.csv> [--addr A] [--batch N]\n\
         \x20 ltm query  <SOURCE=true|false>... [--addr A]"
    );
    std::process::exit(2);
}

fn parse_or_usage<T: std::str::FromStr>(value: Option<String>, what: &str) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{what} needs a valid value")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => serve(args),
        Some("ingest") => ingest(args),
        Some("query") => query(args),
        Some(other) => usage(&format!("unknown subcommand `{other}`")),
        None => usage("missing subcommand"),
    }
}

fn serve(mut args: impl Iterator<Item = String>) {
    let mut config = ServeConfig {
        refit: RefitConfig {
            ltm: LtmConfig {
                schedule: SampleSchedule::new(100, 20, 1),
                ..LtmConfig::default()
            },
            min_pending: 1000,
            interval: Duration::from_millis(500),
            ..RefitConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut port_file: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse_or_usage(args.next(), "--addr"),
            "--shards" => config.shards = parse_or_usage(args.next(), "--shards"),
            "--threads" => config.threads = parse_or_usage(args.next(), "--threads"),
            "--chains" => config.refit.chains = parse_or_usage(args.next(), "--chains"),
            "--refit-claims" => {
                config.refit.min_pending = parse_or_usage(args.next(), "--refit-claims")
            }
            "--refit-millis" => {
                config.refit.interval =
                    Duration::from_millis(parse_or_usage(args.next(), "--refit-millis"))
            }
            "--rhat-gate" => config.refit.rhat_gate = parse_or_usage(args.next(), "--rhat-gate"),
            // Every Nth daemon refit reconciles the incremental
            // accumulator with a from-zero rebuild; 0 disables.
            "--full-refit-every" => {
                config.refit.full_refit_every = parse_or_usage(args.next(), "--full-refit-every")
            }
            "--snapshot" => config.snapshot = Some(parse_or_usage(args.next(), "--snapshot")),
            "--port-file" => port_file = Some(parse_or_usage(args.next(), "--port-file")),
            // 0 disables the per-connection deadline (trusted peers only).
            "--io-timeout-millis" => {
                config.io_timeout =
                    Duration::from_millis(parse_or_usage(args.next(), "--io-timeout-millis"))
            }
            other => usage(&format!("unknown serve argument `{other}`")),
        }
    }
    let server = Server::start(config).unwrap_or_else(|e| {
        eprintln!("failed to start: {e}");
        std::process::exit(1);
    });
    println!("ltm serve listening on {}", server.addr());
    if let Some(path) = &port_file {
        std::fs::write(path, server.addr().to_string()).unwrap_or_else(|e| {
            eprintln!("failed to write port file: {e}");
            std::process::exit(1);
        });
    }
    server.wait_for_shutdown_request();
    println!("shutdown requested, stopping");
    if let Err(e) = server.shutdown() {
        eprintln!("shutdown error: {e}");
        std::process::exit(1);
    }
}

fn ingest(mut args: impl Iterator<Item = String>) {
    let mut file: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut batch = 1000usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_or_usage(args.next(), "--addr"),
            "--batch" => batch = parse_or_usage(args.next(), "--batch"),
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(PathBuf::from(other))
            }
            other => usage(&format!("unknown ingest argument `{other}`")),
        }
    }
    let file = file.unwrap_or_else(|| usage("ingest needs a triples file"));
    let raw = std::fs::File::open(&file)
        .map_err(|e| e.to_string())
        .and_then(|f| {
            ltm_model::io::read_triples(std::io::BufReader::new(f)).map_err(|e| e.to_string())
        })
        .unwrap_or_else(|e| {
            eprintln!("failed to read {}: {e}", file.display());
            std::process::exit(1);
        });

    let triples: Vec<(String, String, String)> = raw
        .iter_named()
        .map(|(e, a, s)| (e.to_owned(), a.to_owned(), s.to_owned()))
        .collect();
    let mut sent = 0usize;
    for chunk in triples.chunks(batch.max(1)) {
        let body = claims_body(chunk);
        match http_call(&addr, "POST", "/claims", Some(&body)) {
            Ok((200, _)) => sent += chunk.len(),
            Ok((status, response)) => {
                eprintln!("server rejected batch: HTTP {status}: {response}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("ingest failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("ingested {sent} triples from {}", file.display());
}

/// Renders a `/claims` body from named triples.
fn claims_body(triples: &[(String, String, String)]) -> String {
    let rows: Vec<Vec<&String>> = triples.iter().map(|(e, a, s)| vec![e, a, s]).collect();
    format!(
        "{{\"triples\":{}}}",
        serde_json::to_string(&rows).expect("serialize triples")
    )
}

fn query(mut args: impl Iterator<Item = String>) {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut claims: Vec<(String, bool)> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_or_usage(args.next(), "--addr"),
            other => match other.split_once('=') {
                Some((source, "true")) => claims.push((source.to_owned(), true)),
                Some((source, "false")) => claims.push((source.to_owned(), false)),
                _ => usage(&format!(
                    "query arguments look like SOURCE=true|false, got `{other}`"
                )),
            },
        }
    }
    if claims.is_empty() {
        usage("query needs at least one SOURCE=true|false claim");
    }
    let body = format!(
        "{{\"claims\":{}}}",
        serde_json::to_string(&claims).expect("serialize claims")
    );
    match http_call(&addr, "POST", "/query", Some(&body)) {
        Ok((200, response)) => println!("{response}"),
        Ok((status, response)) => {
            eprintln!("HTTP {status}: {response}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("query failed: {e}");
            std::process::exit(1);
        }
    }
}
