//! `ltm` — the truth-discovery service CLI.
//!
//! ```text
//! ltm serve  [--addr A] [--shards N] [--threads N] [--chains N]
//!            [--refit-claims N] [--refit-millis MS] [--rhat-gate X]
//!            [--full-refit-every N] [--snapshot FILE] [--port-file FILE]
//!            [--io-timeout-millis MS] [--domain NAME=KIND]...
//!            [--frontend auto|epoll|blocking]
//!            [--labels FILE] [--no-shadows]
//!            [--wal-dir DIR] [--wal-sync always|never|interval:MS]
//!            [--wal-segment-bytes N]
//!            [--log-level error|warn|info|debug] [--log-format text|json]
//! ltm ingest <TRIPLES.csv> [--addr A] [--batch N] [--domain NAME]
//! ltm query  <SOURCE=true|false|VALUE>... [--addr A] [--domain NAME]
//! ltm domain add <NAME> <KIND> [--addr A]
//! ltm domain list [--addr A]
//! ```
//!
//! `serve` runs the sharded multi-domain server until
//! `POST /admin/shutdown`; `--domain` (repeatable) pre-creates extra
//! domains beside the implicit boolean `default` (KIND is `boolean`,
//! `real_valued`, or `positive_only`). `--wal-dir` turns on the
//! write-ahead log: accepted batches are journaled and fsync'd (per
//! `--wal-sync`, default `always`) before the HTTP ack, segments rotate
//! at `--wal-segment-bytes` (default 8 MiB), and a restart replays the
//! tail — see DESIGN.md §6 "Durability". `--labels FILE` loads ground
//! truth (`entity,attribute,true|false` CSV, header row skipped) into the
//! default domain at boot so `GET /eval` can report per-method accuracy
//! from the first promoted refit; `--no-shadows` skips the per-epoch
//! baseline shadow fits (queries with `?methods=` beyond `ltm` then
//! answer 409). `--log-level` (default `info`)
//! and `--log-format` (default `text`; `json` emits one object per line
//! for log shippers) control the structured logger; `GET /metrics` on
//! the running server exposes the Prometheus-format counters and latency
//! histograms behind the same observability layer. `ingest` streams an
//! `entity,attribute,source[,value]` CSV into a running server (the
//! 4-column form for real-valued domains); `query` scores an ad-hoc
//! claim list (`SOURCE=true|false` for boolean domains, `SOURCE=0.87`
//! for real-valued ones) and prints the JSON response; `domain`
//! adds/lists domains on a running server. See docs/API.md for the HTTP
//! surface behind every subcommand.

// The CLI's error contract is a nonzero exit status: every exit site here
// runs after its work is done (or before any began), so there is no Drop
// state to lose. Library code stays under the workspace-wide ban.
#![allow(clippy::disallowed_methods)]

use std::path::PathBuf;
use std::time::Duration;

use ltm_core::{LtmConfig, SampleSchedule};
use ltm_serve::http::http_call;
use ltm_serve::model::ModelKind;
use ltm_serve::obs::log as obs_log;
use ltm_serve::refit::RefitConfig;
use ltm_serve::server::{ServeConfig, Server};
use ltm_serve::wal::{WalConfig, WalSyncPolicy};
use ltm_serve::DEFAULT_DOMAIN;

fn usage(msg: &str) -> ! {
    ltm_serve::log_error!("cli", "{msg}");
    eprintln!(
        "usage:\n  ltm serve  [--addr A] [--shards N] [--threads N] [--chains N]\n\
         \x20            [--refit-claims N] [--refit-millis MS] [--rhat-gate X]\n\
         \x20            [--full-refit-every N] [--snapshot FILE] [--port-file FILE]\n\
         \x20            [--io-timeout-millis MS] [--domain NAME=KIND]...\n\
         \x20            [--frontend auto|epoll|blocking]\n\
         \x20            [--labels FILE] [--no-shadows]\n\
         \x20            [--wal-dir DIR] [--wal-sync always|never|interval:MS]\n\
         \x20            [--wal-segment-bytes N]\n\
         \x20            [--log-level error|warn|info|debug] [--log-format text|json]\n\
         \x20 ltm ingest <TRIPLES.csv> [--addr A] [--batch N] [--domain NAME]\n\
         \x20 ltm query  <SOURCE=true|false|VALUE>... [--addr A] [--domain NAME]\n\
         \x20 ltm domain add <NAME> <KIND> [--addr A]\n\
         \x20 ltm domain list [--addr A]\n\
         KIND is boolean, real_valued, or positive_only."
    );
    std::process::exit(2);
}

fn parse_or_usage<T: std::str::FromStr>(value: Option<String>, what: &str) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{what} needs a valid value")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => serve(args),
        Some("ingest") => ingest(args),
        Some("query") => query(args),
        Some("domain") => domain(args),
        Some(other) => usage(&format!("unknown subcommand `{other}`")),
        None => usage("missing subcommand"),
    }
}

fn serve(mut args: impl Iterator<Item = String>) {
    let mut config = ServeConfig {
        refit: RefitConfig {
            ltm: LtmConfig {
                schedule: SampleSchedule::new(100, 20, 1),
                ..LtmConfig::default()
            },
            min_pending: 1000,
            interval: Duration::from_millis(500),
            ..RefitConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut port_file: Option<PathBuf> = None;
    let mut labels_file: Option<PathBuf> = None;
    let mut wal_dir: Option<PathBuf> = None;
    let mut wal_sync: Option<WalSyncPolicy> = None;
    let mut wal_segment_bytes: Option<u64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse_or_usage(args.next(), "--addr"),
            "--shards" => config.shards = parse_or_usage(args.next(), "--shards"),
            "--threads" => config.threads = parse_or_usage(args.next(), "--threads"),
            "--chains" => config.refit.chains = parse_or_usage(args.next(), "--chains"),
            "--refit-claims" => {
                config.refit.min_pending = parse_or_usage(args.next(), "--refit-claims")
            }
            "--refit-millis" => {
                config.refit.interval =
                    Duration::from_millis(parse_or_usage(args.next(), "--refit-millis"))
            }
            "--rhat-gate" => config.refit.rhat_gate = parse_or_usage(args.next(), "--rhat-gate"),
            // Every Nth daemon refit reconciles the incremental
            // accumulator with a from-zero rebuild; 0 disables.
            "--full-refit-every" => {
                config.refit.full_refit_every = parse_or_usage(args.next(), "--full-refit-every")
            }
            "--snapshot" => config.snapshot = Some(parse_or_usage(args.next(), "--snapshot")),
            "--port-file" => port_file = Some(parse_or_usage(args.next(), "--port-file")),
            // 0 disables the per-connection deadline (trusted peers only).
            "--io-timeout-millis" => {
                config.io_timeout =
                    Duration::from_millis(parse_or_usage(args.next(), "--io-timeout-millis"))
            }
            // Pre-create a domain at boot: --domain scores=real_valued
            "--domain" => {
                let spec: String = parse_or_usage(args.next(), "--domain");
                let Some((name, kind_text)) = spec.split_once('=') else {
                    usage("--domain takes NAME=KIND (e.g. scores=real_valued)");
                };
                let kind: ModelKind = kind_text
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("--domain: {e}")));
                config.domains.push((name.to_owned(), kind));
            }
            // Which HTTP front end serves connections: the epoll event
            // loop (keep-alive + pipelining; Linux), the blocking thread
            // pool (portable), or auto-pick (default).
            "--frontend" => {
                let text: String = parse_or_usage(args.next(), "--frontend");
                config.frontend = text
                    .parse()
                    .unwrap_or_else(|e: String| usage(&format!("--frontend: {e}")));
            }
            "--labels" => labels_file = Some(parse_or_usage(args.next(), "--labels")),
            "--no-shadows" => config.refit.shadows = false,
            "--wal-dir" => wal_dir = Some(parse_or_usage(args.next(), "--wal-dir")),
            "--wal-sync" => {
                let text: String = parse_or_usage(args.next(), "--wal-sync");
                wal_sync = Some(text.parse().unwrap_or_else(|e: String| usage(&e)));
            }
            "--wal-segment-bytes" => {
                let bytes: u64 = parse_or_usage(args.next(), "--wal-segment-bytes");
                if bytes == 0 {
                    usage("--wal-segment-bytes must be at least 1");
                }
                wal_segment_bytes = Some(bytes);
            }
            // Logger knobs take effect immediately, so later argument
            // errors in the same invocation already honor the format.
            "--log-level" => {
                let text: String = parse_or_usage(args.next(), "--log-level");
                let level = obs_log::Level::parse(&text).unwrap_or_else(|| {
                    usage(&format!(
                        "--log-level takes error|warn|info|debug, got `{text}`"
                    ))
                });
                obs_log::set_level(level);
            }
            "--log-format" => {
                let text: String = parse_or_usage(args.next(), "--log-format");
                let format = obs_log::Format::parse(&text).unwrap_or_else(|| {
                    usage(&format!("--log-format takes text|json, got `{text}`"))
                });
                obs_log::set_format(format);
            }
            other => usage(&format!("unknown serve argument `{other}`")),
        }
    }
    match wal_dir {
        Some(dir) => {
            let mut wal = WalConfig::new(dir);
            if let Some(sync) = wal_sync {
                wal.sync = sync;
            }
            if let Some(bytes) = wal_segment_bytes {
                wal.segment_bytes = bytes;
            }
            config.wal = Some(wal);
        }
        None if wal_sync.is_some() || wal_segment_bytes.is_some() => {
            usage("--wal-sync / --wal-segment-bytes need --wal-dir");
        }
        None => {}
    }
    // An unusable --wal-dir (or a corrupt WAL / snapshot) surfaces here
    // as a clean startup error, never a panic. The error line names every
    // path-bearing flag so the operator sees *which* configured location
    // failed, not just the bare io error text.
    let addr = config.addr.clone();
    let snapshot_flag = config.snapshot.clone();
    let wal_dir_flag = config.wal.as_ref().map(|w| w.dir.clone());
    let server = Server::start(config).unwrap_or_else(|e| {
        ltm_serve::log_error!(
            "serve",
            "failed to start on --addr {addr}: {e} (--wal-dir {}, --snapshot {})",
            wal_dir_flag
                .as_deref()
                .map_or("unset".to_owned(), |p| p.display().to_string()),
            snapshot_flag
                .as_deref()
                .map_or("unset".to_owned(), |p| p.display().to_string()),
        );
        std::process::exit(1);
    });
    // Labels load before the port file is written, so anything watching
    // the port file sees a server whose /eval is already primed.
    if let Some(path) = &labels_file {
        let rows = read_labels(path).unwrap_or_else(|e| {
            ltm_serve::log_error!("serve", "failed to read --labels {}: {e}", path.display());
            std::process::exit(1);
        });
        let loaded = rows.len();
        let total = server.domains().default_domain().add_labels(rows);
        println!(
            "loaded {loaded} labels ({total} total) from {}",
            path.display()
        );
    }
    println!("ltm serve listening on {}", server.addr());
    for domain in server.domains().list() {
        println!("  domain {} ({})", domain.name(), domain.kind());
    }
    if let Some(path) = &port_file {
        std::fs::write(path, server.addr().to_string()).unwrap_or_else(|e| {
            ltm_serve::log_error!(
                "serve",
                "failed to write --port-file {}: {e}",
                path.display()
            );
            std::process::exit(1);
        });
    }
    server.wait_for_shutdown_request();
    println!("shutdown requested, stopping");
    if let Err(e) = server.shutdown() {
        ltm_serve::log_error!("serve", "shutdown error: {e}");
        std::process::exit(1);
    }
}

/// The `/claims` route for `domain` (`/claims` for the default domain,
/// `/d/{domain}/claims` otherwise) — same scheme for the other routes.
fn domain_route(domain: &str, rest: &str) -> String {
    if domain == DEFAULT_DOMAIN {
        rest.to_owned()
    } else {
        format!("/d/{domain}{rest}")
    }
}

/// One parsed CSV row: 3 fields (boolean domains) or 4 with a trailing
/// numeric value (real-valued domains).
enum CsvRow {
    Triple(String, String, String),
    Valued(String, String, String, f64),
}

/// Reads an `entity,attribute,source[,value]` CSV (header row skipped).
/// Fields follow the workspace's triples format — RFC-4180-style quoting
/// via [`ltm_model::io::split_record`], so files produced by
/// `ltm_model::io::write_triples` (including names with embedded commas)
/// ingest unchanged; the 4-column form requires a finite numeric value.
fn read_rows(path: &PathBuf) -> Result<Vec<CsvRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.is_empty() {
            continue; // header / blank
        }
        let line_no = i + 1;
        let fields = ltm_model::io::split_record(line, line_no).map_err(|e| e.to_string())?;
        match fields.as_slice() {
            [e, a, s] => rows.push(CsvRow::Triple(e.clone(), a.clone(), s.clone())),
            [e, a, s, v] => {
                let value: f64 = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad value {v:?}"))?;
                if !value.is_finite() {
                    return Err(format!("line {line_no}: value must be finite, got {v:?}"));
                }
                rows.push(CsvRow::Valued(e.clone(), a.clone(), s.clone(), value));
            }
            other => {
                return Err(format!(
                    "line {line_no}: expected 3 or 4 fields, found {}",
                    other.len()
                ))
            }
        }
    }
    Ok(rows)
}

/// Reads an `entity,attribute,true|false` ground-truth CSV (header row
/// skipped) for `serve --labels`, with the same RFC-4180-style quoting
/// as [`read_rows`].
fn read_labels(path: &PathBuf) -> Result<Vec<(String, String, bool)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.is_empty() {
            continue; // header / blank
        }
        let line_no = i + 1;
        let fields = ltm_model::io::split_record(line, line_no).map_err(|e| e.to_string())?;
        match fields.as_slice() {
            [e, a, t] => {
                let truth = match t.trim() {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(format!(
                            "line {line_no}: label must be true|false, got {other:?}"
                        ))
                    }
                };
                rows.push((e.clone(), a.clone(), truth));
            }
            other => {
                return Err(format!(
                    "line {line_no}: expected 3 fields (entity,attribute,true|false), found {}",
                    other.len()
                ))
            }
        }
    }
    Ok(rows)
}

fn ingest(mut args: impl Iterator<Item = String>) {
    let mut file: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut batch = 1000usize;
    let mut domain = DEFAULT_DOMAIN.to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_or_usage(args.next(), "--addr"),
            "--batch" => batch = parse_or_usage(args.next(), "--batch"),
            "--domain" => domain = parse_or_usage(args.next(), "--domain"),
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(PathBuf::from(other))
            }
            other => usage(&format!("unknown ingest argument `{other}`")),
        }
    }
    let file = file.unwrap_or_else(|| usage("ingest needs a triples file"));
    let rows = read_rows(&file).unwrap_or_else(|e| {
        ltm_serve::log_error!("ingest", "failed to read {}: {e}", file.display());
        std::process::exit(1);
    });

    let route = domain_route(&domain, "/claims");
    let mut sent = 0usize;
    for chunk in rows.chunks(batch.max(1)) {
        let body = claims_body(chunk);
        match http_call(&addr, "POST", &route, Some(&body)) {
            Ok((200, _)) => sent += chunk.len(),
            Ok((status, response)) => {
                ltm_serve::log_error!("ingest", "server rejected batch: HTTP {status}: {response}");
                std::process::exit(1);
            }
            Err(e) => {
                ltm_serve::log_error!("ingest", "ingest failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "ingested {sent} rows from {} into domain {domain}",
        file.display()
    );
}

/// Renders a `/claims` body from CSV rows.
fn claims_body(rows: &[CsvRow]) -> String {
    let rendered: Vec<String> = rows
        .iter()
        .map(|row| match row {
            CsvRow::Triple(e, a, s) => serde_json::to_string(&vec![e, a, s]).expect("serialize"),
            CsvRow::Valued(e, a, s, v) => format!(
                "[{},{},{},{v}]",
                serde_json::to_string(e).expect("serialize"),
                serde_json::to_string(a).expect("serialize"),
                serde_json::to_string(s).expect("serialize"),
            ),
        })
        .collect();
    format!("{{\"triples\":[{}]}}", rendered.join(","))
}

fn query(mut args: impl Iterator<Item = String>) {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut domain = DEFAULT_DOMAIN.to_string();
    let mut claims: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_or_usage(args.next(), "--addr"),
            "--domain" => domain = parse_or_usage(args.next(), "--domain"),
            other => match other.split_once('=') {
                Some((source, "true")) => {
                    claims.push(format!(
                        "[{},true]",
                        serde_json::to_string(&source.to_owned()).expect("serialize")
                    ));
                }
                Some((source, "false")) => {
                    claims.push(format!(
                        "[{},false]",
                        serde_json::to_string(&source.to_owned()).expect("serialize")
                    ));
                }
                Some((source, value)) => match value.parse::<f64>() {
                    Ok(v) if v.is_finite() => claims.push(format!(
                        "[{},{v}]",
                        serde_json::to_string(&source.to_owned()).expect("serialize")
                    )),
                    _ => usage(&format!(
                        "query arguments look like SOURCE=true|false (boolean domains) or \
                         SOURCE=0.87 (real-valued domains), got `{other}`"
                    )),
                },
                None => usage(&format!(
                    "query arguments look like SOURCE=true|false|VALUE, got `{other}`"
                )),
            },
        }
    }
    if claims.is_empty() {
        usage("query needs at least one SOURCE=… claim");
    }
    let body = format!("{{\"claims\":[{}]}}", claims.join(","));
    let route = domain_route(&domain, "/query");
    match http_call(&addr, "POST", &route, Some(&body)) {
        Ok((200, response)) => println!("{response}"),
        Ok((status, response)) => {
            ltm_serve::log_error!("query", "HTTP {status}: {response}");
            std::process::exit(1);
        }
        Err(e) => {
            ltm_serve::log_error!("query", "query failed: {e}");
            std::process::exit(1);
        }
    }
}

fn domain(mut args: impl Iterator<Item = String>) {
    match args.next().as_deref() {
        Some("add") => {
            let name = args
                .next()
                .unwrap_or_else(|| usage("domain add needs a NAME"));
            let kind_text = args
                .next()
                .unwrap_or_else(|| usage("domain add needs a KIND"));
            let kind: ModelKind = kind_text
                .parse()
                .unwrap_or_else(|e| usage(&format!("domain add: {e}")));
            let mut addr = "127.0.0.1:7878".to_string();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--addr" => addr = parse_or_usage(args.next(), "--addr"),
                    other => usage(&format!("unknown domain add argument `{other}`")),
                }
            }
            let body = format!(
                "{{\"name\":{},\"kind\":\"{kind}\"}}",
                serde_json::to_string(&name).expect("serialize")
            );
            match http_call(&addr, "POST", "/admin/domains", Some(&body)) {
                Ok((201, response)) => println!("{response}"),
                Ok((status, response)) => {
                    ltm_serve::log_error!("domain", "HTTP {status}: {response}");
                    std::process::exit(1);
                }
                Err(e) => {
                    ltm_serve::log_error!("domain", "domain add failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("list") => {
            let mut addr = "127.0.0.1:7878".to_string();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--addr" => addr = parse_or_usage(args.next(), "--addr"),
                    other => usage(&format!("unknown domain list argument `{other}`")),
                }
            }
            match http_call(&addr, "GET", "/domains", None) {
                Ok((200, response)) => println!("{response}"),
                Ok((status, response)) => {
                    ltm_serve::log_error!("domain", "HTTP {status}: {response}");
                    std::process::exit(1);
                }
                Err(e) => {
                    ltm_serve::log_error!("domain", "domain list failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => usage(&format!(
            "domain subcommands are `add` and `list`, got {other:?}"
        )),
    }
}
