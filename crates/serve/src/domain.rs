//! Named domains: one independently-served model universe per name.
//!
//! A [`Domain`] bundles everything one model needs to serve and learn —
//! its own sharded [`ShardedStore`], epoch-swapped
//! [`EpochPredictor`], refit accumulator ([`RefitState`]), and a
//! dedicated background [`RefitDaemon`] — bound to one
//! [`ModelKind`]. Domains share nothing but the process: a slow
//! real-valued fold in one domain can never delay another domain's
//! promotion, because every daemon is its own thread folding its own
//! store under its own refit lock.
//!
//! [`DomainSet`] is the server's registry: insertion-ordered (stable
//! `/stats` sections and snapshot layout), name-addressed (the `/d/{domain}/…`
//! routes), always containing the [`DEFAULT_DOMAIN`] that the legacy
//! un-prefixed routes address.

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::epoch::{EpochPredictor, EpochSnapshot};
use crate::model::ModelKind;
use crate::refit::{RefitConfig, RefitDaemon, RefitState};
use crate::store::{BatchOutcome, JournalFn, LogRecord, ShardedStore};
use crate::sync::{LockExt, RwLockExt};
use crate::wal::DomainWal;

/// The domain addressed by the legacy un-prefixed routes (`/claims`,
/// `/query`, …) and created implicitly at every boot.
pub const DEFAULT_DOMAIN: &str = "default";

/// Maximum accepted domain-name length.
pub const MAX_DOMAIN_NAME: usize = 64;

/// Validates a domain name: 1–64 chars of `[A-Za-z0-9_-]` (URL-safe and
/// unambiguous in `/d/{domain}/…` paths).
pub fn validate_domain_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > MAX_DOMAIN_NAME {
        return Err(format!(
            "domain name must be 1..={MAX_DOMAIN_NAME} characters, got {}",
            name.len()
        ));
    }
    if let Some(c) = name
        .chars()
        .find(|c| !c.is_ascii_alphanumeric() && *c != '_' && *c != '-')
    {
        return Err(format!(
            "domain name may only contain [A-Za-z0-9_-], got {c:?}"
        ));
    }
    Ok(())
}

/// One named model universe. See the module docs.
#[derive(Debug)]
pub struct Domain {
    name: String,
    kind: ModelKind,
    store: Arc<ShardedStore>,
    predictor: Arc<EpochPredictor>,
    refit_state: Arc<Mutex<RefitState>>,
    refit_lock: Arc<Mutex<()>>,
    /// Spawned after snapshot restore (so the first refit sees the
    /// restored accumulator), and immediately for runtime-created
    /// domains.
    daemon: OnceLock<RefitDaemon>,
    /// Attached after WAL replay when the server runs with `--wal-dir`;
    /// absent on WAL-less servers (the pre-durability behaviour).
    wal: OnceLock<Arc<DomainWal>>,
    /// Ingest metric handles attached by the server (absent in bare
    /// tests, where ingest records nothing).
    obs: OnceLock<DomainObs>,
    /// Ground-truth labels keyed by `(entity, attr)` names, loaded via
    /// `--labels` or `POST …/admin/labels` and joined against the shadow
    /// tables by `GET …/eval`. Held only for short copies — never across
    /// any store or epoch lock.
    labels: Mutex<HashMap<(String, String), bool>>,
}

/// Per-domain ingest metric handles, labeled `domain=`.
#[derive(Debug, Clone)]
pub struct DomainObs {
    /// Distribution of rows per ingest batch (`ltm_ingest_batch_rows`).
    pub batch_rows: Arc<crate::obs::Histogram>,
    /// Lifetime accepted rows (`ltm_ingest_rows_accepted_total`).
    pub rows_accepted: Arc<crate::obs::Counter>,
    /// Lifetime exact-duplicate rows
    /// (`ltm_ingest_rows_duplicate_total`); with `rows_accepted` this
    /// gives the dedup rate.
    pub rows_duplicate: Arc<crate::obs::Counter>,
}

impl DomainObs {
    /// Registers (or re-fetches) the ingest metric family for `domain`.
    pub fn for_domain(registry: &crate::obs::Registry, domain: &str) -> Self {
        let labels = &[("domain", domain)];
        DomainObs {
            batch_rows: registry.histogram(
                "ltm_ingest_batch_rows",
                labels,
                crate::obs::Unit::Count,
            ),
            rows_accepted: registry.counter("ltm_ingest_rows_accepted_total", labels),
            rows_duplicate: registry.counter("ltm_ingest_rows_duplicate_total", labels),
        }
    }
}

impl Domain {
    /// Creates a domain **without** spawning its refit daemon — the boot
    /// path, where snapshot restore must land before the first refit.
    /// Call [`Domain::spawn_daemon`] once restore has finished.
    pub fn new(name: &str, kind: ModelKind, shards: usize, refit: &RefitConfig) -> Arc<Domain> {
        Arc::new(Domain {
            name: name.to_owned(),
            kind,
            store: Arc::new(ShardedStore::new(shards)),
            predictor: Arc::new(EpochPredictor::with_boot(EpochSnapshot::boot_for(
                kind,
                &refit.ltm.priors,
                &refit.real,
            ))),
            refit_state: Arc::new(Mutex::new(RefitState::new())),
            refit_lock: Arc::new(Mutex::new(())),
            daemon: OnceLock::new(),
            wal: OnceLock::new(),
            obs: OnceLock::new(),
            labels: Mutex::new(HashMap::new()),
        })
    }

    /// Merges ground-truth labels into the domain's label set (later
    /// labels for the same `(entity, attr)` win) and returns the total
    /// number of labels now loaded.
    pub fn add_labels(&self, rows: impl IntoIterator<Item = (String, String, bool)>) -> usize {
        let mut labels = self.labels.locked();
        for (entity, attr, truth) in rows {
            labels.insert((entity, attr), truth);
        }
        labels.len()
    }

    /// A snapshot of the loaded ground-truth labels.
    pub fn labels(&self) -> Vec<(String, String, bool)> {
        self.labels
            .locked()
            .iter()
            .map(|((e, a), &t)| (e.clone(), a.clone(), t))
            .collect()
    }

    /// Number of ground-truth labels currently loaded.
    pub fn num_labels(&self) -> usize {
        self.labels.locked().len()
    }

    /// Attaches ingest metric handles (idempotent — first attachment
    /// wins).
    pub fn attach_obs(&self, obs: DomainObs) {
        let _ = self.obs.set(obs);
    }

    /// Attaches the domain's write-ahead log (idempotent; the boot path
    /// calls it once, after [`crate::wal::DomainWal::open`] has replayed
    /// the tail into this domain's store).
    pub fn attach_wal(&self, wal: Arc<DomainWal>) {
        let _ = self.wal.set(wal);
    }

    /// The domain's write-ahead log, when one is attached.
    pub fn wal(&self) -> Option<&Arc<DomainWal>> {
        self.wal.get()
    }

    /// Ingests a batch of rows atomically with respect to durability:
    /// the accepted rows are journaled to the WAL as **one record while
    /// the store's ingest-order lock is held**, then (lock released)
    /// fsync'd per the sync policy. Only after both succeed may the
    /// caller ack. Without an attached WAL this is just the batched
    /// in-memory ingest.
    ///
    /// On a WAL error the rows are already live in memory (reads see
    /// them; pending counts them); the caller must *not* ack. The WAL
    /// keeps the failed frame queued and re-journals it ahead of any
    /// later append ([`crate::wal::DomainWal::append_batch`]), so the
    /// on-disk log never gaps. A retry of the failed batch deduplicates
    /// against the rows already in memory (`accepted == 0`, no journal
    /// callback runs) — so before acking a duplicate-only batch this
    /// flushes the backlog explicitly: a 200 must never cover rows the
    /// WAL does not hold.
    pub fn ingest_batch(&self, rows: &[LogRecord]) -> io::Result<BatchOutcome> {
        let journal_fn;
        let journal: Option<JournalFn<'_>> = match self.wal.get() {
            Some(wal) => {
                let wal = Arc::clone(wal);
                journal_fn =
                    move |seq: u64, accepted: &[LogRecord]| wal.append_batch(seq, accepted);
                Some(&journal_fn)
            }
            None => None,
        };
        let outcome = self.store.ingest_batch(rows, journal)?;
        if let Some(obs) = self.obs.get() {
            obs.batch_rows.record(rows.len() as u64);
            obs.rows_accepted.add(outcome.accepted);
            obs.rows_duplicate.add(outcome.duplicates);
        }
        if let Some(wal) = self.wal.get() {
            if outcome.accepted == 0 {
                wal.flush_backlog()?;
            }
            wal.sync_for_ack()?;
        }
        Ok(outcome)
    }

    /// Spawns the domain's background refit daemon (idempotent: a second
    /// call is a no-op).
    pub fn spawn_daemon(&self, config: RefitConfig) {
        self.daemon.get_or_init(|| {
            RefitDaemon::spawn(
                Arc::clone(&self.store),
                Arc::clone(&self.predictor),
                self.kind,
                config,
                Arc::clone(&self.refit_state),
                Arc::clone(&self.refit_lock),
            )
        });
    }

    /// The domain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model kind the domain runs.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The domain's claim store.
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// The domain's epoch-swapped predictor.
    pub fn predictor(&self) -> &Arc<EpochPredictor> {
        &self.predictor
    }

    /// The domain's refit accumulator state.
    pub fn refit_state(&self) -> &Arc<Mutex<RefitState>> {
        &self.refit_state
    }

    /// The lock the domain's refit daemon holds for the duration of
    /// every refit (tests acquire it to hold the daemon hostage).
    pub fn refit_lock(&self) -> &Arc<Mutex<()>> {
        &self.refit_lock
    }

    /// The background daemon, if already spawned.
    pub fn daemon(&self) -> Option<&RefitDaemon> {
        self.daemon.get()
    }

    /// Forces a refit pass (the daemon's schedule picks the mode).
    pub fn trigger_refit(&self) {
        if let Some(d) = self.daemon.get() {
            d.trigger();
        }
    }

    /// Forces a full (reconciliation) refit pass.
    pub fn trigger_full_refit(&self) {
        if let Some(d) = self.daemon.get() {
            d.trigger_full();
        }
    }

    /// Stops the domain's daemon and joins its thread (idempotent; a
    /// never-spawned daemon is a no-op).
    pub fn shutdown(&self) {
        if let Some(d) = self.daemon.get() {
            d.shutdown();
        }
    }
}

/// Error inserting a domain into a [`DomainSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// A domain with that name already exists.
    AlreadyExists(String),
    /// The name failed [`validate_domain_name`].
    InvalidName(String),
    /// The domain's write-ahead log could not be opened (WAL-enabled
    /// servers refuse to create a domain that cannot journal).
    Wal(String),
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::AlreadyExists(name) => write!(f, "domain `{name}` already exists"),
            DomainError::InvalidName(msg) => f.write_str(msg),
            DomainError::Wal(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for DomainError {}

/// The server's domain registry: insertion-ordered, name-addressed.
#[derive(Debug, Default)]
pub struct DomainSet {
    domains: RwLock<Vec<Arc<Domain>>>,
}

impl DomainSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves a domain by name.
    pub fn get(&self, name: &str) -> Option<Arc<Domain>> {
        self.domains
            .read_locked()
            .iter()
            .find(|d| d.name() == name)
            .cloned()
    }

    /// The [`DEFAULT_DOMAIN`].
    ///
    /// # Panics
    ///
    /// Panics if the default domain was never inserted (the server boot
    /// path always inserts it first).
    pub fn default_domain(&self) -> Arc<Domain> {
        // analyzer: allow(panic-expect) -- documented panic; every boot path inserts the default domain first
        self.get(DEFAULT_DOMAIN).expect("default domain exists")
    }

    /// Every domain, in insertion order.
    pub fn list(&self) -> Vec<Arc<Domain>> {
        self.domains.read_locked().clone()
    }

    /// Inserts a new domain, rejecting duplicates and invalid names.
    pub fn insert(&self, domain: Arc<Domain>) -> Result<(), DomainError> {
        validate_domain_name(domain.name()).map_err(DomainError::InvalidName)?;
        let mut domains = self.domains.write_locked();
        if domains.iter().any(|d| d.name() == domain.name()) {
            return Err(DomainError::AlreadyExists(domain.name().to_owned()));
        }
        domains.push(domain);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_with_default() -> DomainSet {
        let set = DomainSet::new();
        set.insert(Domain::new(
            DEFAULT_DOMAIN,
            ModelKind::Boolean,
            2,
            &RefitConfig::default(),
        ))
        .unwrap();
        set
    }

    #[test]
    fn insert_get_and_ordering() {
        let set = set_with_default();
        set.insert(Domain::new(
            "scores",
            ModelKind::RealValued,
            2,
            &RefitConfig::default(),
        ))
        .unwrap();
        assert_eq!(set.default_domain().kind(), ModelKind::Boolean);
        assert_eq!(set.get("scores").unwrap().kind(), ModelKind::RealValued);
        assert!(set.get("nope").is_none());
        let names: Vec<String> = set.list().iter().map(|d| d.name().to_owned()).collect();
        assert_eq!(names, vec!["default", "scores"]);
    }

    #[test]
    fn duplicate_and_invalid_names_rejected() {
        let set = set_with_default();
        let dup = Domain::new(
            DEFAULT_DOMAIN,
            ModelKind::Boolean,
            2,
            &RefitConfig::default(),
        );
        assert_eq!(
            set.insert(dup),
            Err(DomainError::AlreadyExists("default".into()))
        );
        for bad in ["", "has space", "a/b", &"x".repeat(65)] {
            assert!(validate_domain_name(bad).is_err(), "{bad:?}");
        }
        for good in ["a", "movie-directors", "scores_2", &"x".repeat(64)] {
            assert!(validate_domain_name(good).is_ok(), "{good:?}");
        }
    }

    #[test]
    fn real_domain_boots_a_real_predictor() {
        let d = Domain::new("r", ModelKind::RealValued, 1, &RefitConfig::default());
        assert!(d.predictor().load().predictor.as_real().is_some());
        let b = Domain::new("b", ModelKind::PositiveOnly, 1, &RefitConfig::default());
        assert!(b.predictor().load().predictor.as_boolean().is_some());
        // Triggers before the daemon spawns are harmless no-ops.
        d.trigger_refit();
        d.shutdown();
    }
}
