//! Structured, leveled logging to stderr.
//!
//! A process-global level/format pair (plain atomics — no allocation, no
//! lazy statics) gates the `log_error!` … `log_debug!` macros. Lines carry
//! an RFC 3339 UTC timestamp, the level, a short target (subsystem name),
//! and the message; `--log-format json` switches to one JSON object per
//! line for log shippers. Request handlers tag their lines with an id from
//! [`next_request_id`] so concurrent requests can be teased apart.

use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or operator-actionable failures.
    Error = 0,
    /// Degraded-but-running conditions (fsync failures, re-journal queues).
    Warn = 1,
    /// Lifecycle events (epoch published, WAL replayed, server listening).
    Info = 2,
    /// Per-request and per-phase detail.
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    /// Parse a level name (case-insensitive). Accepts `error`, `warn`,
    /// `info`, `debug`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Output format for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable single-line text (default).
    Text,
    /// One JSON object per line: `{"ts":…,"level":…,"target":…,"msg":…}`.
    Json,
}

impl Format {
    /// Parse a format name (case-insensitive). Accepts `text`, `json`.
    pub fn parse(s: &str) -> Option<Format> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = Text, 1 = Json
static REQUEST_ID: AtomicU64 = AtomicU64::new(0);

/// Set the global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Set the global log format.
pub fn set_format(format: Format) {
    FORMAT.store(matches!(format, Format::Json) as u8, Ordering::Relaxed);
}

/// Whether a message at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Allocate the next request id (process-unique, monotonically increasing).
pub fn next_request_id() -> u64 {
    REQUEST_ID.fetch_add(1, Ordering::Relaxed) + 1
}

/// Emit one log line. Prefer the `log_*!` macros, which check [`enabled`]
/// before formatting.
pub fn write(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let ts = rfc3339_now();
    let msg = args.to_string();
    let line = if FORMAT.load(Ordering::Relaxed) == 1 {
        format!(
            "{{\"ts\":\"{ts}\",\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"}}\n",
            level.as_str(),
            json_escape(target),
            json_escape(&msg)
        )
    } else {
        format!("{ts} {:5} [{target}] {msg}\n", level.as_str())
    };
    let stderr = std::io::stderr();
    let mut guard = stderr.lock();
    let _ = guard.write_all(line.as_bytes());
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Current time as an RFC 3339 UTC timestamp with millisecond precision.
pub fn rfc3339_now() -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let secs = now.as_secs() as i64;
    let millis = now.subsec_millis();
    let days = secs.div_euclid(86_400);
    let tod = secs.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60
    )
}

/// Convert days since 1970-01-01 to a (year, month, day) civil date.
/// Howard Hinnant's `civil_from_days` algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Log at [`Level::Error`]: `log_error!("target", "format", args…)`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::obs::log::enabled($crate::obs::log::Level::Error) {
            $crate::obs::log::write(
                $crate::obs::log::Level::Error, $target, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Warn`]: `log_warn!("target", "format", args…)`.
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::obs::log::enabled($crate::obs::log::Level::Warn) {
            $crate::obs::log::write(
                $crate::obs::log::Level::Warn, $target, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`]: `log_info!("target", "format", args…)`.
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::obs::log::enabled($crate::obs::log::Level::Info) {
            $crate::obs::log::write(
                $crate::obs::log::Level::Info, $target, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`]: `log_debug!("target", "format", args…)`.
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::obs::log::enabled($crate::obs::log::Level::Debug) {
            $crate::obs::log::write(
                $crate::obs::log::Level::Debug, $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_round_trips() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
        assert_eq!(Format::parse("JSON"), Some(Format::Json));
        assert_eq!(Format::parse("xml"), None);
    }

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn timestamp_shape_is_rfc3339() {
        let ts = rfc3339_now();
        assert_eq!(ts.len(), 24, "{ts}");
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
        assert!(ts.ends_with('Z'));
    }

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
