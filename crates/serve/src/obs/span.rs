//! RAII timing spans and scoped gauges.
//!
//! A [`SpanTimer`] measures the wall-clock time between its construction and
//! drop and records it (as microseconds) into a histogram — so a phase is
//! timed correctly even on early return or panic-unwind. A [`ScopedGauge`]
//! increments a gauge for its lifetime, giving an in-flight count.

use std::sync::Arc;
use std::time::Instant;

use super::histogram::Histogram;
use super::registry::Gauge;

/// Records elapsed time into a histogram when dropped.
#[derive(Debug)]
pub struct SpanTimer {
    hist: Arc<Histogram>,
    started: Instant,
}

impl SpanTimer {
    /// Start timing; the span ends (and records) when the value is dropped.
    pub fn start(hist: &Arc<Histogram>) -> SpanTimer {
        SpanTimer {
            hist: Arc::clone(hist),
            started: Instant::now(),
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.record_duration(self.started.elapsed());
    }
}

/// Time a closure and record its duration into `hist`.
pub fn time<R>(hist: &Arc<Histogram>, f: impl FnOnce() -> R) -> R {
    let _span = SpanTimer::start(hist);
    f()
}

/// Holds a gauge incremented for the lifetime of the value.
#[derive(Debug)]
pub struct ScopedGauge {
    gauge: Arc<Gauge>,
}

impl ScopedGauge {
    /// Increment `gauge`; it is decremented when the value is dropped.
    pub fn enter(gauge: &Arc<Gauge>) -> ScopedGauge {
        gauge.inc();
        ScopedGauge {
            gauge: Arc::clone(gauge),
        }
    }
}

impl Drop for ScopedGauge {
    fn drop(&mut self) {
        self.gauge.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _s = SpanTimer::start(&h);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(
            h.sum() >= 1_000,
            "expected >= 1ms recorded, got {}µs",
            h.sum()
        );
    }

    #[test]
    fn time_returns_the_closure_value() {
        let h = Arc::new(Histogram::new());
        let v = time(&h, || 42);
        assert_eq!(v, 42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn scoped_gauge_tracks_lifetime() {
        let g = Arc::new(Gauge::default());
        {
            let _a = ScopedGauge::enter(&g);
            let _b = ScopedGauge::enter(&g);
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
    }
}
