//! Process-wide metrics registry.
//!
//! The registry hands out `Arc` handles to named counters, gauges, and
//! histograms keyed by `(name, labels)`. Handles are cheap to clone and
//! record through atomics; the registry lock is only taken at registration
//! time and when rendering, never on the hot recording path.
//!
//! [`Registry::render_prometheus`] emits the Prometheus text exposition
//! format (version 0.0.4). Histograms are rendered as `summary` series —
//! `name{quantile="…"}`, `name_sum`, `name_count` — which keeps the output
//! compact (4 quantiles instead of 592 cumulative buckets) while every line
//! still parses as `name{labels} value`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use super::histogram::Histogram;

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Scale applied to histogram values when rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Values are microseconds; rendered divided by 1e6 (metric named `*_seconds`).
    Micros,
    /// Values are plain counts; rendered as-is.
    Count,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>, Unit),
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// Registry of named metrics. One per server; shared via `Arc`.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want.iter())
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter() {
            if e.name == name && labels_match(&e.labels, labels) {
                if let Metric::Counter(c) = &e.metric {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::default());
        entries.push(Entry {
            name: name.to_string(),
            labels: owned(labels),
            metric: Metric::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Get or register the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter() {
            if e.name == name && labels_match(&e.labels, labels) {
                if let Metric::Gauge(g) = &e.metric {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::default());
        entries.push(Entry {
            name: name.to_string(),
            labels: owned(labels),
            metric: Metric::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Get or register the histogram `name{labels}` with render unit `unit`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], unit: Unit) -> Arc<Histogram> {
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter() {
            if e.name == name && labels_match(&e.labels, labels) {
                if let Metric::Histogram(h, _) = &e.metric {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Histogram::new());
        entries.push(Entry {
            name: name.to_string(),
            labels: owned(labels),
            metric: Metric::Histogram(Arc::clone(&h), unit),
        });
        h
    }

    /// Render every registered metric in Prometheus text exposition format,
    /// appending to `out`. Series sharing a name are grouped under a single
    /// `# TYPE` header in first-registration order.
    pub fn render_prometheus(&self, out: &mut String) {
        let entries = self.entries.lock().unwrap();
        let mut order: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !order.contains(&e.name.as_str()) {
                order.push(&e.name);
            }
        }
        for name in order {
            let group: Vec<&Entry> = entries.iter().filter(|e| e.name == name).collect();
            let kind = match group[0].metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(..) => "summary",
            };
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for e in &group {
                match &e.metric {
                    Metric::Counter(c) => {
                        push_line(out, name, &e.labels, None, &c.get().to_string());
                    }
                    Metric::Gauge(g) => {
                        push_line(out, name, &e.labels, None, &g.get().to_string());
                    }
                    Metric::Histogram(h, unit) => {
                        let scale = match unit {
                            Unit::Micros => 1e-6,
                            Unit::Count => 1.0,
                        };
                        for q in ["0.5", "0.9", "0.99", "0.999"] {
                            let v = h.quantile(q.parse().unwrap()) as f64 * scale;
                            push_line(out, name, &e.labels, Some(("quantile", q)), &fmt_f64(v));
                        }
                        let sum = h.sum() as f64 * scale;
                        push_line(out, &format!("{name}_sum"), &e.labels, None, &fmt_f64(sum));
                        push_line(
                            out,
                            &format!("{name}_count"),
                            &e.labels,
                            None,
                            &h.count().to_string(),
                        );
                    }
                }
            }
        }
    }
}

fn owned(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Format one exposition line: `name{labels} value`.
fn push_line(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    let has_labels = !labels.is_empty() || extra.is_some();
    if has_labels {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Escape a label value per the exposition format.
pub fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render an f64 without losing small magnitudes (Rust's `Display` for f64
/// never switches to exponent notation in our value range).
pub fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("domain", "default")]);
        let b = r.counter("x_total", &[("domain", "default")]);
        a.inc();
        assert_eq!(b.get(), 1);
        let other = r.counter("x_total", &[("domain", "other")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn render_groups_series_under_one_type_header() {
        let r = Registry::new();
        r.counter("a_total", &[("domain", "x")]).add(3);
        r.counter("a_total", &[("domain", "y")]).add(4);
        r.gauge("b", &[]).set(-2);
        let h = r.histogram("c_seconds", &[], Unit::Micros);
        h.record(1_000_000);
        let mut out = String::new();
        r.render_prometheus(&mut out);
        assert_eq!(out.matches("# TYPE a_total counter").count(), 1);
        assert!(out.contains("a_total{domain=\"x\"} 3\n"));
        assert!(out.contains("a_total{domain=\"y\"} 4\n"));
        assert!(out.contains("b -2\n"));
        assert!(out.contains("# TYPE c_seconds summary"));
        assert!(out.contains("c_seconds_count 1\n"));
        // 1s recorded in µs renders near 1.0 after scaling.
        assert!(out.contains("c_seconds{quantile=\"0.5\"} 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
