//! Lock-free log-linear latency histogram.
//!
//! Values are recorded as non-negative integers (the serve stack records
//! **microseconds** for durations and raw counts for size distributions).
//! Buckets follow the HDR-histogram log-linear scheme: values below 16 get
//! exact unit-width buckets; above that, each power-of-two range is split
//! into 16 linear sub-buckets, so any recorded value lands in a bucket whose
//! width is at most 1/16th of its magnitude (≤ 6.25% relative error).
//!
//! Recording is a single relaxed `fetch_add` on an `AtomicU64` — no locks,
//! no allocation — so it is safe to call from request handlers, the WAL
//! append path, and refit daemons without perturbing what is being measured.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of linear sub-buckets per power-of-two tier.
const SUB_BUCKETS: usize = 16;

/// Highest power-of-two tier tracked. Values at or above 2^40 (about 12.7
/// days when recording microseconds) are clamped into the final bucket.
const MAX_TIER: usize = 36;

/// Total bucket count: 16 exact unit buckets plus 16 sub-buckets for each
/// of the 36 log tiers covering [16, 2^40).
const NUM_BUCKETS: usize = SUB_BUCKETS * (MAX_TIER + 1);

/// Largest value stored without clamping.
const MAX_VALUE: u64 = (1u64 << 40) - 1;

/// A fixed-size, lock-free histogram with bounded relative error.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Map a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    let v = v.min(MAX_VALUE);
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        // Highest set bit; v >= 16 so msb >= 4 and tier >= 1.
        let msb = 63 - v.leading_zeros() as usize;
        let tier = msb - 3;
        tier * SUB_BUCKETS + ((v >> (msb - 4)) & 15) as usize
    }
}

/// Inclusive `(lower, upper)` value bounds covered by a bucket index.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        (index as u64, index as u64)
    } else {
        let tier = index / SUB_BUCKETS;
        let offset = (index % SUB_BUCKETS) as u64;
        let msb = tier + 3;
        let width = 1u64 << (msb - 4);
        let lower = (1u64 << msb) + offset * width;
        (lower, lower + width - 1)
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value.min(MAX_VALUE), Ordering::Relaxed);
    }

    /// Record a duration as whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (clamped at 2^40 − 1 per observation).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Inclusive `(lower, upper)` bounds of the bucket holding the `q`-th
    /// quantile (0.0 ≤ q ≤ 1.0) under nearest-rank selection. Returns
    /// `(0, 0)` when the histogram is empty. The true quantile of the
    /// recorded stream is guaranteed to lie within the returned bounds.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return (0, 0);
        }
        let rank = ((total - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut cumulative = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                return bucket_bounds(i);
            }
        }
        bucket_bounds(NUM_BUCKETS - 1)
    }

    /// Upper bound of the bucket holding the `q`-th quantile; a conservative
    /// point estimate with ≤ 6.25% relative error.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
        // Median of 0..=15 under nearest-rank is exactly recoverable.
        let (lo, hi) = h.quantile_bounds(0.5);
        assert_eq!(lo, hi);
    }

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            1_000_000,
            u32::MAX as u64,
            MAX_VALUE,
        ] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [16u64, 100, 999, 123_456, 88_888_888] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = (hi - lo) as f64;
            assert!(width / v as f64 <= 1.0 / 16.0 + 1e-9, "v={v} width={width}");
        }
    }

    #[test]
    fn clamps_above_max() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        let (_, hi) = h.quantile_bounds(1.0);
        assert!(hi >= MAX_VALUE);
    }

    #[test]
    fn quantiles_bracket_truth_on_a_known_stream() {
        let h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| i * 37 % 10_000).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let truth = sorted[((sorted.len() - 1) as f64 * q).round() as usize];
            let (lo, hi) = h.quantile_bounds(q);
            assert!(
                lo <= truth && truth <= hi,
                "q={q} truth={truth} [{lo},{hi}]"
            );
        }
    }
}
