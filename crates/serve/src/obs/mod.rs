//! Observability: metrics registry, latency histograms, spans, and logging.
//!
//! This module is the instrumentation substrate for the serving stack,
//! built std-only like everything else in the crate:
//!
//! - [`registry::Registry`] — per-server registry of named counters,
//!   gauges, and histograms, rendered by `GET /metrics` in Prometheus text
//!   exposition format. `/stats` reads the same handles, so the two
//!   surfaces can never disagree.
//! - [`histogram::Histogram`] — lock-free log-linear (HDR-style) latency
//!   histogram with ≤ 6.25% relative error and p50/p90/p99/p999 readouts.
//! - [`span::SpanTimer`] / [`span::ScopedGauge`] — RAII timing and
//!   in-flight tracking.
//! - [`log`] — leveled structured logger behind the crate-level
//!   `log_error!`/`log_warn!`/`log_info!`/`log_debug!` macros, replacing
//!   the scattered `eprintln!` calls the crate grew up with.

pub mod histogram;
pub mod log;
pub mod registry;
pub mod span;

pub use histogram::Histogram;
pub use log::{Format as LogFormat, Level as LogLevel};
pub use registry::{Counter, Gauge, Registry, Unit};
pub use span::{ScopedGauge, SpanTimer};

/// Crate version baked in at compile time.
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// `git describe` output baked in at build time via the `GIT_DESCRIBE`
/// environment variable, or `"unknown"` when built outside a git checkout.
pub const BUILD_GIT: &str = match option_env!("GIT_DESCRIBE") {
    Some(v) => v,
    None => "unknown",
};
