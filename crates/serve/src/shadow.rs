//! Shadow predictors: the paper's baseline methods, fit live beside LTM.
//!
//! The paper's headline claim (§6.2, Table 7) is that LTM beats seven
//! prior truth-finding methods. This module keeps that comparison running
//! *in production*: every refit also fits the cheap iterative baselines
//! (`ltm_baselines::all_baselines`) on one merged full extraction of the
//! store, and the resulting per-fact score tables are published inside the
//! [`crate::epoch::EpochSnapshot`] swap. Shadow answers are therefore
//! always mutually consistent — every method saw exactly the same claim
//! database — and never block queries (they are fit on the refit daemon's
//! thread, behind the same epoch pointer-swap as the LTM predictor).
//!
//! Three derived artifacts ride along with the score tables:
//!
//! * **per-source trust** ([`source_agreement_trust`] in `ltm-baselines`):
//!   how often each source agrees with the method's own fitted scores.
//!   This is what lets a baseline answer an *ad-hoc* query about an
//!   arbitrary claim set ([`score_claims`]) the way Equation 3 lets LTM.
//! * **rank-average ensemble** ([`rank_average`]): each method's scores
//!   are converted to tie-aware normalized ranks and averaged — the
//!   classic scale-free way to combine methods whose raw scores are not
//!   calibrated against each other.
//! * **agreement statistics** ([`Agreement`]): pairwise Pearson score
//!   correlation and decision-flip counts at the 0.5 threshold, surfaced
//!   through `/stats` and `/metrics` as a live drift tripwire.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ltm_baselines::{all_baselines, source_agreement_trust};
use ltm_core::IncrementalLtm;
use ltm_model::{Claim, ClaimDb, EntityId, FactId, SourceId};

use crate::obs::{Histogram, Registry, Unit};

/// Display name of the LTM score column (always `methods[0]`).
pub const LTM_METHOD: &str = "LTM";

/// Wire name of the rank-average ensemble pseudo-method.
pub const ENSEMBLE_METHOD: &str = "ensemble";

/// The URL-friendly name of a method: its display name lowercased
/// (`"3-Estimates"` → `"3-estimates"`, `"LTM"` → `"ltm"`).
pub fn wire_name(name: &str) -> String {
    name.to_ascii_lowercase()
}

/// One fitted shadow column: a method's scores over the extraction plus
/// its derived per-source trust.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowColumn {
    /// Display name (paper Table 7 spelling; `"LTM"` for the LTM column).
    pub name: String,
    /// Per-fact scores in `[0, 1]`, parallel to
    /// [`ShadowTables::fact_ids`].
    pub scores: Vec<f64>,
    /// Per-source agreement trust in `[0, 1]`, indexed by global source
    /// id (see [`source_agreement_trust`]).
    pub trust: Vec<f64>,
}

/// Pairwise method-agreement statistics over one extraction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Agreement {
    /// Method display names, indexing both matrices.
    pub methods: Vec<String>,
    /// Pearson correlation of score vectors. Diagonal is 1. If both
    /// vectors are constant the correlation is 1 when they are identical
    /// and 0 otherwise; if exactly one is constant it is 0.
    pub correlation: Vec<Vec<f64>>,
    /// Facts on which the two methods decide differently at the 0.5
    /// threshold (`score ≥ 0.5` = true).
    pub decision_flips: Vec<Vec<u64>>,
}

/// The published shadow state of one epoch: every method's scores on the
/// extraction the epoch was fit from, the rank-average ensemble, and the
/// agreement matrices. Immutable once published (swapped whole inside the
/// epoch `Arc`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowTables {
    /// Global fact ids of the extraction rows, sorted ascending.
    pub fact_ids: Vec<u64>,
    /// Score columns; `methods[0]` is always the LTM column, the rest
    /// follow [`all_baselines`] (paper Table 7) order.
    pub methods: Vec<ShadowColumn>,
    /// Rank-average ensemble scores, parallel to `fact_ids`.
    pub ensemble: Vec<f64>,
    /// Pairwise agreement over `methods`.
    pub agreement: Agreement,
    /// Per-method sorted score copies for percentile lookups (rebuilt,
    /// never persisted).
    sorted: Vec<Vec<f64>>,
}

impl ShadowTables {
    /// Assembles published tables from fitted columns: computes the
    /// ensemble, the agreement matrices, and the sorted percentile
    /// indexes. `fact_ids` must be parallel to every column's scores.
    pub fn assemble(fact_ids: Vec<u64>, methods: Vec<ShadowColumn>) -> Self {
        let columns: Vec<&[f64]> = methods.iter().map(|m| m.scores.as_slice()).collect();
        let ensemble = rank_average(&columns);
        let agreement = Agreement {
            methods: methods.iter().map(|m| m.name.clone()).collect(),
            correlation: pairwise(&columns, correlation),
            decision_flips: pairwise(&columns, decision_flips),
        };
        let sorted = methods
            .iter()
            .map(|m| {
                let mut s = m.scores.clone();
                s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                s
            })
            .collect();
        Self {
            fact_ids,
            methods,
            ensemble,
            agreement,
            sorted,
        }
    }

    /// Number of extraction rows the tables cover.
    pub fn num_facts(&self) -> usize {
        self.fact_ids.len()
    }

    /// The column index of a method by wire name (`"ltm"`, `"voting"`,
    /// `"3-estimates"`, …).
    pub fn method_index(&self, wire: &str) -> Option<usize> {
        self.methods.iter().position(|m| wire_name(&m.name) == wire)
    }

    /// The score of method column `m` on global fact `id`, if the fact
    /// was part of the fit extraction.
    pub fn score(&self, m: usize, id: u64) -> Option<f64> {
        let row = self.fact_ids.binary_search(&id).ok()?;
        self.methods.get(m).and_then(|c| c.scores.get(row)).copied()
    }

    /// The ensemble score on global fact `id`, if present.
    pub fn ensemble_score(&self, id: u64) -> Option<f64> {
        let row = self.fact_ids.binary_search(&id).ok()?;
        self.ensemble.get(row).copied()
    }

    /// Ranks an ad-hoc score `q` against method column `m`'s fitted score
    /// population: the tie-aware empirical CDF in `[0, 1]` (0.5 when the
    /// column is empty).
    pub fn percentile(&self, m: usize, q: f64) -> f64 {
        self.sorted.get(m).map_or(0.5, |s| percentile(s, q))
    }

    /// The rank-average ensemble of ad-hoc per-method scores (parallel to
    /// `methods`): each score is ranked against its own method's fitted
    /// population, and the percentiles are averaged.
    pub fn ensemble_of(&self, per_method: &[f64]) -> f64 {
        if per_method.is_empty() {
            return 0.5;
        }
        let sum: f64 = per_method
            .iter()
            .enumerate()
            .map(|(m, &q)| self.percentile(m, q))
            .sum();
        sum / per_method.len() as f64
    }
}

/// Merges per-shard extraction batches into one [`ClaimDb`] over the
/// global source space, rows ordered by ascending global fact id.
///
/// Shard-local entity ids collide across batches, so each batch's
/// entities are offset into a disjoint range — mutual-exclusion groups
/// (used by PooledInvestment) are preserved exactly because an entity
/// never spans shards (the store hash-partitions by entity).
pub fn merge_extraction(batches: &[ClaimDb], globals: &[Vec<u64>]) -> (ClaimDb, Vec<u64>) {
    let num_sources = batches.iter().map(ClaimDb::num_sources).max().unwrap_or(0);
    let mut entity_offset = vec![0usize; batches.len()];
    let mut acc = 0usize;
    for (b, db) in batches.iter().enumerate() {
        entity_offset[b] = acc;
        acc += db.num_entities();
    }
    let mut order: Vec<(u64, usize, FactId)> = Vec::new();
    for (b, ids) in globals.iter().enumerate() {
        for (row, &g) in ids.iter().enumerate() {
            order.push((g, b, FactId::from_usize(row)));
        }
    }
    order.sort_unstable_by_key(|&(g, ..)| g);

    let mut fact_ids = Vec::with_capacity(order.len());
    let mut facts = Vec::with_capacity(order.len());
    let mut claims = Vec::new();
    for (new_row, &(g, b, f)) in order.iter().enumerate() {
        fact_ids.push(g);
        let fact = batches[b].fact(f);
        facts.push(ltm_model::Fact {
            entity: EntityId::from_usize(entity_offset[b] + fact.entity.index()),
            attr: fact.attr,
        });
        let new_f = FactId::from_usize(new_row);
        for (source, observation) in batches[b].claims_of_fact(f) {
            claims.push(Claim {
                fact: new_f,
                source,
                observation,
            });
        }
    }
    (ClaimDb::from_parts(facts, claims, num_sources), fact_ids)
}

/// Fits the LTM column and every baseline on one merged extraction and
/// assembles the publishable tables. `ltm` is the candidate epoch's
/// Equation-3 predictor, so the LTM column is exactly what the epoch will
/// serve. Per-method fit latencies are recorded into `obs` when attached.
pub fn fit_shadow_tables(
    batches: &[ClaimDb],
    globals: &[Vec<u64>],
    ltm: &IncrementalLtm,
    obs: Option<&ShadowObs>,
) -> ShadowTables {
    let (db, fact_ids) = merge_extraction(batches, globals);
    let mut methods = Vec::new();

    let started = Instant::now();
    let ltm_scores = ltm.predict(&db);
    let ltm_trust = source_agreement_trust(&db, &ltm_scores);
    if let Some(o) = obs {
        o.record(LTM_METHOD, started.elapsed());
    }
    methods.push(ShadowColumn {
        name: LTM_METHOD.to_string(),
        scores: ltm_scores.probs().to_vec(),
        trust: ltm_trust,
    });

    for method in all_baselines() {
        let started = Instant::now();
        let scores = method.infer(&db);
        let trust = source_agreement_trust(&db, &scores);
        if let Some(o) = obs {
            o.record(method.name(), started.elapsed());
        }
        methods.push(ShadowColumn {
            name: method.name().to_string(),
            scores: scores.probs().to_vec(),
            trust,
        });
    }
    ShadowTables::assemble(fact_ids, methods)
}

/// Scores an ad-hoc claim set under a per-source trust vector: the
/// trust-weighted positive fraction `Σ w⁺ / Σ w`. Unknown sources weigh
/// 0.5 (the uninformed prior); an empty or zero-weight claim set scores
/// 0.5. Always in `[0, 1]`.
pub fn score_claims(trust: &[f64], claims: &[(SourceId, bool)]) -> f64 {
    let mut positive = 0.0;
    let mut total = 0.0;
    for &(s, observation) in claims {
        let w = trust.get(s.index()).copied().unwrap_or(0.5);
        total += w;
        if observation {
            positive += w;
        }
    }
    if total <= 0.0 {
        0.5
    } else {
        positive / total
    }
}

/// Tie-aware normalized mid-ranks in `[0, 1]`: the smallest score maps to
/// 0, the largest to 1, ties share their mid-rank. Degenerate inputs
/// (length ≤ 1, or all values tied) map to 0.5.
pub fn normalized_ranks(scores: &[f64]) -> Vec<f64> {
    let n = scores.len();
    if n <= 1 {
        return vec![0.5; n];
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.5; n];
    let denom = (n - 1) as f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0;
        for &k in idx.iter().take(j + 1).skip(i) {
            ranks[k] = mid / denom;
        }
        i = j + 1;
    }
    ranks
}

/// The rank-average ensemble of score columns (all the same length):
/// per-column [`normalized_ranks`], averaged element-wise. Empty input
/// yields an empty vector.
pub fn rank_average(columns: &[&[f64]]) -> Vec<f64> {
    let Some(first) = columns.first() else {
        return Vec::new();
    };
    let n = first.len();
    let mut out = vec![0.0; n];
    for col in columns {
        for (o, r) in out.iter_mut().zip(normalized_ranks(col)) {
            *o += r;
        }
    }
    let k = columns.len() as f64;
    for o in &mut out {
        *o /= k;
    }
    out
}

/// Tie-aware empirical CDF of `q` in an ascending-sorted population:
/// the fraction strictly below plus half the ties. 0.5 on an empty
/// population.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.5;
    }
    let below = sorted.partition_point(|&s| s < q);
    let ties = sorted.partition_point(|&s| s <= q) - below;
    (below as f64 + ties as f64 / 2.0) / sorted.len() as f64
}

/// Pearson correlation of two equal-length score vectors, with the
/// constant-vector conventions documented on [`Agreement::correlation`].
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let mean = |v: &[f64]| v.iter().take(n).sum::<f64>() / n as f64;
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b.iter()).take(n) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 && vb == 0.0 {
        let identical = a.iter().zip(b.iter()).take(n).all(|(x, y)| x == y);
        return if identical { 1.0 } else { 0.0 };
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Facts on which two score vectors decide differently at the 0.5
/// threshold (`score ≥ 0.5` reads as true, matching
/// `TruthAssignment::is_true`).
pub fn decision_flips(a: &[f64], b: &[f64]) -> u64 {
    a.iter()
        .zip(b.iter())
        .filter(|(x, y)| (**x >= 0.5) != (**y >= 0.5))
        .count() as u64
}

/// Builds a full pairwise matrix from a symmetric function of two columns.
fn pairwise<T: Copy>(columns: &[&[f64]], f: impl Fn(&[f64], &[f64]) -> T) -> Vec<Vec<T>> {
    columns
        .iter()
        .map(|a| columns.iter().map(|b| f(a, b)).collect())
        .collect()
}

/// Per-method shadow-fit latency histograms, rendered as
/// `ltm_shadow_fit_duration_seconds{method=,domain=}`.
#[derive(Debug, Clone)]
pub struct ShadowObs {
    handles: Vec<(String, Arc<Histogram>)>,
}

impl ShadowObs {
    /// Registers (or re-fetches) the shadow-fit metric family for
    /// `domain`: one histogram per baseline plus the LTM column.
    pub fn for_domain(registry: &Registry, domain: &str) -> Self {
        let mut handles = Vec::new();
        let mut register = |name: &str| {
            let wire = wire_name(name);
            let h = registry.histogram(
                "ltm_shadow_fit_duration_seconds",
                &[("method", &wire), ("domain", domain)],
                Unit::Micros,
            );
            handles.push((name.to_string(), h));
        };
        register(LTM_METHOD);
        for method in all_baselines() {
            register(method.name());
        }
        Self { handles }
    }

    /// Records one fit duration for `method` (unknown names are ignored).
    pub fn record(&self, method: &str, elapsed: Duration) {
        if let Some((_, h)) = self.handles.iter().find(|(n, _)| n == method) {
            h.record_duration(elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_model::RawDatabaseBuilder;

    fn table1_db() -> ClaimDb {
        let mut b = RawDatabaseBuilder::new();
        b.add("Harry Potter", "Daniel Radcliffe", "IMDB");
        b.add("Harry Potter", "Emma Watson", "IMDB");
        b.add("Harry Potter", "Rupert Grint", "IMDB");
        b.add("Harry Potter", "Daniel Radcliffe", "Netflix");
        b.add("Harry Potter", "Daniel Radcliffe", "BadSource.com");
        b.add("Harry Potter", "Emma Watson", "BadSource.com");
        b.add("Harry Potter", "Johnny Depp", "BadSource.com");
        b.add("Pirates 4", "Johnny Depp", "Hulu.com");
        ClaimDb::from_raw(&b.build())
    }

    #[test]
    fn ranks_are_tie_aware_and_normalized() {
        assert_eq!(normalized_ranks(&[]), Vec::<f64>::new());
        assert_eq!(normalized_ranks(&[0.7]), vec![0.5]);
        assert_eq!(normalized_ranks(&[0.1, 0.9, 0.5]), vec![0.0, 1.0, 0.5]);
        // Ties share mid-ranks: [0.5, 0.5, 0.9] → ranks [0.5, 1.5?]…
        let r = normalized_ranks(&[0.5, 0.5, 0.9]);
        assert_eq!(r[0], r[1]);
        assert!((r[0] - 0.25).abs() < 1e-12);
        assert_eq!(r[2], 1.0);
        // All tied → everything at the middle.
        assert_eq!(normalized_ranks(&[0.3, 0.3, 0.3]), vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn rank_average_is_bounded_by_member_ranks() {
        let a = [0.1, 0.8, 0.4, 0.9];
        let b = [0.9, 0.1, 0.6, 0.2];
        let ens = rank_average(&[&a, &b]);
        let ra = normalized_ranks(&a);
        let rb = normalized_ranks(&b);
        for i in 0..a.len() {
            let (lo, hi) = (ra[i].min(rb[i]), ra[i].max(rb[i]));
            assert!(ens[i] >= lo - 1e-12 && ens[i] <= hi + 1e-12);
        }
    }

    #[test]
    fn percentile_is_tie_aware() {
        let pop = [0.1, 0.3, 0.3, 0.8];
        assert_eq!(percentile(&pop, 0.0), 0.0);
        assert_eq!(percentile(&pop, 1.0), 1.0);
        // 0.3: one strictly below, two ties → (1 + 1)/4.
        assert!((percentile(&pop, 0.3) - 0.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.4), 0.5);
    }

    #[test]
    fn correlation_conventions() {
        let a = [0.1, 0.5, 0.9];
        assert!((correlation(&a, &a) - 1.0).abs() < 1e-12);
        let inv = [0.9, 0.5, 0.1];
        assert!((correlation(&a, &inv) + 1.0).abs() < 1e-12);
        let flat = [0.5, 0.5, 0.5];
        assert_eq!(correlation(&flat, &flat), 1.0);
        assert_eq!(correlation(&flat, &[0.4, 0.4, 0.4]), 0.0);
        assert_eq!(correlation(&flat, &a), 0.0);
    }

    #[test]
    fn score_claims_is_a_trust_weighted_vote() {
        let trust = [1.0, 0.0, 0.5];
        let s = |claims: &[(usize, bool)]| {
            let c: Vec<(SourceId, bool)> = claims
                .iter()
                .map(|&(k, o)| (SourceId::from_usize(k), o))
                .collect();
            score_claims(&trust, &c)
        };
        assert_eq!(s(&[]), 0.5);
        assert_eq!(s(&[(0, true)]), 1.0);
        assert_eq!(s(&[(0, false)]), 0.0);
        // Zero-trust sources cannot move the score; alone they score 0.5.
        assert_eq!(s(&[(1, true)]), 0.5);
        assert!((s(&[(0, true), (2, false)]) - 1.0 / 1.5).abs() < 1e-12);
        // Unknown source ids weigh 0.5: outvoted 2:1 by a fully trusted
        // source, but alone they still win their own vote.
        assert_eq!(s(&[(9, true)]), 1.0);
        assert!((s(&[(9, true), (0, false)]) - 0.5 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_extraction_orders_rows_by_global_id() {
        let db = table1_db();
        // Two "shards" with interleaved global ids; second shard's claims
        // reference the same global source space.
        let ids_a = vec![4u64, 0, 2];
        let facts_a: Vec<ltm_model::Fact> = (0..3).map(|i| db.fact(FactId::new(i))).collect();
        let claims_a: Vec<Claim> = (0..3)
            .flat_map(|i| {
                db.claims_of_fact(FactId::new(i))
                    .map(move |(source, observation)| Claim {
                        fact: FactId::new(i),
                        source,
                        observation,
                    })
            })
            .collect();
        let batch_a = ClaimDb::from_parts(facts_a, claims_a, db.num_sources());
        let ids_b = vec![1u64];
        let fact_b = db.fact(FactId::new(4));
        let claims_b: Vec<Claim> = db
            .claims_of_fact(FactId::new(4))
            .map(|(source, observation)| Claim {
                fact: FactId::new(0),
                source,
                observation,
            })
            .collect();
        let batch_b = ClaimDb::from_parts(
            vec![ltm_model::Fact {
                entity: EntityId::new(0),
                attr: fact_b.attr,
            }],
            claims_b,
            db.num_sources(),
        );

        let (merged, fact_ids) = merge_extraction(&[batch_a, batch_b], &[ids_a, ids_b]);
        assert_eq!(fact_ids, vec![0, 1, 2, 4]);
        assert_eq!(merged.num_facts(), 4);
        assert_eq!(merged.num_sources(), db.num_sources());
        // Entity groups stay disjoint across batches: batch B's entity 0
        // must not be merged with batch A's entity 0 — it is offset past
        // batch A's entity range.
        assert_eq!(merged.num_entities(), 2);
        let row1_entity = merged.fact(FactId::new(1)).entity;
        assert_eq!(row1_entity, EntityId::new(1));
        assert_eq!(merged.fact(FactId::new(0)).entity, EntityId::new(0));
        // Row 1 (global id 1) carries batch B's claims.
        let row1: Vec<_> = merged.claims_of_fact(FactId::new(1)).collect();
        let orig: Vec<_> = db.claims_of_fact(FactId::new(4)).collect();
        assert_eq!(row1, orig);
    }

    #[test]
    fn fit_shadow_tables_covers_every_method_and_fact() {
        let db = table1_db();
        let ids: Vec<u64> = (0..db.num_facts() as u64).collect();
        let ltm = boot_ltm();
        let tables = fit_shadow_tables(std::slice::from_ref(&db), &[ids], &ltm, None);
        assert_eq!(tables.num_facts(), db.num_facts());
        // LTM column + the seven Table 7 baselines.
        assert_eq!(tables.methods.len(), 8);
        assert_eq!(tables.methods[0].name, LTM_METHOD);
        for col in &tables.methods {
            assert_eq!(col.scores.len(), db.num_facts());
            assert_eq!(col.trust.len(), db.num_sources());
            for &s in &col.scores {
                assert!((0.0..=1.0).contains(&s), "{}: {s}", col.name);
            }
            for &t in &col.trust {
                assert!((0.0..=1.0).contains(&t), "{}: trust {t}", col.name);
            }
        }
        assert_eq!(tables.ensemble.len(), db.num_facts());
        // Agreement matrices are square, symmetric, unit-diagonal.
        let k = tables.methods.len();
        for i in 0..k {
            assert!((tables.agreement.correlation[i][i] - 1.0).abs() < 1e-12);
            assert_eq!(tables.agreement.decision_flips[i][i], 0);
            for j in 0..k {
                assert!(
                    (tables.agreement.correlation[i][j] - tables.agreement.correlation[j][i]).abs()
                        < 1e-12
                );
                assert_eq!(
                    tables.agreement.decision_flips[i][j],
                    tables.agreement.decision_flips[j][i]
                );
            }
        }
        // Lookups by global id resolve.
        let voting = tables.method_index("voting").expect("voting column");
        assert!(tables.score(voting, 0).is_some());
        assert!(tables.ensemble_score(0).is_some());
        assert_eq!(tables.score(voting, 999), None);
    }

    fn boot_ltm() -> IncrementalLtm {
        let priors = ltm_core::Priors::default();
        let empty = ltm_core::SourceQuality::estimate(
            &ClaimDb::from_parts(vec![], vec![], 0),
            &ltm_model::TruthAssignment::new(vec![]),
            &priors,
        );
        IncrementalLtm::new(&empty, &priors)
    }
}
