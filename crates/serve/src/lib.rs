//! **ltm-serve** — the truth-discovery *serving* layer.
//!
//! The paper's own pitch for LTMinc (§5.4, Equation 3) is that once
//! source quality is learned, new claims can be scored as fast as Voting
//! with no sampling — i.e. it is the natural online read path of a
//! truth-discovery service. This crate turns the workspace's library into
//! that service:
//!
//! * [`model`] + [`domain`] — **multi-model serving**: one process hosts
//!   named domains, each bound to a [`model::ModelKind`] (`boolean`,
//!   `real_valued`, or `positive_only`) with its own store, predictor,
//!   accumulator, and refit daemon, so a slow fold in one domain never
//!   delays another's promotion.
//! * [`store`] — a **sharded in-memory claim store**: triples are
//!   hash-partitioned by entity across N shards, each an append log with
//!   coverage indexes that rebuilds its CSR [`ltm_model::ClaimDb`] on
//!   refit. Source ids are global across shards.
//! * [`epoch`] — **epoch-swapped predictors**: reads clone an
//!   `Arc<EpochSnapshot>` out of one short critical section; the refit
//!   daemon publishes whole new generations atomically, so queries never
//!   wait on a fit.
//! * [`refit`] — the **background refit daemon**: keeps one long-lived
//!   [`ltm_core::StreamingLtm`] accumulator across epochs and folds only
//!   the store's **delta** (facts dirtied since the fold watermark) with
//!   multi-chain Gibbs fits — `O(Δ)` per refit, with periodic full
//!   reconciliation passes — and promotes the result only if its
//!   Gelman–Rubin `R̂` passes the gate (a regressing refit is rejected
//!   and logged; a failing one backs off exponentially).
//! * [`http`] + [`event_loop`] + [`server`] — a minimal HTTP/1.1 front
//!   end on `std::net::TcpListener`: an epoll readiness loop with
//!   keep-alive, pipelining, and a handler worker pool where supported
//!   (Linux), falling back to a blocking fixed thread pool elsewhere
//!   (no external deps beyond the vendored `epoll` shim).
//! * [`snapshot`] — store + quality + accumulator persistence, so a
//!   restarted server resumes its last epoch *and* keeps refitting
//!   incrementally instead of cold-refitting.
//! * [`wal`] — a per-domain **write-ahead log**: every accepted ingest
//!   batch is CRC32-framed, appended, and fsync'd (per `--wal-sync`)
//!   before the HTTP ack; a background compactor folds sealed segments
//!   into the snapshot, and boot replays the tail — so an acked batch
//!   survives `kill -9` (see DESIGN.md §6 "Durability").
//! * [`shadow`] — the **baseline shadow ensemble**: each promoted refit
//!   also fits the seven Table 7 baselines on the same extraction and
//!   publishes their truth tables beside LTM in the epoch swap, so
//!   `?methods=all` queries answer every method plus a rank-average
//!   ensemble, `/stats` and `/metrics` report method agreement
//!   (pairwise correlation + decision flips), and `GET /eval` scores
//!   them all live against loaded ground-truth labels.
//! * [`obs`] — the **observability spine**: a metrics registry of atomic
//!   counters, gauges, and lock-free log-linear latency histograms
//!   rendered by `GET /metrics` (Prometheus text format, `domain=`
//!   labels), RAII spans timing WAL appends and refit phases, and a
//!   leveled structured logger (`--log-level`, `--log-format`) behind
//!   the `log_error!`…`log_debug!` macros.
//!
//! The `ltm` binary wraps this as a CLI: `ltm serve`, `ltm ingest`,
//! `ltm query`. See README.md for a curl quickstart and DESIGN.md §6 for
//! the architecture notes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod domain;
pub mod epoch;
pub mod event_loop;
pub mod http;
pub mod model;
pub mod obs;
pub mod refit;
pub mod server;
pub mod shadow;
pub mod snapshot;
pub mod store;
pub mod sync;
pub mod wal;

pub use domain::{Domain, DomainError, DomainObs, DomainSet, DEFAULT_DOMAIN};
pub use epoch::{EpochPredictor, EpochSnapshot};
pub use http::{http_call, HttpClient};
pub use model::{ModelKind, ServePredictor};
pub use obs::{Counter, Gauge, Histogram, Registry, ScopedGauge, SpanTimer, Unit};
pub use refit::{
    refit_once, RefitConfig, RefitCounters, RefitDaemon, RefitMode, RefitObs, RefitOutcome,
    RefitState,
};
pub use server::{Frontend, ServeConfig, Server};
pub use shadow::{Agreement, ShadowColumn, ShadowObs, ShadowTables};
pub use snapshot::Snapshot;
pub use store::{
    BatchOutcome, FactView, IngestOutcome, LogRecord, RealFactView, RealStoreDelta, ShardedStore,
    StoreDelta, StoreDeltaOf, StoreStats,
};
pub use sync::{LockExt, RwLockExt};
pub use wal::{DomainWal, WalConfig, WalObs, WalSyncPolicy};
