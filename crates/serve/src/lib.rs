//! **ltm-serve** — the truth-discovery *serving* layer.
//!
//! The paper's own pitch for LTMinc (§5.4, Equation 3) is that once
//! source quality is learned, new claims can be scored as fast as Voting
//! with no sampling — i.e. it is the natural online read path of a
//! truth-discovery service. This crate turns the workspace's library into
//! that service:
//!
//! * [`store`] — a **sharded in-memory claim store**: triples are
//!   hash-partitioned by entity across N shards, each an append log with
//!   coverage indexes that rebuilds its CSR [`ltm_model::ClaimDb`] on
//!   refit. Source ids are global across shards.
//! * [`epoch`] — **epoch-swapped predictors**: reads clone an
//!   `Arc<EpochSnapshot>` out of one short critical section; the refit
//!   daemon publishes whole new generations atomically, so queries never
//!   wait on a fit.
//! * [`refit`] — the **background refit daemon**: folds the shards
//!   batch-over-batch through [`ltm_core::StreamingLtm`] with multi-chain
//!   Gibbs fits, and promotes the result only if its Gelman–Rubin `R̂`
//!   passes the gate (a regressing refit is rejected and logged).
//! * [`http`] + [`server`] — a minimal HTTP/1.1 front end on
//!   `std::net::TcpListener` and a fixed thread pool (no external deps).
//! * [`snapshot`] — store + quality persistence, so a restarted server
//!   resumes its last epoch without refitting.
//!
//! The `ltm` binary wraps this as a CLI: `ltm serve`, `ltm ingest`,
//! `ltm query`. See README.md for a curl quickstart and DESIGN.md §6 for
//! the architecture notes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod epoch;
pub mod http;
pub mod refit;
pub mod server;
pub mod snapshot;
pub mod store;

pub use epoch::{EpochPredictor, EpochSnapshot};
pub use http::http_call;
pub use refit::{refit_once, RefitConfig, RefitDaemon, RefitOutcome};
pub use server::{ServeConfig, Server};
pub use snapshot::Snapshot;
pub use store::{FactView, IngestOutcome, ShardedStore, StoreStats};
