//! The model-kind abstraction behind multi-model serving.
//!
//! A server hosts named **domains**, each bound to one [`ModelKind`] that
//! decides how the domain's store is extracted, folded, and predicted
//! over (see [`crate::domain`]):
//!
//! * [`ModelKind::Boolean`] — the paper's core Latent Truth Model:
//!   Bernoulli observations over Definition-3 positive/negative claims,
//!   folded through [`ltm_core::StreamingLtm`] and served by the
//!   Equation-3 [`ltm_core::IncrementalLtm`].
//! * [`ModelKind::RealValued`] — the paper-§7 Gaussian extension: claims
//!   carry a real value (similarity score, numeric reading), folded
//!   through [`ltm_core::StreamingRealLtm`] and served by the Student-t
//!   predictive [`ltm_core::IncrementalRealLtm`]. A covering source that
//!   did not assert a fact contributes a Definition-3 negative row with
//!   value `0.0`; an asserted row with no explicit value reads as `1.0`.
//! * [`ModelKind::PositiveOnly`] — the paper-§6.2 LTMpos ablation: every
//!   folded batch is filtered through
//!   [`ltm_core::positive_only::positive_only_view`] so the model never
//!   trains on negative claims. Prediction machinery is shared with
//!   [`ModelKind::Boolean`]; supplied claims are evaluated as given.
//!
//! [`ServePredictor`] is the epoch-snapshot payload dispatching
//! Equation-3-style closed-form prediction over the variant predictors.

use std::fmt;
use std::str::FromStr;

use ltm_core::{IncrementalLtm, IncrementalRealLtm};
use ltm_model::SourceId;

/// Which model variant a domain runs. Parses from / renders to the wire
/// names `boolean`, `real_valued`, and `positive_only` used by the HTTP
/// API, the CLI, and snapshot format v2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Bernoulli observation model over positive/negative claims (the
    /// paper's core LTM).
    Boolean,
    /// Gaussian observation model over real-valued claims (paper §7).
    RealValued,
    /// LTMpos: trained with negative claims dropped (paper §6.2).
    PositiveOnly,
}

impl ModelKind {
    /// The wire name (`boolean` | `real_valued` | `positive_only`).
    pub fn as_str(self) -> &'static str {
        match self {
            ModelKind::Boolean => "boolean",
            ModelKind::RealValued => "real_valued",
            ModelKind::PositiveOnly => "positive_only",
        }
    }

    /// Whether ingested triples carry a real value as their 4th field.
    pub fn valued(self) -> bool {
        matches!(self, ModelKind::RealValued)
    }

    /// All kinds, in wire-name order (for error messages and docs).
    pub fn all() -> [ModelKind; 3] {
        [
            ModelKind::Boolean,
            ModelKind::RealValued,
            ModelKind::PositiveOnly,
        ]
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for an unrecognised model-kind name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModelKind(pub String);

impl fmt::Display for UnknownModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown model kind `{}` (expected boolean, real_valued, or positive_only)",
            self.0
        )
    }
}

impl std::error::Error for UnknownModelKind {}

impl FromStr for ModelKind {
    type Err = UnknownModelKind;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "boolean" => Ok(ModelKind::Boolean),
            "real_valued" => Ok(ModelKind::RealValued),
            "positive_only" => Ok(ModelKind::PositiveOnly),
            other => Err(UnknownModelKind(other.to_owned())),
        }
    }
}

/// The predictor payload of an epoch snapshot: one closed-form variant
/// predictor, dispatched by the owning domain's [`ModelKind`].
/// [`ModelKind::Boolean`] and [`ModelKind::PositiveOnly`] share the
/// [`IncrementalLtm`] arm (they differ only in how batches are folded).
#[derive(Debug, Clone)]
pub enum ServePredictor {
    /// Equation-3 predictor over `(source, observed?)` claims.
    Boolean(IncrementalLtm),
    /// Student-t predictive over `(source, value)` claims.
    Real(IncrementalRealLtm),
}

impl ServePredictor {
    /// The boolean-model predictor, if this is the [`ServePredictor::Boolean`] arm.
    pub fn as_boolean(&self) -> Option<&IncrementalLtm> {
        match self {
            ServePredictor::Boolean(p) => Some(p),
            ServePredictor::Real(_) => None,
        }
    }

    /// The real-valued predictor, if this is the [`ServePredictor::Real`] arm.
    pub fn as_real(&self) -> Option<&IncrementalRealLtm> {
        match self {
            ServePredictor::Real(p) => Some(p),
            ServePredictor::Boolean(_) => None,
        }
    }

    /// Applies the boolean Equation-3 predictor to one claim list.
    ///
    /// # Panics
    ///
    /// Panics when called on a real-valued predictor — the HTTP layer
    /// routes by domain kind, so reaching the wrong arm is a server bug,
    /// not a client error.
    pub fn predict_fact(&self, claims: &[(SourceId, bool)]) -> f64 {
        match self {
            ServePredictor::Boolean(p) => p.predict_fact(claims),
            ServePredictor::Real(_) => {
                panic!("boolean prediction requested from a real-valued domain predictor")
            }
        }
    }

    /// Applies the real-valued Student-t predictor to one claim list.
    ///
    /// # Panics
    ///
    /// Panics when called on a boolean predictor (see
    /// [`ServePredictor::predict_fact`]).
    pub fn predict_real(&self, claims: &[(SourceId, f64)]) -> f64 {
        match self {
            ServePredictor::Real(p) => p.predict_fact(claims),
            ServePredictor::Boolean(_) => {
                panic!("real-valued prediction requested from a boolean domain predictor")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in ModelKind::all() {
            assert_eq!(kind.as_str().parse::<ModelKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.as_str());
        }
        let err = "gaussian".parse::<ModelKind>().unwrap_err();
        assert!(err.to_string().contains("gaussian"), "{err}");
    }

    #[test]
    fn only_real_valued_is_valued() {
        assert!(ModelKind::RealValued.valued());
        assert!(!ModelKind::Boolean.valued());
        assert!(!ModelKind::PositiveOnly.valued());
    }
}
