//! The HTTP front end: routes, JSON schemas, and server lifecycle.
//!
//! Endpoints (all JSON, `Connection: close`):
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/claims` | POST | ingest `{"triples": [["entity","attr","source"], …]}` |
//! | `/facts/{id}` | GET | one fact's names, claims, and current probability |
//! | `/query` | POST | score an ad-hoc claim list `{"claims": [["source", true], …]}` |
//! | `/healthz` | GET | liveness + served epoch |
//! | `/stats` | GET | store/epoch/daemon counters |
//! | `/admin/refit` | POST | force a refit pass |
//! | `/admin/snapshot` | POST | save a snapshot (`{"path": "…"}` optional) |
//! | `/admin/shutdown` | POST | request a graceful stop |
//!
//! Queries read the current [`EpochSnapshot`](crate::epoch::EpochSnapshot)
//! through one `Arc` clone and never wait on the refit daemon; see
//! DESIGN.md §6.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ltm_model::SourceId;
use serde::{Deserialize, Serialize};

use crate::epoch::EpochPredictor;
use crate::http::{read_request_with_deadline, write_response, Request, ThreadPool};
use crate::refit::{RefitConfig, RefitDaemon, RefitState};
use crate::snapshot;
use crate::store::ShardedStore;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Store shard count.
    pub shards: usize,
    /// HTTP worker threads.
    pub threads: usize,
    /// Refit daemon configuration.
    pub refit: RefitConfig,
    /// Snapshot path: loaded at boot when the file exists, saved on
    /// graceful shutdown and on `POST /admin/snapshot`.
    pub snapshot: Option<PathBuf>,
    /// Per-connection I/O budget: a whole-request read deadline plus a
    /// per-write timeout on the response. A peer that connects and then
    /// stalls or drip-feeds bytes (slow-loris) is dropped once the
    /// deadline passes instead of wedging a worker thread forever.
    /// `Duration::ZERO` explicitly disables both.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            shards: 4,
            threads: 4,
            refit: RefitConfig::default(),
            snapshot: None,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// Everything a request handler needs, shared across workers.
struct Context {
    store: Arc<ShardedStore>,
    predictor: Arc<EpochPredictor>,
    daemon: Arc<RefitDaemon>,
    refit_state: Arc<Mutex<RefitState>>,
    snapshot_path: Option<PathBuf>,
    requests: AtomicU64,
    started: Instant,
    shutdown_requested: (Mutex<bool>, Condvar),
}

// ---------------------------------------------------------------------------
// JSON schemas
// ---------------------------------------------------------------------------

#[derive(Debug, Deserialize)]
struct ClaimsRequest {
    triples: Vec<Vec<String>>,
}

#[derive(Debug, Serialize)]
struct ClaimsResponse {
    accepted: usize,
    duplicates: usize,
    new_facts: usize,
    pending: usize,
    epoch: u64,
}

#[derive(Debug, Deserialize)]
struct QueryRequest {
    claims: Vec<(String, bool)>,
}

#[derive(Debug, Serialize)]
struct QueryResponse {
    probability: f64,
    epoch: u64,
    unknown_sources: Vec<String>,
}

#[derive(Debug, Serialize)]
struct FactResponse {
    id: u64,
    entity: String,
    attribute: String,
    claims: usize,
    positive: usize,
    probability: f64,
    epoch: u64,
}

#[derive(Debug, Serialize)]
struct HealthResponse {
    status: String,
    epoch: u64,
}

#[derive(Debug, Serialize)]
struct StatsResponse {
    shards: usize,
    facts: usize,
    claims: usize,
    positive_claims: usize,
    sources: usize,
    pending: usize,
    epoch: u64,
    epoch_max_rhat: f64,
    epoch_converged_fraction: f64,
    epoch_trained_claims: usize,
    epochs_published: u64,
    epochs_rejected: u64,
    refits_started: u64,
    refits_incremental: u64,
    refits_full: u64,
    refits_failed: u64,
    last_incremental_refit_secs: f64,
    last_full_refit_secs: f64,
    fold_watermark: u64,
    requests: u64,
    uptime_secs: f64,
}

#[derive(Debug, Deserialize)]
struct SnapshotRequest {
    path: Option<String>,
}

#[derive(Debug, Serialize)]
struct ErrorResponse {
    error: String,
}

fn json<T: serde::Serialize>(status: u16, value: &T) -> (u16, String) {
    (
        status,
        serde_json::to_string(value).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}")),
    )
}

fn error(status: u16, message: impl Into<String>) -> (u16, String) {
    json(
        status,
        &ErrorResponse {
            error: message.into(),
        },
    )
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn route(ctx: &Context, req: &Request) -> (u16, String) {
    ctx.requests.fetch_add(1, Ordering::Relaxed);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => json(
            200,
            &HealthResponse {
                status: "ok".into(),
                epoch: ctx.predictor.load().epoch,
            },
        ),
        ("GET", "/stats") => stats(ctx),
        ("POST", "/claims") => ingest(ctx, &req.body),
        ("POST", "/query") => query(ctx, &req.body),
        ("POST", path) if path == "/admin/refit" || path.starts_with("/admin/refit?") => {
            admin_refit(ctx, path)
        }
        ("POST", "/admin/snapshot") => admin_snapshot(ctx, &req.body),
        ("POST", "/admin/shutdown") => {
            let (flag, cv) = &ctx.shutdown_requested;
            *flag.lock().expect("shutdown flag lock") = true;
            cv.notify_all();
            json(
                202,
                &HealthResponse {
                    status: "shutting down".into(),
                    epoch: ctx.predictor.load().epoch,
                },
            )
        }
        ("GET", path) if path.starts_with("/facts/") => fact(ctx, &path["/facts/".len()..]),
        (_, path) => error(404, format!("no route for {path}")),
    }
}

/// `POST /admin/refit[?mode=full|incremental]` — arms the daemon. The
/// default (no query) lets the daemon's own schedule pick the mode;
/// `mode=full` forces a reconciliation pass that rebuilds the
/// accumulator from zero.
fn admin_refit(ctx: &Context, path: &str) -> (u16, String) {
    let query = path.split_once('?').map(|(_, q)| q).unwrap_or("");
    let status = match query {
        "" | "mode=incremental" => {
            ctx.daemon.trigger();
            "refit triggered"
        }
        "mode=full" => {
            ctx.daemon.trigger_full();
            "full refit triggered"
        }
        other => {
            return error(
                400,
                format!("unknown refit query `{other}` (use mode=full or mode=incremental)"),
            )
        }
    };
    json(
        202,
        &HealthResponse {
            status: status.into(),
            epoch: ctx.predictor.load().epoch,
        },
    )
}

fn stats(ctx: &Context) -> (u16, String) {
    let s = ctx.store.stats();
    let e = ctx.predictor.load();
    let refit = ctx.refit_state.lock().expect("refit state").counters();
    json(
        200,
        &StatsResponse {
            shards: s.shards,
            facts: s.facts,
            claims: s.claims,
            positive_claims: s.positive_claims,
            sources: s.sources,
            pending: s.pending,
            epoch: e.epoch,
            epoch_max_rhat: e.max_rhat,
            epoch_converged_fraction: e.converged_fraction,
            epoch_trained_claims: e.trained_claims,
            epochs_published: ctx.predictor.epochs_published(),
            epochs_rejected: ctx.predictor.epochs_rejected(),
            refits_started: ctx.daemon.refits_started(),
            refits_incremental: refit.refits_incremental,
            refits_full: refit.refits_full,
            refits_failed: refit.refits_failed,
            last_incremental_refit_secs: refit.last_incremental_secs,
            last_full_refit_secs: refit.last_full_secs,
            fold_watermark: refit.watermark,
            requests: ctx.requests.load(Ordering::Relaxed),
            uptime_secs: ctx.started.elapsed().as_secs_f64(),
        },
    )
}

fn ingest(ctx: &Context, body: &str) -> (u16, String) {
    let parsed: ClaimsRequest = match serde_json::from_str(body) {
        Ok(p) => p,
        Err(e) => return error(400, format!("bad claims body: {e}")),
    };
    // Validate the whole batch before committing any of it, so a 400
    // never leaves a silently half-ingested prefix behind.
    if let Some((i, t)) = parsed
        .triples
        .iter()
        .enumerate()
        .find(|(_, t)| t.len() != 3)
    {
        return error(
            400,
            format!(
                "triple {i} has {} fields, expected 3; no triples were ingested",
                t.len()
            ),
        );
    }
    let mut accepted = 0;
    let mut duplicates = 0;
    let mut new_facts = 0;
    for t in &parsed.triples {
        match ctx.store.ingest(&t[0], &t[1], &t[2]) {
            crate::store::IngestOutcome::NewFact(_) => {
                accepted += 1;
                new_facts += 1;
            }
            crate::store::IngestOutcome::NewRow(_) => accepted += 1,
            crate::store::IngestOutcome::Duplicate(_) => duplicates += 1,
        }
    }
    json(
        200,
        &ClaimsResponse {
            accepted,
            duplicates,
            new_facts,
            pending: ctx.store.pending(),
            epoch: ctx.predictor.load().epoch,
        },
    )
}

fn query(ctx: &Context, body: &str) -> (u16, String) {
    let parsed: QueryRequest = match serde_json::from_str(body) {
        Ok(p) => p,
        Err(e) => return error(400, format!("bad query body: {e}")),
    };
    let mut unknown = Vec::new();
    let claims: Vec<(SourceId, bool)> = parsed
        .claims
        .iter()
        .map(|(name, obs)| {
            let id = ctx.store.source_id(name).unwrap_or_else(|| {
                unknown.push(name.clone());
                // Out-of-range id → the predictor's prior-mean fallback.
                SourceId::new(u32::MAX)
            });
            (id, *obs)
        })
        .collect();
    let snap = ctx.predictor.load();
    json(
        200,
        &QueryResponse {
            probability: snap.predictor.predict_fact(&claims),
            epoch: snap.epoch,
            unknown_sources: unknown,
        },
    )
}

fn fact(ctx: &Context, id_text: &str) -> (u16, String) {
    let id: u64 = match id_text.parse() {
        Ok(id) => id,
        Err(_) => return error(400, format!("bad fact id {id_text:?}")),
    };
    let Some(view) = ctx.store.fact(id) else {
        return error(404, format!("no fact {id}"));
    };
    let snap = ctx.predictor.load();
    json(
        200,
        &FactResponse {
            id: view.id,
            entity: view.entity,
            attribute: view.attr,
            claims: view.claims.len(),
            positive: view.claims.iter().filter(|(_, o)| *o).count(),
            probability: snap.predictor.predict_fact(&view.claims),
            epoch: snap.epoch,
        },
    )
}

fn admin_snapshot(ctx: &Context, body: &str) -> (u16, String) {
    let requested: Option<PathBuf> = if body.trim().is_empty() {
        None
    } else {
        match serde_json::from_str::<SnapshotRequest>(body) {
            Ok(r) => r.path.map(PathBuf::from),
            Err(e) => return error(400, format!("bad snapshot body: {e}")),
        }
    };
    let Some(path) = requested.or_else(|| ctx.snapshot_path.clone()) else {
        return error(400, "no snapshot path configured or supplied");
    };
    match snapshot::save(&ctx.store, &ctx.predictor, &ctx.refit_state, &path) {
        Ok(()) => json(
            200,
            &HealthResponse {
                status: format!("snapshot saved to {}", path.display()),
                epoch: ctx.predictor.load().epoch,
            },
        ),
        Err(e) => error(500, format!("snapshot failed: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

/// A running server. Dropping it without calling [`Server::shutdown`]
/// aborts the accept loop without a final snapshot.
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<Context>,
    refit_lock: Arc<Mutex<()>>,
    pool: Option<ThreadPool>,
    accept: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds, restores the snapshot (if configured and present), and
    /// spawns the worker pool plus refit daemon.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let store = Arc::new(ShardedStore::new(config.shards));
        let predictor = Arc::new(EpochPredictor::new(&config.refit.ltm.priors));
        let refit_state = Arc::new(Mutex::new(RefitState::new()));
        if let Some(path) = &config.snapshot {
            if path.exists() {
                let snap = snapshot::load(path)?;
                snapshot::restore(&snap, &store, &predictor, &refit_state, &config.refit.ltm)?;
            }
        }
        let refit_lock = Arc::new(Mutex::new(()));
        let daemon = Arc::new(RefitDaemon::spawn(
            Arc::clone(&store),
            Arc::clone(&predictor),
            config.refit.clone(),
            Arc::clone(&refit_state),
            Arc::clone(&refit_lock),
        ));

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(Context {
            store,
            predictor,
            daemon,
            refit_state,
            snapshot_path: config.snapshot.clone(),
            requests: AtomicU64::new(0),
            started: Instant::now(),
            shutdown_requested: (Mutex::new(false), Condvar::new()),
        });

        let handler_ctx = Arc::clone(&ctx);
        // Duration::ZERO means "no timeout" — mapped to None explicitly,
        // because set_read_timeout(Some(ZERO)) is an error in std and
        // silently swallowing it would disable the slow-loris protection
        // while appearing configured.
        let io_timeout = (!config.io_timeout.is_zero()).then_some(config.io_timeout);
        let handler: Arc<dyn Fn(TcpStream) + Send + Sync> = Arc::new(move |mut stream| {
            // Bound both directions before parsing: a peer that connects
            // and sends nothing (or stalls, or drips bytes mid-head /
            // mid-body) must not wedge this worker thread forever. The
            // read side is a whole-request deadline enforced inside
            // read_request_with_deadline.
            if let Some(t) = io_timeout {
                let _ = stream.set_write_timeout(Some(t));
            }
            match read_request_with_deadline(&mut stream, io_timeout) {
                Ok(req) => {
                    let (status, body) = route(&handler_ctx, &req);
                    let _ = write_response(&mut stream, status, &body);
                }
                Err(_) => {
                    let _ = write_response(&mut stream, 400, "{\"error\":\"malformed request\"}");
                }
            }
        });
        let pool = ThreadPool::new(config.threads, handler);

        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_pool_sender = pool_sender(&pool);
        let accept = std::thread::Builder::new()
            .name("ltm-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        accept_pool_sender(stream);
                    }
                }
            })
            .expect("spawn accept thread");

        Ok(Server {
            addr,
            ctx,
            refit_lock,
            pool: Some(pool),
            accept: Some(accept),
            stop,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared store (test/benchmark access).
    pub fn store(&self) -> Arc<ShardedStore> {
        Arc::clone(&self.ctx.store)
    }

    /// The epoch predictor (test/benchmark access).
    pub fn predictor(&self) -> Arc<EpochPredictor> {
        Arc::clone(&self.ctx.predictor)
    }

    /// The lock the refit daemon holds for the duration of every refit.
    /// Tests acquire it to hold the daemon hostage and verify queries
    /// still serve.
    pub fn refit_lock(&self) -> Arc<Mutex<()>> {
        Arc::clone(&self.refit_lock)
    }

    /// Forces a refit pass (the daemon's schedule picks the mode).
    pub fn trigger_refit(&self) {
        self.ctx.daemon.trigger();
    }

    /// Forces a full (reconciliation) refit pass.
    pub fn trigger_full_refit(&self) {
        self.ctx.daemon.trigger_full();
    }

    /// The shared refit accumulator state (test/benchmark access).
    pub fn refit_state(&self) -> Arc<Mutex<RefitState>> {
        Arc::clone(&self.ctx.refit_state)
    }

    /// Saves a snapshot to `path` immediately.
    pub fn save_snapshot(&self, path: &std::path::Path) -> io::Result<()> {
        snapshot::save(
            &self.ctx.store,
            &self.ctx.predictor,
            &self.ctx.refit_state,
            path,
        )
    }

    /// Blocks until a `POST /admin/shutdown` arrives.
    pub fn wait_for_shutdown_request(&self) {
        let (flag, cv) = &self.ctx.shutdown_requested;
        let mut requested = flag.lock().expect("shutdown flag lock");
        while !*requested {
            requested = cv.wait(requested).expect("shutdown flag lock poisoned");
        }
    }

    /// Graceful stop: refit daemon, accept loop, worker pool — then the
    /// final snapshot (if configured).
    pub fn shutdown(mut self) -> io::Result<()> {
        self.ctx.daemon.shutdown();
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        if let Some(path) = &self.ctx.snapshot_path {
            snapshot::save(
                &self.ctx.store,
                &self.ctx.predictor,
                &self.ctx.refit_state,
                path,
            )?;
        }
        Ok(())
    }
}

/// A dispatch closure for the accept thread (borrow-friendly indirection:
/// the pool itself stays owned by [`Server`]).
fn pool_sender(pool: &ThreadPool) -> impl Fn(TcpStream) + Send + 'static {
    let sender = pool.sender_clone();
    move |stream| {
        if let Some(sender) = &sender {
            let _ = sender.send(stream);
        }
    }
}
