//! The HTTP front end: routes, JSON schemas, and server lifecycle.
//!
//! A server hosts named **domains** (see [`crate::domain`]), each bound
//! to a [`ModelKind`]. Domain-scoped routes live under `/d/{domain}/…`;
//! the legacy un-prefixed routes address the [`DEFAULT_DOMAIN`]. The
//! complete request/response reference with curl examples is
//! `docs/API.md`; the route table:
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/claims`, `/d/{domain}/claims` | POST | ingest triples (4-field with value in real-valued domains) |
//! | `/facts/{id}`, `/d/{domain}/facts/{id}` | GET | one fact's names, claims, and current probability |
//! | `/query`, `/d/{domain}/query` | POST | score an ad-hoc claim list |
//! | `/admin/refit`, `/d/{domain}/admin/refit` | POST | force a refit pass (`?mode=full\|incremental`) |
//! | `/d/{domain}/stats` | GET | one domain's stats section |
//! | `/domains` | GET | list hosted domains |
//! | `/admin/domains` | POST | create a domain (`{"name","kind"}`) |
//! | `/healthz` | GET | liveness + default-domain epoch (503 `degraded` after a WAL/snapshot write failure) |
//! | `/stats` | GET | global + per-domain counters (incl. `wal_*` and compaction) |
//! | `/admin/snapshot` | POST | save a snapshot (`{"path": "…"}` optional) |
//! | `/admin/compact` | POST | seal + fold the WAL into the snapshot, delete covered segments |
//! | `/admin/shutdown` | POST | request a graceful stop |
//!
//! Queries read the current [`EpochSnapshot`](crate::epoch::EpochSnapshot)
//! of their domain through one `Arc` clone and never wait on any refit
//! daemon; see DESIGN.md §6.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ltm_model::SourceId;
use serde::{Serialize, Value};

use crate::domain::{Domain, DomainError, DomainObs, DomainSet, DEFAULT_DOMAIN};
use crate::epoch::EpochPredictor;
use crate::event_loop::{self, EventLoop, EventLoopConfig};
use crate::http::{
    is_too_large, read_request_with_deadline, write_response, write_response_with_type, Request,
    Response, ThreadPool,
};
use crate::model::ModelKind;
use crate::obs::registry::{escape_label, fmt_f64};
use crate::obs::{self, Counter, Gauge, Histogram, Registry, ScopedGauge, Unit};
use crate::refit::{RefitConfig, RefitObs, RefitState};
use crate::shadow::{self, ShadowObs, ShadowTables};
use crate::snapshot;
use crate::store::{LogRecord, ShardedStore};
use crate::sync::{wait_recovered, LockExt};
use crate::wal::{self, DomainWal, WalConfig, WalDomainMeta, WalObs};

/// Server configuration.
///
/// # Example
///
/// ```
/// use ltm_serve::model::ModelKind;
/// use ltm_serve::server::ServeConfig;
/// use std::time::Duration;
///
/// let config = ServeConfig {
///     addr: "127.0.0.1:0".into(), // ephemeral port
///     // A real-valued domain beside the implicit boolean `default`.
///     domains: vec![("scores".into(), ModelKind::RealValued)],
///     io_timeout: Duration::from_secs(5),
///     ..ServeConfig::default()
/// };
/// assert_eq!(config.shards, 4);
/// assert_eq!(config.domains[0].1, ModelKind::RealValued);
/// // Server::start(config) boots the multi-domain server.
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Store shard count (per domain).
    pub shards: usize,
    /// HTTP worker threads.
    pub threads: usize,
    /// Refit daemon configuration (shared by every domain).
    pub refit: RefitConfig,
    /// Extra domains to create at boot, beside the implicit boolean
    /// [`DEFAULT_DOMAIN`] (which always exists).
    pub domains: Vec<(String, ModelKind)>,
    /// Snapshot path: loaded at boot when the file exists, saved on
    /// graceful shutdown and on `POST /admin/snapshot`.
    pub snapshot: Option<PathBuf>,
    /// Per-connection I/O budget: a whole-request read deadline plus a
    /// per-write timeout on the response. A peer that connects and then
    /// stalls or drip-feeds bytes (slow-loris) is dropped once the
    /// deadline passes instead of wedging a worker thread forever.
    /// `Duration::ZERO` explicitly disables both.
    pub io_timeout: Duration,
    /// Write-ahead-log configuration. When set, every accepted ingest
    /// batch is journaled and fsync'd (per [`WalConfig::sync`]) before
    /// the HTTP ack, boot replays the WAL tail, and a background
    /// compactor folds sealed segments into the snapshot (defaulting
    /// `snapshot` to `<wal-dir>/snapshot.json` when unset). `None` keeps
    /// the pre-durability behaviour: memory + explicit snapshots only.
    pub wal: Option<WalConfig>,
    /// Whether to record metrics (request latency histograms, WAL and
    /// refit spans, ingest counters). On by default; the benchmark
    /// harness turns it off to measure instrumentation overhead. With
    /// metrics off, `GET /metrics` still serves but the recorded
    /// families stay empty and `/stats` `requests` stays 0.
    pub metrics: bool,
    /// Which HTTP front end to run (see [`Frontend`]).
    pub frontend: Frontend,
}

/// Which HTTP front end serves connections.
///
/// The **event loop** (one epoll readiness thread + a worker pool, see
/// [`crate::event_loop`]) supports HTTP/1.1 keep-alive and pipelining
/// and holds thousands of connections on a fixed thread census; the
/// **blocking** pool (one worker thread reads one connection at a time,
/// `Connection: close` per request) is the portable fallback for
/// targets without epoll.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontend {
    /// The event loop where supported (Linux), else the blocking pool.
    #[default]
    Auto,
    /// The event loop, failing boot where unsupported.
    Epoll,
    /// The blocking thread pool, everywhere.
    Blocking,
}

impl std::str::FromStr for Frontend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Frontend::Auto),
            "epoll" => Ok(Frontend::Epoll),
            "blocking" => Ok(Frontend::Blocking),
            other => Err(format!(
                "unknown frontend `{other}` (use auto, epoll, or blocking)"
            )),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            shards: 4,
            threads: 4,
            refit: RefitConfig::default(),
            domains: Vec::new(),
            snapshot: None,
            io_timeout: Duration::from_secs(10),
            wal: None,
            metrics: true,
            frontend: Frontend::Auto,
        }
    }
}

/// Everything a request handler needs, shared across workers.
struct Context {
    domains: Arc<DomainSet>,
    /// Shard count and refit config for runtime-created domains.
    shards: usize,
    refit: RefitConfig,
    snapshot_path: Option<PathBuf>,
    /// WAL configuration, when durability is on (runtime-created domains
    /// get their own [`DomainWal`] from it).
    wal: Option<WalConfig>,
    /// Serialises every snapshot save to `snapshot_path`. Compaction
    /// deletes WAL segments the snapshot covers, so a racing save that
    /// captured *older* state must never rename into place after a
    /// newer one — all configured-path saves go through this lock.
    persist: Mutex<()>,
    /// Set when the last snapshot save failed, cleared by the next
    /// success; `/healthz` then reports 503 `degraded`.
    snapshot_failed: AtomicBool,
    /// Compaction bookkeeping for `/stats`.
    compaction: Mutex<CompactionStatus>,
    /// The metrics registry behind both `GET /metrics` and the counter
    /// fields of `/stats` — one source of truth for both surfaces.
    obs: Arc<Registry>,
    /// Completed requests, all endpoints (`ltm_http_requests_total`).
    requests: Arc<Counter>,
    /// Requests currently being handled
    /// (`ltm_http_requests_in_flight`).
    in_flight: Arc<Gauge>,
    /// Open HTTP connections (`ltm_open_connections`; event-loop front
    /// end only — the blocking pool has no connection table).
    open_connections: Arc<Gauge>,
    /// Second-and-later requests served on one keep-alive connection
    /// (`ltm_keepalive_reuse_total`; event-loop front end only).
    keepalive_reuse: Arc<Counter>,
    /// Batched-query sizes, in fact queries per batch
    /// (`ltm_batch_query_size`); its count is the number of batch
    /// requests served.
    batch_size: Arc<Histogram>,
    /// Whether handlers record metrics (see [`ServeConfig::metrics`]).
    metrics: bool,
    started: Instant,
    shutdown_requested: (Mutex<bool>, Condvar),
}

/// When compaction last ran and how often it has.
#[derive(Debug, Default)]
struct CompactionStatus {
    last_done: Option<Instant>,
    runs: u64,
}

/// Sentinel "path" for connections whose request never parsed — they
/// still count, under `endpoint="malformed"`.
const MALFORMED_PATH: &str = "<malformed>";

impl Context {
    /// Whether the server should report itself degraded: the last WAL
    /// append/fsync of any domain failed, or the last snapshot save did.
    fn degraded(&self) -> bool {
        self.snapshot_failed.load(Ordering::Relaxed)
            || self
                .domains
                .list()
                .iter()
                .any(|d| d.wal().is_some_and(|w| w.degraded()))
    }

    /// Saves a snapshot to the configured path under the persist lock,
    /// maintaining the degraded flag. `Err` if no path is configured.
    fn save_configured_snapshot(&self) -> io::Result<()> {
        let path = self.snapshot_path.as_ref().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no snapshot path configured")
        })?;
        let _guard = self.persist.locked();
        let result = snapshot::save(&self.domains, path);
        self.snapshot_failed
            .store(result.is_err(), Ordering::Relaxed);
        result
    }

    /// One compaction pass: capture each domain's accepted sequence,
    /// fold everything into the snapshot (the v2 snapshot holds the full
    /// replay log, so one save covers every domain), then delete the
    /// sealed segments the snapshot now covers. Returns segments
    /// deleted. `seal_first` rotates active segments so the entire log
    /// becomes foldable (`/admin/compact`, shutdown); the background
    /// compactor leaves active segments alone.
    fn compact(&self, seal_first: bool) -> io::Result<usize> {
        let walled: Vec<(Arc<Domain>, u64)> = self
            .domains
            .list()
            .into_iter()
            .filter(|d| d.wal().is_some())
            .map(|d| {
                let covered = d.store().accepted_seq();
                (d, covered)
            })
            .collect();
        if seal_first {
            for (domain, covered) in &walled {
                domain
                    .wal()
                    // analyzer: allow(panic-expect) -- walled only holds domains whose wal() was Some above
                    .expect("filtered to walled domains")
                    .seal_active(covered + 1)?;
            }
        }
        self.save_configured_snapshot()?;
        let mut deleted = 0;
        for (domain, covered) in &walled {
            deleted += domain
                .wal()
                // analyzer: allow(panic-expect) -- walled only holds domains whose wal() was Some above
                .expect("filtered to walled domains")
                .delete_segments_covered_by(*covered)?;
        }
        let mut status = self.compaction.locked();
        status.last_done = Some(Instant::now());
        status.runs += 1;
        drop(status);
        Ok(deleted)
    }

    /// Records one completed request: the grand-total counter, the
    /// per-endpoint latency histogram, and a debug log line carrying the
    /// request id. Called after routing but **before** the response is
    /// written, so any strictly-later `/metrics` scrape already counts
    /// the request — within one scrape body,
    /// `ltm_http_requests_total == Σ ltm_http_request_duration_seconds_count`
    /// always holds.
    fn observe_request(
        &self,
        method: &str,
        path: &str,
        status: u16,
        started: Instant,
        req_id: u64,
    ) {
        if !self.metrics {
            return;
        }
        let elapsed = started.elapsed();
        let (endpoint, domain) = self.endpoint_label(path);
        self.requests.inc();
        self.obs
            .histogram(
                "ltm_http_request_duration_seconds",
                &[("endpoint", &endpoint), ("domain", &domain)],
                obs::Unit::Micros,
            )
            .record_duration(elapsed);
        crate::log_debug!(
            "http",
            "req#{req_id} {method} {path} -> {status} in {:.3}ms",
            elapsed.as_secs_f64() * 1e3
        );
    }

    /// Collapses a request path into a bounded `(endpoint, domain)`
    /// label pair: known routes verbatim, fact lookups as
    /// `/facts/{id}`, query strings stripped, unknown paths as `other`.
    /// `/d/{name}/…` paths only yield `domain=name` for names that
    /// resolve to a hosted domain — anything else is `other`, so an
    /// unauthenticated path scan cannot mint unbounded label values.
    fn endpoint_label(&self, path: &str) -> (String, String) {
        if path == MALFORMED_PATH {
            return ("malformed".into(), "none".into());
        }
        let (domain, rest) = match path.strip_prefix("/d/") {
            Some(after) => match after.split_once('/') {
                Some((name, rest)) if self.domains.get(name).is_some() => {
                    (name.to_owned(), format!("/{rest}"))
                }
                _ => return ("other".into(), "none".into()),
            },
            None => (DEFAULT_DOMAIN.to_owned(), path.to_owned()),
        };
        let rest = rest.split('?').next().unwrap_or("");
        let endpoint = match rest {
            "/healthz" | "/stats" | "/domains" | "/metrics" | "/claims" | "/query"
            | "/query/batch" | "/eval" | "/admin/domains" | "/admin/snapshot"
            | "/admin/compact" | "/admin/shutdown" | "/admin/refit" | "/admin/labels" => {
                rest.to_owned()
            }
            p if p.starts_with("/facts/") => "/facts/{id}".to_owned(),
            _ => "other".to_owned(),
        };
        (endpoint, domain)
    }
}

// ---------------------------------------------------------------------------
// JSON schemas
// ---------------------------------------------------------------------------

#[derive(Debug, Serialize)]
struct ClaimsResponse {
    domain: String,
    accepted: usize,
    duplicates: usize,
    new_facts: usize,
    pending: usize,
    epoch: u64,
}

#[derive(Debug, Serialize)]
struct QueryResponse {
    domain: String,
    probability: f64,
    epoch: u64,
    unknown_sources: Vec<String>,
}

/// The `?methods=` variant of a query response: `probability` is still
/// the LTM answer; `methods` maps each requested wire name (plus
/// `"ensemble"` when requested) to its score.
#[derive(Debug, Serialize)]
struct QueryMethodsResponse {
    domain: String,
    probability: f64,
    epoch: u64,
    unknown_sources: Vec<String>,
    methods: BTreeMap<String, f64>,
}

/// One scored fact query inside a `POST …/query/batch` response.
#[derive(Debug, Serialize)]
struct BatchItem {
    probability: f64,
    unknown_sources: Vec<String>,
}

/// `POST …/query/batch` — every query scored against **one** epoch
/// snapshot, results in request order.
#[derive(Debug, Serialize)]
struct BatchQueryResponse {
    domain: String,
    epoch: u64,
    count: usize,
    results: Vec<BatchItem>,
}

/// The `?methods=` variant of a batch item.
#[derive(Debug, Serialize)]
struct BatchItemMethods {
    probability: f64,
    unknown_sources: Vec<String>,
    methods: BTreeMap<String, f64>,
}

/// The `?methods=` variant of a batch response.
#[derive(Debug, Serialize)]
struct BatchQueryMethodsResponse {
    domain: String,
    epoch: u64,
    count: usize,
    results: Vec<BatchItemMethods>,
}

/// One method's rolling evaluation against the loaded labels.
#[derive(Debug, Serialize)]
struct MethodEval {
    accuracy: f64,
    precision: f64,
    recall: f64,
    f1: f64,
    auc: f64,
    brier: f64,
}

/// `GET …/eval` — per-method metrics over the labels that join to facts
/// in the current epoch's shadow tables.
#[derive(Debug, Serialize)]
struct EvalResponse {
    domain: String,
    epoch: u64,
    labels: usize,
    matched: usize,
    threshold: f64,
    methods: BTreeMap<String, MethodEval>,
}

#[derive(Debug, Serialize)]
struct LabelsResponse {
    domain: String,
    loaded: usize,
    total: usize,
}

#[derive(Debug, Serialize)]
struct FactResponse {
    domain: String,
    id: u64,
    entity: String,
    attribute: String,
    claims: usize,
    positive: usize,
    probability: f64,
    epoch: u64,
}

#[derive(Debug, Serialize)]
struct HealthResponse {
    status: String,
    epoch: u64,
}

#[derive(Debug, Serialize)]
struct DomainInfo {
    name: String,
    kind: String,
    epoch: u64,
    facts: usize,
}

#[derive(Debug, Serialize)]
struct DomainsResponse {
    domains: Vec<DomainInfo>,
}

/// One domain's `/stats` section.
#[derive(Debug, Serialize)]
struct DomainStats {
    kind: String,
    shards: usize,
    facts: usize,
    claims: usize,
    positive_claims: usize,
    sources: usize,
    pending: usize,
    duplicate_rows: u64,
    epoch: u64,
    epoch_max_rhat: f64,
    epoch_converged_fraction: f64,
    epoch_trained_claims: usize,
    epochs_published: u64,
    epochs_rejected: u64,
    refits_started: u64,
    refits_incremental: u64,
    refits_full: u64,
    refits_failed: u64,
    last_incremental_refit_secs: f64,
    last_full_refit_secs: f64,
    fold_watermark: u64,
    wal_appends: u64,
    wal_fsyncs: u64,
    wal_bytes: u64,
    wal_replayed_rows: u64,
    labels_loaded: usize,
    shadow_facts: usize,
    /// Shadow method wire names, indexing both agreement matrices below.
    /// Empty when the current epoch has no shadow tables.
    shadow_methods: Vec<String>,
    shadow_correlation: Vec<Vec<f64>>,
    shadow_decision_flips: Vec<Vec<u64>>,
}

/// The global `/stats` body. Additive counters (`facts` through
/// `refits_failed`, and the `wal_*` counters) are sums over every
/// domain — the per-domain sections under `domains` sum to them exactly;
/// the epoch-shaped fields (`epoch`, `epoch_max_rhat`, …,
/// `fold_watermark`, `shards`) mirror the [`DEFAULT_DOMAIN`] for
/// backward compatibility with single-domain deployments.
/// `last_compaction_secs` is the age of the last completed WAL
/// compaction (`-1.0` when none has run or no WAL is configured).
#[derive(Debug, Serialize)]
struct StatsResponse {
    shards: usize,
    facts: usize,
    claims: usize,
    positive_claims: usize,
    sources: usize,
    pending: usize,
    duplicate_rows: u64,
    epoch: u64,
    epoch_max_rhat: f64,
    epoch_converged_fraction: f64,
    epoch_trained_claims: usize,
    epochs_published: u64,
    epochs_rejected: u64,
    refits_started: u64,
    refits_incremental: u64,
    refits_full: u64,
    refits_failed: u64,
    last_incremental_refit_secs: f64,
    last_full_refit_secs: f64,
    fold_watermark: u64,
    wal_appends: u64,
    wal_fsyncs: u64,
    wal_bytes: u64,
    wal_replayed_rows: u64,
    last_compaction_secs: f64,
    compactions: u64,
    requests: u64,
    /// Currently open HTTP connections (0 on the blocking front end,
    /// which has no connection table).
    open_connections: i64,
    /// Second-and-later requests served over keep-alive connections.
    keepalive_reuses: u64,
    /// Batched query requests served (`POST …/query/batch`).
    batch_queries: u64,
    uptime_secs: f64,
    version: String,
    git_describe: String,
    domains: BTreeMap<String, DomainStats>,
}

#[derive(Debug, Serialize)]
struct ErrorResponse {
    error: String,
}

fn json<T: serde::Serialize>(status: u16, value: &T) -> (u16, String) {
    (
        status,
        serde_json::to_string(value).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}")),
    )
}

fn error(status: u16, message: impl Into<String>) -> (u16, String) {
    json(
        status,
        &ErrorResponse {
            error: message.into(),
        },
    )
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn route(ctx: &Context, req: &Request) -> (u16, String) {
    let method = req.method.as_str();
    let path = req.path.as_str();

    // Domain-scoped routes: `/d/{domain}/rest…`.
    if let Some(after) = path.strip_prefix("/d/") {
        let Some((name, rest)) = after.split_once('/') else {
            return error(
                404,
                format!("no route for {path} (expected /d/{{domain}}/…)"),
            );
        };
        let Some(domain) = ctx.domains.get(name) else {
            return error(404, format!("no domain `{name}`"));
        };
        return route_domain(ctx, &domain, method, &format!("/{rest}"), &req.body);
    }
    match path {
        "/healthz" => match method {
            "GET" => {
                let epoch = ctx.domains.default_domain().predictor().load().epoch;
                if ctx.degraded() {
                    json(
                        503,
                        &HealthResponse {
                            status: "degraded".into(),
                            epoch,
                        },
                    )
                } else {
                    json(
                        200,
                        &HealthResponse {
                            status: "ok".into(),
                            epoch,
                        },
                    )
                }
            }
            _ => error(405, "use GET /healthz"),
        },
        "/stats" => match method {
            "GET" => stats(ctx),
            _ => error(405, "use GET /stats"),
        },
        "/metrics" => match method {
            "GET" => metrics(ctx),
            _ => error(405, "use GET /metrics"),
        },
        "/domains" => match method {
            "GET" => list_domains(ctx),
            _ => error(405, "use GET /domains (create with POST /admin/domains)"),
        },
        "/admin/domains" => match method {
            "POST" => admin_create_domain(ctx, &req.body),
            _ => error(405, "use POST /admin/domains"),
        },
        "/admin/snapshot" => match method {
            "POST" => admin_snapshot(ctx, &req.body),
            _ => error(405, "use POST /admin/snapshot"),
        },
        "/admin/compact" => match method {
            "POST" => admin_compact(ctx),
            _ => error(405, "use POST /admin/compact"),
        },
        "/admin/shutdown" => match method {
            "POST" => {
                let (flag, cv) = &ctx.shutdown_requested;
                *flag.locked() = true;
                cv.notify_all();
                json(
                    202,
                    &HealthResponse {
                        status: "shutting down".into(),
                        epoch: ctx.domains.default_domain().predictor().load().epoch,
                    },
                )
            }
            _ => error(405, "use POST /admin/shutdown"),
        },
        // Everything else is a default-domain route.
        _ => route_domain(ctx, &ctx.domains.default_domain(), method, path, &req.body),
    }
}

/// Routes a request that resolved to one domain (either via `/d/{name}`
/// or the legacy un-prefixed paths on the default domain).
fn route_domain(
    ctx: &Context,
    domain: &Domain,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String) {
    match path {
        "/claims" => match method {
            "POST" => ingest(domain, body),
            _ => error(405, "use POST /claims"),
        },
        p if p == "/query/batch" || p.starts_with("/query/batch?") => match method {
            "POST" => query_batch(ctx, domain, p, body),
            _ => error(405, "use POST …/query/batch"),
        },
        p if p == "/query" || p.starts_with("/query?") => match method {
            "POST" => query(domain, p, body),
            _ => error(405, "use POST /query"),
        },
        "/stats" => match method {
            "GET" => json(200, &domain_stats(domain)),
            _ => error(405, "use GET …/stats"),
        },
        "/eval" => match method {
            "GET" => eval(domain),
            _ => error(405, "use GET …/eval"),
        },
        "/admin/labels" => match method {
            "POST" => admin_labels(domain, body),
            _ => error(405, "use POST …/admin/labels"),
        },
        p if p == "/admin/refit" || p.starts_with("/admin/refit?") => match method {
            "POST" => admin_refit(ctx, domain, p),
            _ => error(405, "use POST …/admin/refit"),
        },
        p if p.starts_with("/facts/") => match method {
            // analyzer: allow(panic-index) -- guarded by the starts_with("/facts/") arm
            "GET" => fact(domain, &p["/facts/".len()..]),
            _ => error(405, "use GET …/facts/{id}"),
        },
        other => error(404, format!("no route for {other}")),
    }
}

/// `POST …/admin/refit[?mode=full|incremental]` — arms the domain's
/// daemon. The default (no query) lets the daemon's own schedule pick
/// the mode; `mode=full` forces a reconciliation pass that rebuilds the
/// accumulator from zero.
fn admin_refit(_ctx: &Context, domain: &Domain, path: &str) -> (u16, String) {
    let query = path.split_once('?').map(|(_, q)| q).unwrap_or("");
    let status = match query {
        "" | "mode=incremental" => {
            domain.trigger_refit();
            "refit triggered"
        }
        "mode=full" => {
            domain.trigger_full_refit();
            "full refit triggered"
        }
        other => {
            return error(
                400,
                format!("unknown refit query `{other}` (use mode=full or mode=incremental)"),
            )
        }
    };
    json(
        202,
        &HealthResponse {
            status: status.into(),
            epoch: domain.predictor().load().epoch,
        },
    )
}

fn domain_stats(domain: &Domain) -> DomainStats {
    let s = domain.store().stats();
    let e = domain.predictor().load();
    let refit = domain.refit_state().locked().counters();
    let predictor: &EpochPredictor = domain.predictor();
    let (wal_appends, wal_fsyncs, wal_bytes, wal_replayed_rows) =
        domain.wal().map_or((0, 0, 0, 0), |w| w.counters());
    let (shadow_facts, shadow_methods, shadow_correlation, shadow_decision_flips) =
        match e.shadow.as_deref() {
            Some(t) => (
                t.num_facts(),
                t.agreement
                    .methods
                    .iter()
                    .map(|m| shadow::wire_name(m))
                    .collect(),
                t.agreement.correlation.clone(),
                t.agreement.decision_flips.clone(),
            ),
            None => (0, Vec::new(), Vec::new(), Vec::new()),
        };
    DomainStats {
        kind: domain.kind().as_str().to_owned(),
        shards: s.shards,
        facts: s.facts,
        claims: s.claims,
        positive_claims: s.positive_claims,
        sources: s.sources,
        pending: s.pending,
        duplicate_rows: s.duplicate_rows,
        epoch: e.epoch,
        epoch_max_rhat: e.max_rhat,
        epoch_converged_fraction: e.converged_fraction,
        epoch_trained_claims: e.trained_claims,
        epochs_published: predictor.epochs_published(),
        epochs_rejected: predictor.epochs_rejected(),
        refits_started: domain.daemon().map_or(0, |d| d.refits_started()),
        refits_incremental: refit.refits_incremental,
        refits_full: refit.refits_full,
        refits_failed: refit.refits_failed,
        last_incremental_refit_secs: refit.last_incremental_secs,
        last_full_refit_secs: refit.last_full_secs,
        fold_watermark: refit.watermark,
        wal_appends,
        wal_fsyncs,
        wal_bytes,
        wal_replayed_rows,
        labels_loaded: domain.num_labels(),
        shadow_facts,
        shadow_methods,
        shadow_correlation,
        shadow_decision_flips,
    }
}

fn stats(ctx: &Context) -> (u16, String) {
    let mut sections = BTreeMap::new();
    for domain in ctx.domains.list() {
        sections.insert(domain.name().to_owned(), domain_stats(&domain));
    }
    // analyzer: allow(panic-index) -- domains.list() always contains the default domain
    let default = &sections[DEFAULT_DOMAIN];
    let sum = |f: fn(&DomainStats) -> u64| sections.values().map(f).sum::<u64>();
    let sum_usize = |f: fn(&DomainStats) -> usize| sections.values().map(f).sum::<usize>();
    let compaction = {
        let status = ctx.compaction.locked();
        (
            status.last_done.map_or(-1.0, |t| t.elapsed().as_secs_f64()),
            status.runs,
        )
    };
    let response = StatsResponse {
        shards: default.shards,
        facts: sum_usize(|d| d.facts),
        claims: sum_usize(|d| d.claims),
        positive_claims: sum_usize(|d| d.positive_claims),
        sources: sum_usize(|d| d.sources),
        pending: sum_usize(|d| d.pending),
        duplicate_rows: sum(|d| d.duplicate_rows),
        epoch: default.epoch,
        epoch_max_rhat: default.epoch_max_rhat,
        epoch_converged_fraction: default.epoch_converged_fraction,
        epoch_trained_claims: default.epoch_trained_claims,
        epochs_published: sum(|d| d.epochs_published),
        epochs_rejected: sum(|d| d.epochs_rejected),
        refits_started: sum(|d| d.refits_started),
        refits_incremental: sum(|d| d.refits_incremental),
        refits_full: sum(|d| d.refits_full),
        refits_failed: sum(|d| d.refits_failed),
        last_incremental_refit_secs: default.last_incremental_refit_secs,
        last_full_refit_secs: default.last_full_refit_secs,
        fold_watermark: default.fold_watermark,
        wal_appends: sum(|d| d.wal_appends),
        wal_fsyncs: sum(|d| d.wal_fsyncs),
        wal_bytes: sum(|d| d.wal_bytes),
        wal_replayed_rows: sum(|d| d.wal_replayed_rows),
        last_compaction_secs: compaction.0,
        compactions: compaction.1,
        requests: ctx.requests.get(),
        open_connections: ctx.open_connections.get(),
        keepalive_reuses: ctx.keepalive_reuse.get(),
        batch_queries: ctx.batch_size.count(),
        uptime_secs: ctx.started.elapsed().as_secs_f64(),
        version: obs::BUILD_VERSION.to_owned(),
        git_describe: obs::BUILD_GIT.to_owned(),
        domains: sections,
    };
    json(200, &response)
}

/// `GET /metrics` — the whole registry in Prometheus text exposition
/// format, followed by sampled families (store/epoch/refit/WAL counters
/// read through the same [`domain_stats`] accessors `/stats` uses, so
/// the two surfaces always agree).
fn metrics(ctx: &Context) -> (u16, String) {
    let mut out = String::new();
    ctx.obs.render_prometheus(&mut out);
    render_sampled_metrics(ctx, &mut out);
    (200, out)
}

/// Appends the point-in-time families `/metrics` samples at scrape time
/// (values that live in domain stores/predictors rather than in
/// registry-owned atomics).
fn render_sampled_metrics(ctx: &Context, out: &mut String) {
    use std::fmt::Write as _;

    let _ = writeln!(out, "# TYPE ltm_build_info gauge");
    let _ = writeln!(
        out,
        "ltm_build_info{{version=\"{}\",git=\"{}\"}} 1",
        escape_label(obs::BUILD_VERSION),
        escape_label(obs::BUILD_GIT)
    );
    let _ = writeln!(out, "# TYPE ltm_uptime_seconds gauge");
    let _ = writeln!(
        out,
        "ltm_uptime_seconds {}",
        fmt_f64(ctx.started.elapsed().as_secs_f64())
    );
    let _ = writeln!(out, "# TYPE ltm_degraded gauge");
    let _ = writeln!(out, "ltm_degraded {}", u8::from(ctx.degraded()));
    let (last_compaction_secs, compactions) = {
        let status = ctx.compaction.locked();
        (
            status.last_done.map_or(-1.0, |t| t.elapsed().as_secs_f64()),
            status.runs,
        )
    };
    let _ = writeln!(out, "# TYPE ltm_wal_compactions_total counter");
    let _ = writeln!(out, "ltm_wal_compactions_total {compactions}");
    let _ = writeln!(out, "# TYPE ltm_last_compaction_age_seconds gauge");
    let _ = writeln!(
        out,
        "ltm_last_compaction_age_seconds {}",
        fmt_f64(last_compaction_secs)
    );

    // Per-domain families, each rendered from the same DomainStats
    // accessor /stats serializes.
    let domains: Vec<(String, DomainStats, f64)> = ctx
        .domains
        .list()
        .iter()
        .map(|d| {
            (
                d.name().to_owned(),
                domain_stats(d),
                d.predictor().epoch_age_secs(),
            )
        })
        .collect();
    type Get = fn(&DomainStats) -> f64;
    let families: &[(&str, &str, Get)] = &[
        ("ltm_store_facts", "gauge", |s| s.facts as f64),
        ("ltm_store_claims", "gauge", |s| s.claims as f64),
        ("ltm_store_positive_claims", "gauge", |s| {
            s.positive_claims as f64
        }),
        ("ltm_store_sources", "gauge", |s| s.sources as f64),
        ("ltm_store_pending", "gauge", |s| s.pending as f64),
        ("ltm_store_duplicate_rows_total", "counter", |s| {
            s.duplicate_rows as f64
        }),
        ("ltm_epoch", "gauge", |s| s.epoch as f64),
        ("ltm_epoch_max_rhat", "gauge", |s| s.epoch_max_rhat),
        ("ltm_epoch_converged_fraction", "gauge", |s| {
            s.epoch_converged_fraction
        }),
        ("ltm_epoch_trained_claims", "gauge", |s| {
            s.epoch_trained_claims as f64
        }),
        ("ltm_epochs_published_total", "counter", |s| {
            s.epochs_published as f64
        }),
        ("ltm_epochs_rejected_total", "counter", |s| {
            s.epochs_rejected as f64
        }),
        ("ltm_refits_started_total", "counter", |s| {
            s.refits_started as f64
        }),
        ("ltm_refits_incremental_total", "counter", |s| {
            s.refits_incremental as f64
        }),
        ("ltm_refits_full_total", "counter", |s| s.refits_full as f64),
        ("ltm_refits_failed_total", "counter", |s| {
            s.refits_failed as f64
        }),
        ("ltm_last_incremental_refit_seconds", "gauge", |s| {
            s.last_incremental_refit_secs
        }),
        ("ltm_last_full_refit_seconds", "gauge", |s| {
            s.last_full_refit_secs
        }),
        ("ltm_fold_watermark", "gauge", |s| s.fold_watermark as f64),
        ("ltm_wal_appends_total", "counter", |s| s.wal_appends as f64),
        ("ltm_wal_fsyncs_total", "counter", |s| s.wal_fsyncs as f64),
        ("ltm_wal_bytes_total", "counter", |s| s.wal_bytes as f64),
        ("ltm_wal_replayed_rows_total", "counter", |s| {
            s.wal_replayed_rows as f64
        }),
    ];
    for (name, kind, get) in families {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (domain, stats, _) in &domains {
            let _ = writeln!(
                out,
                "{name}{{domain=\"{}\"}} {}",
                escape_label(domain),
                fmt_f64(get(stats))
            );
        }
    }
    let _ = writeln!(out, "# TYPE ltm_epoch_age_seconds gauge");
    for (domain, _, age) in &domains {
        let _ = writeln!(
            out,
            "ltm_epoch_age_seconds{{domain=\"{}\"}} {}",
            escape_label(domain),
            fmt_f64(*age)
        );
    }

    // Shadow-predictor families, sampled from the same DomainStats. The
    // agreement matrices are symmetric with a trivial diagonal, so only
    // the upper triangle is exposed (a= < b= in method order).
    let _ = writeln!(out, "# TYPE ltm_shadow_facts gauge");
    for (domain, stats, _) in &domains {
        let _ = writeln!(
            out,
            "ltm_shadow_facts{{domain=\"{}\"}} {}",
            escape_label(domain),
            stats.shadow_facts
        );
    }
    let _ = writeln!(out, "# TYPE ltm_eval_labels gauge");
    for (domain, stats, _) in &domains {
        let _ = writeln!(
            out,
            "ltm_eval_labels{{domain=\"{}\"}} {}",
            escape_label(domain),
            stats.labels_loaded
        );
    }
    let _ = writeln!(out, "# TYPE ltm_shadow_correlation gauge");
    for (domain, stats, _) in &domains {
        for (i, a) in stats.shadow_methods.iter().enumerate() {
            for (j, b) in stats.shadow_methods.iter().enumerate().skip(i + 1) {
                let Some(c) = stats.shadow_correlation.get(i).and_then(|r| r.get(j)) else {
                    continue;
                };
                let _ = writeln!(
                    out,
                    "ltm_shadow_correlation{{domain=\"{}\",a=\"{}\",b=\"{}\"}} {}",
                    escape_label(domain),
                    escape_label(a),
                    escape_label(b),
                    fmt_f64(*c)
                );
            }
        }
    }
    let _ = writeln!(out, "# TYPE ltm_shadow_decision_flips gauge");
    for (domain, stats, _) in &domains {
        for (i, a) in stats.shadow_methods.iter().enumerate() {
            for (j, b) in stats.shadow_methods.iter().enumerate().skip(i + 1) {
                let Some(f) = stats.shadow_decision_flips.get(i).and_then(|r| r.get(j)) else {
                    continue;
                };
                let _ = writeln!(
                    out,
                    "ltm_shadow_decision_flips{{domain=\"{}\",a=\"{}\",b=\"{}\"}} {}",
                    escape_label(domain),
                    escape_label(a),
                    escape_label(b),
                    f
                );
            }
        }
    }
}

fn list_domains(ctx: &Context) -> (u16, String) {
    let domains = ctx
        .domains
        .list()
        .iter()
        .map(|d| DomainInfo {
            name: d.name().to_owned(),
            kind: d.kind().as_str().to_owned(),
            epoch: d.predictor().load().epoch,
            facts: d.store().stats().facts,
        })
        .collect();
    json(200, &DomainsResponse { domains })
}

fn admin_create_domain(ctx: &Context, body: &str) -> (u16, String) {
    let parsed: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return error(400, format!("bad domain body: {e}")),
    };
    let field = |name: &str| match parsed.get_field(name) {
        Some(Value::Str(s)) => Ok(s.clone()),
        _ => Err(format!("domain body needs a string `{name}` field")),
    };
    let (name, kind_text) = match (field("name"), field("kind")) {
        (Ok(n), Ok(k)) => (n, k),
        (Err(e), _) | (_, Err(e)) => return error(400, e),
    };
    let kind: ModelKind = match kind_text.parse() {
        Ok(k) => k,
        Err(e) => return error(400, format!("{e}")),
    };
    match create_domain(ctx, &name, kind) {
        Ok(domain) => json(
            201,
            &DomainInfo {
                name: domain.name().to_owned(),
                kind: domain.kind().as_str().to_owned(),
                epoch: 0,
                facts: 0,
            },
        ),
        Err(DomainError::AlreadyExists(name)) => {
            error(409, format!("domain `{name}` already exists"))
        }
        Err(DomainError::InvalidName(msg)) => error(400, msg),
        Err(DomainError::Wal(msg)) => error(500, msg),
    }
}

/// Creates and registers a runtime domain, spawning its refit daemon
/// only after the registry accepted the name. On a WAL-enabled server
/// the new domain gets its own log (and `meta.json` sidecar, so a later
/// boot re-creates the domain even if no snapshot ever records it)
/// before it can accept a single claim.
fn create_domain(ctx: &Context, name: &str, kind: ModelKind) -> Result<Arc<Domain>, DomainError> {
    let domain = Domain::new(name, kind, ctx.shards, &ctx.refit);
    if let Some(wal_config) = &ctx.wal {
        let meta = WalDomainMeta {
            kind: kind.as_str().to_owned(),
            shards: ctx.shards,
        };
        let (domain_wal, _) = DomainWal::open(wal_config, name, &meta, domain.store())
            .map_err(|e| DomainError::Wal(format!("cannot open WAL for `{name}`: {e}")))?;
        domain.attach_wal(Arc::new(domain_wal));
    }
    if ctx.metrics {
        attach_domain_obs(&ctx.obs, &domain);
    }
    ctx.domains.insert(Arc::clone(&domain))?;
    domain.spawn_daemon(ctx.refit.clone());
    Ok(domain)
}

/// One parsed ingest row: `(entity, attr, source, value)`.
type IngestRow = (String, String, String, Option<f64>);

/// Parses an ingest body into rows. Boolean and positive-only domains
/// take 3-field triples; real-valued domains take 4-field rows with a
/// finite numeric value.
fn parse_triples(body: &str, kind: ModelKind) -> Result<Vec<IngestRow>, String> {
    let parsed: Value = serde_json::from_str(body).map_err(|e| format!("bad claims body: {e}"))?;
    let Some(Value::Array(rows)) = parsed.get_field("triples") else {
        return Err("claims body needs a `triples` array".into());
    };
    let want = if kind.valued() { 4 } else { 3 };
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let Value::Array(fields) = row else {
            return Err(format!(
                "triple {i} is not an array; no triples were ingested"
            ));
        };
        if fields.len() != want {
            return Err(format!(
                "triple {i} has {} fields, expected {want} for a {} domain; no triples \
                 were ingested",
                fields.len(),
                kind
            ));
        }
        // analyzer: allow(panic-index) -- fields.len() == want was checked above; callers pass j < want
        let text = |j: usize| match &fields[j] {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("triple {i} field {j} is not a string: {other:?}")),
        };
        let value = if kind.valued() {
            // analyzer: allow(panic-index) -- valued kinds were checked to have want == 4 fields
            let Some(v) = fields[3].as_f64() else {
                return Err(format!(
                    "triple {i} value is not a number: {:?}; no triples were ingested",
                    // analyzer: allow(panic-index) -- valued kinds were checked to have want == 4 fields
                    fields[3]
                ));
            };
            if !v.is_finite() {
                return Err(format!("triple {i} value must be finite"));
            }
            Some(v)
        } else {
            None
        };
        out.push((text(0)?, text(1)?, text(2)?, value));
    }
    Ok(out)
}

fn ingest(domain: &Domain, body: &str) -> (u16, String) {
    // Validate the whole batch before committing any of it, so a 400
    // never leaves a silently half-ingested prefix behind.
    let rows = match parse_triples(body, domain.kind()) {
        Ok(rows) => rows,
        Err(e) => return error(400, e),
    };
    let records: Vec<LogRecord> = rows
        .into_iter()
        .map(|(entity, attr, source, value)| LogRecord {
            entity,
            attr,
            source,
            value,
        })
        .collect();
    // One batched ingest: journaled to the WAL (if attached) under the
    // ingest-order lock and fsync'd before the 200 below — the ack IS
    // the durability contract.
    let outcome = match domain.ingest_batch(&records) {
        Ok(outcome) => outcome,
        Err(e) => {
            return error(
                500,
                format!(
                    "wal write failed: {e}; the rows are in memory but NOT durable — \
                     retry once the log recovers (duplicates are deduplicated, and the \
                     retry is acked only after the rows are re-journaled to the WAL)"
                ),
            )
        }
    };
    json(
        200,
        &ClaimsResponse {
            domain: domain.name().to_owned(),
            accepted: outcome.accepted as usize,
            duplicates: outcome.duplicates as usize,
            new_facts: outcome.new_facts as usize,
            pending: domain.store().pending(),
            epoch: domain.predictor().load().epoch,
        },
    )
}

/// Parses the `?methods=` query parameter of a query path. `Ok(None)`
/// when absent (the legacy LTM-only query), `Ok(Some(list))` with the
/// requested wire names otherwise (`all` expands to every shadow method
/// plus the ensemble).
fn parse_methods_param(path: &str) -> Result<Option<Vec<String>>, String> {
    let Some((_, query_string)) = path.split_once('?') else {
        return Ok(None);
    };
    let mut methods = None;
    for pair in query_string.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("methods", list)) => methods = Some(list),
            _ => return Err(format!("unknown query parameter `{pair}` (use methods=)")),
        }
    }
    let Some(list) = methods else { return Ok(None) };
    if list == "all" {
        let mut all = vec![shadow::wire_name(shadow::LTM_METHOD)];
        all.extend(
            ltm_baselines::all_baselines()
                .iter()
                .map(|m| shadow::wire_name(m.name())),
        );
        all.push(shadow::ENSEMBLE_METHOD.to_owned());
        return Ok(Some(all));
    }
    let requested: Vec<String> = list
        .split(',')
        .filter(|m| !m.is_empty())
        .map(str::to_owned)
        .collect();
    if requested.is_empty() {
        return Err("methods= lists no methods (use methods=all or a comma list)".into());
    }
    Ok(Some(requested))
}

/// Scores one ad-hoc boolean claim set under every requested method.
/// `tables` may be `None` only when `requested` is exactly `["ltm"]`.
fn method_scores(
    requested: &[String],
    tables: Option<&ShadowTables>,
    snap: &crate::epoch::EpochSnapshot,
    claims: &[(SourceId, bool)],
) -> Result<BTreeMap<String, f64>, String> {
    let ltm_wire = shadow::wire_name(shadow::LTM_METHOD);
    let mut out = BTreeMap::new();
    for wire in requested {
        let score = if *wire == ltm_wire {
            snap.predictor.predict_fact(claims)
        } else if *wire == shadow::ENSEMBLE_METHOD {
            let Some(tables) = tables else {
                return Err(format!("method `{wire}` needs shadow tables"));
            };
            let per_method: Vec<f64> = tables
                .methods
                .iter()
                .enumerate()
                .map(|(m, col)| {
                    if m == 0 {
                        snap.predictor.predict_fact(claims)
                    } else {
                        shadow::score_claims(&col.trust, claims)
                    }
                })
                .collect();
            tables.ensemble_of(&per_method)
        } else {
            let Some(tables) = tables else {
                return Err(format!("method `{wire}` needs shadow tables"));
            };
            let col = tables
                .method_index(wire)
                .and_then(|m| tables.methods.get(m));
            let Some(col) = col else {
                return Err(format!(
                    "unknown method `{wire}` (use methods=all, or a comma list of \
                     ltm, ensemble, {})",
                    ltm_baselines::all_baselines()
                        .iter()
                        .map(|m| shadow::wire_name(m.name()))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            };
            shadow::score_claims(&col.trust, claims)
        };
        out.insert(wire.clone(), score);
    }
    Ok(out)
}

/// One ad-hoc claim list parsed per the domain's kind: exactly one of
/// the two vectors is populated. Unknown source names resolve to an
/// out-of-range id that hits the predictor's prior-mean fallback and are
/// reported back by name.
struct ParsedClaims {
    bool_claims: Vec<(SourceId, bool)>,
    real_claims: Vec<(SourceId, f64)>,
    unknown: Vec<String>,
}

/// Parses one `claims`-shaped array (`[["source", true|false|value], …]`)
/// against a domain. `label` prefixes error messages (`"claim"` for the
/// single-query endpoint, `"query N claim"` for batch items).
fn parse_claim_rows(domain: &Domain, rows: &[Value], label: &str) -> Result<ParsedClaims, String> {
    let store = domain.store();
    let mut unknown = Vec::new();
    let mut resolve = |name: &str| {
        store.source_id(name).unwrap_or_else(|| {
            unknown.push(name.to_owned());
            SourceId::new(u32::MAX)
        })
    };
    let valued = domain.kind().valued();
    let mut bool_claims: Vec<(SourceId, bool)> = Vec::new();
    let mut real_claims: Vec<(SourceId, f64)> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let Value::Array(fields) = row else {
            return Err(format!("{label} {i} is not an array"));
        };
        let [Value::Str(name), observation] = fields.as_slice() else {
            return Err(format!(
                "{label} {i} must be [\"source\", {}]",
                if valued { "value" } else { "true|false" }
            ));
        };
        if valued {
            let Some(v) = observation.as_f64() else {
                return Err(format!(
                    "{label} {i}: this domain is real_valued; expected a numeric \
                     value, got {observation:?}"
                ));
            };
            if !v.is_finite() {
                return Err(format!("{label} {i} value must be finite"));
            }
            real_claims.push((resolve(name), v));
        } else {
            let Value::Bool(o) = observation else {
                return Err(format!(
                    "{label} {i}: this domain is {}; expected true|false, got {observation:?}",
                    domain.kind()
                ));
            };
            bool_claims.push((resolve(name), *o));
        }
    }
    Ok(ParsedClaims {
        bool_claims,
        real_claims,
        unknown,
    })
}

fn query(domain: &Domain, path: &str, body: &str) -> (u16, String) {
    let methods_param = match parse_methods_param(path) {
        Ok(m) => m,
        Err(e) => return error(400, e),
    };
    let parsed: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return error(400, format!("bad query body: {e}")),
    };
    let Some(Value::Array(rows)) = parsed.get_field("claims") else {
        return error(400, "query body needs a `claims` array");
    };
    let ParsedClaims {
        bool_claims,
        real_claims,
        unknown,
    } = match parse_claim_rows(domain, rows, "claim") {
        Ok(p) => p,
        Err(e) => return error(400, e),
    };
    let valued = domain.kind().valued();
    let snap = domain.predictor().load();
    let probability = if valued {
        snap.predictor.predict_real(&real_claims)
    } else {
        snap.predictor.predict_fact(&bool_claims)
    };
    let Some(requested) = methods_param else {
        return json(
            200,
            &QueryResponse {
                domain: domain.name().to_owned(),
                probability,
                epoch: snap.epoch,
                unknown_sources: unknown,
            },
        );
    };
    if valued {
        return error(
            409,
            "real-valued domains have no shadow methods (drop ?methods=)",
        );
    }
    let ltm_wire = shadow::wire_name(shadow::LTM_METHOD);
    let needs_tables = requested.iter().any(|m| *m != ltm_wire);
    let tables = snap.shadow.as_deref();
    if needs_tables && tables.is_none() {
        return error(
            409,
            "no shadow tables published yet (wait for the first promoted refit, or the \
             server runs with shadow fitting disabled)",
        );
    }
    match method_scores(&requested, tables, &snap, &bool_claims) {
        Ok(methods) => json(
            200,
            &QueryMethodsResponse {
                domain: domain.name().to_owned(),
                probability,
                epoch: snap.epoch,
                unknown_sources: unknown,
                methods,
            },
        ),
        Err(e) => error(400, e),
    }
}

/// `POST …/query/batch[?methods=…]` — scores a JSON array of fact
/// queries (`{"queries": [[["source", true], …], …]}`, each entry a
/// `claims`-shaped array) against **one** epoch snapshot, so every
/// result in the batch is mutually consistent; results come back in
/// request order. An empty batch is a valid no-op. The whole body is
/// validated before anything is scored — a 400 never returns a
/// half-answered batch.
fn query_batch(ctx: &Context, domain: &Domain, path: &str, body: &str) -> (u16, String) {
    let methods_param = match parse_methods_param(path) {
        Ok(m) => m,
        Err(e) => return error(400, e),
    };
    let parsed: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return error(400, format!("bad batch body: {e}")),
    };
    let Some(Value::Array(queries)) = parsed.get_field("queries") else {
        return error(
            400,
            "batch body needs a `queries` array (each entry a `claims`-shaped array)",
        );
    };
    let valued = domain.kind().valued();
    let mut items = Vec::with_capacity(queries.len());
    for (q, entry) in queries.iter().enumerate() {
        let Value::Array(rows) = entry else {
            return error(400, format!("query {q} is not an array of claims"));
        };
        match parse_claim_rows(domain, rows, &format!("query {q} claim")) {
            Ok(p) => items.push(p),
            Err(e) => return error(400, e),
        }
    }
    if ctx.metrics {
        ctx.batch_size.record(items.len() as u64);
    }
    // One snapshot, cloned out of one short critical section, answers
    // the whole batch — the per-query Arc-load cost is amortised away
    // and no refit promotion can land between two results.
    let snap = domain.predictor().load();
    let score = |item: &ParsedClaims| {
        if valued {
            snap.predictor.predict_real(&item.real_claims)
        } else {
            snap.predictor.predict_fact(&item.bool_claims)
        }
    };
    let Some(requested) = methods_param else {
        let results: Vec<BatchItem> = items
            .into_iter()
            .map(|item| BatchItem {
                probability: score(&item),
                unknown_sources: item.unknown,
            })
            .collect();
        let count = results.len();
        return json(
            200,
            &BatchQueryResponse {
                domain: domain.name().to_owned(),
                epoch: snap.epoch,
                count,
                results,
            },
        );
    };
    if valued {
        return error(
            409,
            "real-valued domains have no shadow methods (drop ?methods=)",
        );
    }
    let ltm_wire = shadow::wire_name(shadow::LTM_METHOD);
    let needs_tables = requested.iter().any(|m| *m != ltm_wire);
    let tables = snap.shadow.as_deref();
    if needs_tables && tables.is_none() {
        return error(
            409,
            "no shadow tables published yet (wait for the first promoted refit, or the \
             server runs with shadow fitting disabled)",
        );
    }
    let mut results = Vec::with_capacity(items.len());
    for item in items {
        match method_scores(&requested, tables, &snap, &item.bool_claims) {
            Ok(methods) => results.push(BatchItemMethods {
                probability: snap.predictor.predict_fact(&item.bool_claims),
                unknown_sources: item.unknown,
                methods,
            }),
            Err(e) => return error(400, e),
        }
    }
    let count = results.len();
    json(
        200,
        &BatchQueryMethodsResponse {
            domain: domain.name().to_owned(),
            epoch: snap.epoch,
            count,
            results,
        },
    )
}

/// `GET …/eval` — joins the loaded ground-truth labels against the
/// current epoch's shadow tables (by `(entity, attr)` name → global fact
/// id) and reports accuracy/precision/recall/F1/AUC/Brier per method,
/// including the rank-average ensemble.
fn eval(domain: &Domain) -> (u16, String) {
    let labels = domain.labels();
    if labels.is_empty() {
        return error(
            409,
            "no labels loaded (POST …/admin/labels or start with --labels FILE)",
        );
    }
    let snap = domain.predictor().load();
    let Some(tables) = snap.shadow.as_deref() else {
        return error(
            409,
            "no shadow tables published yet (wait for the first promoted refit, or the \
             server runs with shadow fitting disabled)",
        );
    };
    // Join labels to shadow rows. The label lock is already released;
    // fact_id_by_name takes one shard lock per lookup.
    let store = domain.store();
    let mut rows: Vec<usize> = Vec::new();
    let mut truths: Vec<bool> = Vec::new();
    for (entity, attr, truth) in &labels {
        let Some(id) = store.fact_id_by_name(entity, attr) else {
            continue;
        };
        let Ok(row) = tables.fact_ids.binary_search(&id) else {
            continue;
        };
        rows.push(row);
        truths.push(*truth);
    }
    if rows.is_empty() {
        return error(
            409,
            format!(
                "none of the {} label(s) match facts in the current shadow tables",
                labels.len()
            ),
        );
    }
    let mut truth = ltm_model::GroundTruth::new();
    for (i, &t) in truths.iter().enumerate() {
        truth.insert(
            ltm_model::EntityId::new(0),
            ltm_model::FactId::from_usize(i),
            t,
        );
    }
    let threshold = 0.5;
    let score_eval = |scores: Vec<f64>| {
        let pred = ltm_model::TruthAssignment::new(scores);
        let m = ltm_eval::evaluate(&truth, &pred, threshold);
        MethodEval {
            accuracy: m.accuracy,
            precision: m.precision,
            recall: m.recall,
            f1: m.f1,
            auc: ltm_eval::auc(&truth, &pred),
            brier: ltm_eval::brier_score(&truth, &pred),
        }
    };
    let mut methods = BTreeMap::new();
    for col in &tables.methods {
        let scores: Vec<f64> = rows
            .iter()
            .filter_map(|&r| col.scores.get(r).copied())
            .collect();
        methods.insert(shadow::wire_name(&col.name), score_eval(scores));
    }
    let ensemble: Vec<f64> = rows
        .iter()
        .filter_map(|&r| tables.ensemble.get(r).copied())
        .collect();
    methods.insert(shadow::ENSEMBLE_METHOD.to_owned(), score_eval(ensemble));
    json(
        200,
        &EvalResponse {
            domain: domain.name().to_owned(),
            epoch: snap.epoch,
            labels: labels.len(),
            matched: rows.len(),
            threshold,
            methods,
        },
    )
}

/// `POST …/admin/labels` — merges ground-truth labels into the domain:
/// `{"labels": [["entity", "attr", true], …]}`.
fn admin_labels(domain: &Domain, body: &str) -> (u16, String) {
    let parsed: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return error(400, format!("bad labels body: {e}")),
    };
    let Some(Value::Array(rows)) = parsed.get_field("labels") else {
        return error(400, "labels body needs a `labels` array");
    };
    let mut parsed_rows = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let Value::Array(fields) = row else {
            return error(
                400,
                format!("label {i} is not an array; no labels were loaded"),
            );
        };
        let [Value::Str(entity), Value::Str(attr), Value::Bool(truth)] = fields.as_slice() else {
            return error(
                400,
                format!("label {i} must be [\"entity\", \"attr\", true|false]"),
            );
        };
        parsed_rows.push((entity.clone(), attr.clone(), *truth));
    }
    let loaded = parsed_rows.len();
    let total = domain.add_labels(parsed_rows);
    json(
        200,
        &LabelsResponse {
            domain: domain.name().to_owned(),
            loaded,
            total,
        },
    )
}

/// How a `/facts/{id}` path segment parsed.
enum FactId {
    /// A canonical decimal id.
    Ok(u64),
    /// Syntactically not a fact id (signs, blanks, trailing segments…).
    Malformed,
    /// All digits but beyond `u64` — cannot name a stored fact.
    OutOfRange,
}

/// Strict fact-id parsing: ASCII digits only. `u64::from_str` also
/// accepts a leading `+`, so `/facts/+3` would otherwise alias
/// `/facts/3` — a malformed path must be a clean 400, never a quiet
/// alias of a valid one.
fn parse_fact_id(text: &str) -> FactId {
    if text.is_empty() || !text.bytes().all(|b| b.is_ascii_digit()) {
        return FactId::Malformed;
    }
    match text.parse::<u64>() {
        Ok(id) => FactId::Ok(id),
        Err(_) => FactId::OutOfRange,
    }
}

fn fact(domain: &Domain, id_text: &str) -> (u16, String) {
    let id = match parse_fact_id(id_text) {
        FactId::Ok(id) => id,
        FactId::Malformed => return error(400, format!("bad fact id {id_text:?}")),
        FactId::OutOfRange => return error(404, format!("no fact {id_text}")),
    };
    let store: &ShardedStore = domain.store();
    let Some(view) = store.fact(id) else {
        return error(404, format!("no fact {id}"));
    };
    let snap = domain.predictor().load();
    let probability = if domain.kind().valued() {
        // analyzer: allow(panic-expect) -- fact(id) resolved above, so the registry maps id in fact_real too
        let real = store.fact_real(id).expect("fact resolved above");
        snap.predictor.predict_real(&real.claims)
    } else {
        snap.predictor.predict_fact(&view.claims)
    };
    json(
        200,
        &FactResponse {
            domain: domain.name().to_owned(),
            id: view.id,
            entity: view.entity,
            attribute: view.attr,
            claims: view.claims.len(),
            positive: view.claims.iter().filter(|(_, o)| *o).count(),
            probability,
            epoch: snap.epoch,
        },
    )
}

#[derive(Debug, serde::Deserialize)]
struct SnapshotRequest {
    path: Option<String>,
}

fn admin_snapshot(ctx: &Context, body: &str) -> (u16, String) {
    let requested: Option<PathBuf> = if body.trim().is_empty() {
        None
    } else {
        match serde_json::from_str::<SnapshotRequest>(body) {
            Ok(r) => r.path.map(PathBuf::from),
            Err(e) => return error(400, format!("bad snapshot body: {e}")),
        }
    };
    let Some(path) = requested.or_else(|| ctx.snapshot_path.clone()) else {
        return error(400, "no snapshot path configured or supplied");
    };
    // The configured path feeds WAL compaction (segment deletion trusts
    // it), so those saves are serialised and tracked; ad-hoc paths are
    // plain saves.
    let result = if Some(&path) == ctx.snapshot_path.as_ref() {
        ctx.save_configured_snapshot()
    } else {
        snapshot::save(&ctx.domains, &path)
    };
    match result {
        Ok(()) => json(
            200,
            &HealthResponse {
                status: format!("snapshot saved to {}", path.display()),
                epoch: ctx.domains.default_domain().predictor().load().epoch,
            },
        ),
        Err(e) => error(500, format!("snapshot failed: {e}")),
    }
}

#[derive(Debug, Serialize)]
struct CompactResponse {
    status: String,
    deleted_segments: usize,
}

/// `POST /admin/compact` — seals every domain's active WAL segment,
/// folds the whole log into the snapshot, and deletes the covered
/// segments. 400 without a WAL.
fn admin_compact(ctx: &Context) -> (u16, String) {
    if ctx.wal.is_none() {
        return error(400, "no WAL configured (start the server with --wal-dir)");
    }
    match ctx.compact(true) {
        Ok(deleted) => json(
            200,
            &CompactResponse {
                status: "compacted".into(),
                deleted_segments: deleted,
            },
        ),
        Err(e) => error(500, format!("compaction failed: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

/// A running server. Dropping it without calling [`Server::shutdown`]
/// aborts the accept loop without a final snapshot.
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<Context>,
    /// Blocking front end only.
    pool: Option<ThreadPool>,
    /// Blocking front end only.
    accept: Option<JoinHandle<()>>,
    /// Event-loop front end only.
    event_loop: Option<EventLoop>,
    compactor: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds, creates the configured domains, restores the snapshot (if
    /// configured and present — which may create further domains),
    /// replays each domain's WAL tail (when `--wal-dir` is set — which
    /// may also re-create domains that only ever lived in the WAL), and
    /// spawns the worker pool, one refit daemon per domain, and the
    /// background WAL compactor.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        // With a WAL but no explicit snapshot path, compaction still
        // needs somewhere to fold sealed segments: default it into the
        // WAL directory so `--wal-dir` alone gives full durability.
        let snapshot_path = config
            .snapshot
            .clone()
            .or_else(|| config.wal.as_ref().map(|w| w.dir.join("snapshot.json")));
        if let Some(wal_config) = &config.wal {
            validate_wal_dir(&wal_config.dir)?;
        }
        if let Some(path) = &snapshot_path {
            // A crash mid-save leaves `<snapshot>.tmp.*` litter behind;
            // sweep it before anything can collide with those names.
            match snapshot::clean_stale_temps(path) {
                Ok(0) => {}
                Ok(n) => crate::log_info!(
                    "serve",
                    "removed {n} stale snapshot temp file(s) next to {}",
                    path.display()
                ),
                Err(e) => crate::log_warn!(
                    "serve",
                    "could not sweep stale snapshot temps next to {}: {e}",
                    path.display()
                ),
            }
        }

        let domains = Arc::new(DomainSet::new());
        domains
            .insert(Domain::new(
                DEFAULT_DOMAIN,
                ModelKind::Boolean,
                config.shards,
                &config.refit,
            ))
            // analyzer: allow(panic-expect) -- first insert into a fresh registry cannot collide
            .expect("empty registry accepts the default domain");
        for (name, kind) in &config.domains {
            domains
                .insert(Domain::new(name, *kind, config.shards, &config.refit))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        }
        if let Some(path) = &snapshot_path {
            if path.exists() {
                // Name the failing file: a bare "permission denied" with
                // no path is undebuggable from a service log.
                let snap = snapshot::load(path).map_err(|e| {
                    io::Error::new(e.kind(), format!("snapshot {}: {e}", path.display()))
                })?;
                snapshot::restore(&snap, &domains, &config.refit).map_err(|e| {
                    io::Error::new(e.kind(), format!("snapshot {}: {e}", path.display()))
                })?;
            }
        }
        if let Some(wal_config) = &config.wal {
            open_wals(wal_config, &domains, &config.refit)?;
        }
        // Metric handles attach after restore + replay (so the domain
        // set is final for boot) and before daemons spawn (so the first
        // refit's phase spans are recorded).
        let registry = Arc::new(Registry::new());
        if config.metrics {
            for domain in domains.list() {
                attach_domain_obs(&registry, &domain);
            }
        }
        // Daemons spawn only after restore AND WAL replay, so the first
        // refit of every domain sees the fully recovered store (replayed
        // rows count as pending and re-arm the trigger exactly like live
        // ingests).
        for domain in domains.list() {
            domain.spawn_daemon(config.refit.clone());
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(Context {
            domains,
            shards: config.shards,
            refit: config.refit.clone(),
            snapshot_path,
            wal: config.wal.clone(),
            persist: Mutex::new(()),
            snapshot_failed: AtomicBool::new(false),
            compaction: Mutex::new(CompactionStatus::default()),
            requests: registry.counter("ltm_http_requests_total", &[]),
            in_flight: registry.gauge("ltm_http_requests_in_flight", &[]),
            open_connections: registry.gauge("ltm_open_connections", &[]),
            keepalive_reuse: registry.counter("ltm_keepalive_reuse_total", &[]),
            batch_size: registry.histogram("ltm_batch_query_size", &[], Unit::Count),
            obs: registry,
            metrics: config.metrics,
            started: Instant::now(),
            shutdown_requested: (Mutex::new(false), Condvar::new()),
        });

        // Duration::ZERO means "no timeout" — mapped to None explicitly,
        // because set_read_timeout(Some(ZERO)) is an error in std and
        // silently swallowing it would disable the slow-loris protection
        // while appearing configured.
        let io_timeout = (!config.io_timeout.is_zero()).then_some(config.io_timeout);
        let use_event_loop = match config.frontend {
            Frontend::Auto => event_loop::SUPPORTED,
            Frontend::Epoll => {
                if !event_loop::SUPPORTED {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "frontend=epoll requested but this target has no epoll \
                         (use auto or blocking)",
                    ));
                }
                true
            }
            Frontend::Blocking => false,
        };

        let stop = Arc::new(AtomicBool::new(false));
        let (pool, accept, event_loop) = if use_event_loop {
            let handler_ctx = Arc::clone(&ctx);
            let handler: event_loop::RequestHandler =
                Arc::new(move |req| handle_request(&handler_ctx, req));
            let malformed_ctx = Arc::clone(&ctx);
            let front = EventLoop::start(
                listener,
                handler,
                EventLoopConfig {
                    workers: config.threads,
                    io_timeout,
                    metrics: config.metrics,
                    open_connections: Arc::clone(&ctx.open_connections),
                    keepalive_reuse: Arc::clone(&ctx.keepalive_reuse),
                    observe_malformed: Arc::new(move |status| {
                        malformed_ctx.observe_request(
                            "?",
                            MALFORMED_PATH,
                            status,
                            Instant::now(),
                            obs::log::next_request_id(),
                        );
                    }),
                },
            )?;
            (None, None, Some(front))
        } else {
            let handler_ctx = Arc::clone(&ctx);
            let handler: Arc<dyn Fn(TcpStream) + Send + Sync> = Arc::new(move |mut stream| {
                // Bound both directions before parsing: a peer that
                // connects and sends nothing (or stalls, or drips bytes
                // mid-head / mid-body) must not wedge this worker thread
                // forever. The read side is a whole-request deadline
                // enforced inside read_request_with_deadline.
                if let Some(t) = io_timeout {
                    let _ = stream.set_write_timeout(Some(t));
                }
                match read_request_with_deadline(&mut stream, io_timeout) {
                    Ok(req) => {
                        let response = handle_request(&handler_ctx, &req);
                        let _ = write_response_with_type(
                            &mut stream,
                            response.status,
                            response.content_type,
                            &response.body,
                        );
                    }
                    Err(e) => {
                        let status = if is_too_large(&e) { 413 } else { 400 };
                        handler_ctx.observe_request(
                            "?",
                            MALFORMED_PATH,
                            status,
                            Instant::now(),
                            obs::log::next_request_id(),
                        );
                        let body = if status == 413 {
                            "{\"error\":\"request too large\"}"
                        } else {
                            "{\"error\":\"malformed request\"}"
                        };
                        let _ = write_response(&mut stream, status, body);
                    }
                }
            });
            let pool = ThreadPool::new(config.threads, "ltm-http", handler);
            let accept_stop = Arc::clone(&stop);
            let accept_pool_sender = pool_sender(&pool);
            let accept = std::thread::Builder::new()
                .name("ltm-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if accept_stop.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(stream) = conn {
                            accept_pool_sender(stream);
                        }
                    }
                })
                // analyzer: allow(panic-expect) -- boot-time spawn; fails only on OS thread exhaustion, before the server serves
                .expect("spawn accept thread");
            (Some(pool), Some(accept), None)
        };

        // Background compactor: folds naturally sealed segments into the
        // snapshot about once a second, keeping disk usage bounded
        // without ever stalling an ack (sealing is left to rotation and
        // /admin/compact).
        let compactor = config.wal.is_some().then(|| {
            let ctx = Arc::clone(&ctx);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ltm-wal-compactor".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1_000));
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let sealed = ctx
                            .domains
                            .list()
                            .iter()
                            .any(|d| d.wal().is_some_and(|w| w.has_sealed_segments()));
                        if !sealed {
                            continue;
                        }
                        if let Err(e) = ctx.compact(false) {
                            crate::log_warn!("serve", "background WAL compaction failed: {e}");
                        }
                    }
                })
                // analyzer: allow(panic-expect) -- boot-time spawn; fails only on OS thread exhaustion, before the server serves
                .expect("spawn compactor thread")
        });

        Ok(Server {
            addr,
            ctx,
            pool,
            accept,
            event_loop,
            compactor,
            stop,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The domain registry.
    pub fn domains(&self) -> Arc<DomainSet> {
        Arc::clone(&self.ctx.domains)
    }

    /// Resolves a domain by name.
    pub fn domain(&self, name: &str) -> Option<Arc<Domain>> {
        self.ctx.domains.get(name)
    }

    /// Creates and registers a new domain at runtime (spawning its refit
    /// daemon) — the programmatic sibling of `POST /admin/domains`.
    pub fn create_domain(&self, name: &str, kind: ModelKind) -> Result<Arc<Domain>, DomainError> {
        create_domain(&self.ctx, name, kind)
    }

    /// The default domain's store (test/benchmark access).
    pub fn store(&self) -> Arc<ShardedStore> {
        Arc::clone(self.ctx.domains.default_domain().store())
    }

    /// The default domain's epoch predictor (test/benchmark access).
    pub fn predictor(&self) -> Arc<EpochPredictor> {
        Arc::clone(self.ctx.domains.default_domain().predictor())
    }

    /// The lock the default domain's refit daemon holds for the duration
    /// of every refit. Tests acquire it to hold the daemon hostage and
    /// verify queries still serve.
    pub fn refit_lock(&self) -> Arc<Mutex<()>> {
        Arc::clone(self.ctx.domains.default_domain().refit_lock())
    }

    /// Forces a default-domain refit pass (the daemon's schedule picks
    /// the mode).
    pub fn trigger_refit(&self) {
        self.ctx.domains.default_domain().trigger_refit();
    }

    /// Forces a full (reconciliation) refit pass on the default domain.
    pub fn trigger_full_refit(&self) {
        self.ctx.domains.default_domain().trigger_full_refit();
    }

    /// The default domain's refit accumulator state (test/benchmark
    /// access).
    pub fn refit_state(&self) -> Arc<Mutex<RefitState>> {
        Arc::clone(self.ctx.domains.default_domain().refit_state())
    }

    /// Saves a snapshot of every domain to `path` immediately.
    pub fn save_snapshot(&self, path: &std::path::Path) -> io::Result<()> {
        snapshot::save(&self.ctx.domains, path)
    }

    /// Blocks until a `POST /admin/shutdown` arrives.
    pub fn wait_for_shutdown_request(&self) {
        let (flag, cv) = &self.ctx.shutdown_requested;
        let mut requested = flag.locked();
        while !*requested {
            requested = wait_recovered(cv, requested);
        }
    }

    /// Graceful stop: every domain's refit daemon, the accept loop, the
    /// worker pool, the WAL compactor — then the final snapshot (if
    /// configured) and, on WAL-enabled servers, a final compaction that
    /// folds the whole log into it and deletes the covered segments.
    pub fn shutdown(mut self) -> io::Result<()> {
        for domain in self.ctx.domains.list() {
            domain.shutdown();
        }
        self.stop.store(true, Ordering::SeqCst);
        if let Some(front) = self.event_loop.take() {
            front.shutdown();
        }
        if self.accept.is_some() {
            // Wake the blocking accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
        if self.ctx.wal.is_some() {
            // Seal + fold + delete: a clean shutdown leaves a snapshot
            // and an empty WAL tail, so the next boot replays nothing.
            self.ctx.compact(true)?;
        } else if self.ctx.snapshot_path.is_some() {
            self.ctx.save_configured_snapshot()?;
        }
        Ok(())
    }
}

/// Rejects an unusable `--wal-dir` at boot with a clear
/// [`io::ErrorKind::InvalidInput`] error (the CLI surfaces it and exits
/// instead of panicking): the directory is created if missing, then
/// probed with a real write+delete.
fn validate_wal_dir(dir: &std::path::Path) -> io::Result<()> {
    std::fs::create_dir_all(dir).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("--wal-dir {}: cannot create directory: {e}", dir.display()),
        )
    })?;
    let probe = dir.join(format!(".wal-write-probe.{}", std::process::id()));
    std::fs::write(&probe, b"probe")
        .and_then(|()| std::fs::remove_file(&probe))
        .map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "--wal-dir {}: directory is not writable: {e}",
                    dir.display()
                ),
            )
        })
}

/// Boot-time WAL bring-up: re-creates domains that exist only in the WAL
/// (their `meta.json` names a kind and shard count but no snapshot ever
/// recorded them), then opens + replays every registered domain's log
/// and attaches the append handles.
fn open_wals(wal_config: &WalConfig, domains: &DomainSet, refit: &RefitConfig) -> io::Result<()> {
    for name in wal::wal_domains(&wal_config.dir)? {
        if domains.get(&name).is_some() {
            continue;
        }
        let meta = wal::read_meta(&wal_config.dir, &name)?;
        let kind: ModelKind = meta.kind.parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("WAL meta for `{name}`: {e}"),
            )
        })?;
        domains
            .insert(Domain::new(&name, kind, meta.shards, refit))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    }
    let mut replayed = 0u64;
    for domain in domains.list() {
        let meta = WalDomainMeta {
            kind: domain.kind().as_str().to_owned(),
            shards: domain.store().num_shards(),
        };
        let (domain_wal, report) =
            DomainWal::open(wal_config, domain.name(), &meta, domain.store())?;
        domain.attach_wal(Arc::new(domain_wal));
        replayed += report.replayed_rows;
    }
    if replayed > 0 {
        crate::log_info!(
            "serve",
            "WAL replay recovered {replayed} row(s) past the snapshot"
        );
    }
    Ok(())
}

/// Attaches the full per-domain metric family set (ingest, WAL, refit
/// phases) to one domain. Idempotent per domain: the underlying
/// attachments are first-write-wins.
fn attach_domain_obs(registry: &Registry, domain: &Domain) {
    domain.attach_obs(DomainObs::for_domain(registry, domain.name()));
    if let Some(wal) = domain.wal() {
        wal.attach_obs(WalObs::for_domain(registry, domain.name()));
    }
    let mut refit_state = domain.refit_state().locked();
    refit_state.set_obs(RefitObs::for_domain(registry, domain.name()));
    refit_state.set_shadow_obs(ShadowObs::for_domain(registry, domain.name()));
}

/// Handles one parsed request end to end — in-flight gauge, routing,
/// request metrics — and returns the response for the calling front end
/// to frame and write. Shared by the blocking pool and the event loop.
fn handle_request(ctx: &Context, req: &Request) -> Response {
    let started = Instant::now();
    let _in_flight = ctx.metrics.then(|| ScopedGauge::enter(&ctx.in_flight));
    let req_id = obs::log::next_request_id();
    let (status, body) = route(ctx, req);
    // Recorded before the response bytes go out, so any scrape issued
    // after this response already counts this request (see
    // Context::observe_request).
    ctx.observe_request(&req.method, &req.path, status, started, req_id);
    let content_type = if req.path == "/metrics" && status == 200 {
        "text/plain; version=0.0.4"
    } else {
        "application/json"
    };
    Response {
        status,
        content_type,
        body,
    }
}

/// A dispatch closure for the accept thread (borrow-friendly indirection:
/// the pool itself stays owned by [`Server`]).
fn pool_sender(pool: &ThreadPool) -> impl Fn(TcpStream) + Send + 'static {
    let sender = pool.sender_clone();
    move |stream| {
        if let Some(sender) = &sender {
            let _ = sender.send(stream);
        }
    }
}
