//! Snapshot save/restore: every domain's store contents + learned state
//! as one JSON file, so a restarted server resumes serving its last
//! published epochs without refitting from scratch.
//!
//! **Format v2** (current): a `domains` array, one record per hosted
//! domain, each carrying the domain's name, [`ModelKind`] wire name,
//! shard count, accepted-row replay log (with per-row values for
//! real-valued domains), pending watermark, refit accumulator, and
//! served epoch. **Format v1** (single-domain servers, pre-multi-model)
//! is still loadable: [`load`] upgrades it in memory to a v2 snapshot
//! holding one boolean [`DEFAULT_DOMAIN`] record, so old snapshots
//! restore with bit-identical answers and re-save as v2.
//!
//! Per domain the invariants are unchanged from v1: the store side is
//! the accepted-row log in arrival order (replaying it through a fresh
//! [`ShardedStore`] with the same shard count reproduces every id
//! assignment); the predictor side is the raw parameter tables of the
//! served epoch plus the pending watermark; the refit side is the
//! streaming accumulator — expected-count cells for boolean domains
//! (4 per source), Gaussian sufficient statistics for real-valued ones
//! (6 per source) — plus its fold watermark, so a restarted server
//! resumes *incremental* refits over the unfolded tail.

use std::io;
use std::path::Path;
use std::sync::Arc;

use ltm_core::{
    BetaPair, ExpectedCounts, IncrementalLtm, IncrementalRealLtm, NigPrior, RealSuffStats,
    StreamingLtm, StreamingRealLtm,
};
use serde::{Deserialize, Serialize};

use crate::domain::{Domain, DomainSet, DEFAULT_DOMAIN};
use crate::epoch::EpochSnapshot;
use crate::model::{ModelKind, ServePredictor};
use crate::refit::RefitConfig;
use crate::shadow::{ShadowColumn, ShadowTables};
use crate::store::{LogRecord, ShardedStore};

/// One accepted row: the triple plus the optional value carried by
/// real-valued domains (absent in v1 snapshots and boolean domains).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripleRec {
    /// Entity name.
    pub entity: String,
    /// Attribute name.
    pub attr: String,
    /// Source name.
    pub source: String,
    /// Claim value (real-valued domains only).
    pub value: Option<f64>,
}

/// The real-valued predictor parameters of a served epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealPredictorRec {
    /// Accumulated per-source statistics ([`RealSuffStats::cells`]).
    pub cells: Vec<f64>,
    /// False-side NIG prior mean `m₀`.
    pub side0_mean: f64,
    /// False-side NIG prior strength `κ₀`.
    pub side0_kappa: f64,
    /// False-side inverse-gamma shape `a₀`.
    pub side0_a: f64,
    /// False-side inverse-gamma rate `b₀`.
    pub side0_b: f64,
    /// True-side NIG prior mean `m₁`.
    pub side1_mean: f64,
    /// True-side NIG prior strength `κ₁`.
    pub side1_kappa: f64,
    /// True-side inverse-gamma shape `a₁`.
    pub side1_a: f64,
    /// True-side inverse-gamma rate `b₁`.
    pub side1_b: f64,
}

/// One persisted shadow method column: the method's display name plus
/// its fitted scores and per-source trust.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowColumnRec {
    /// Method display name (`"LTM"` or a paper Table 7 spelling).
    pub name: String,
    /// Per-fact scores, parallel to [`ShadowRec::fact_ids`].
    pub scores: Vec<f64>,
    /// Per-source agreement trust in global source-id order.
    pub trust: Vec<f64>,
}

/// The published shadow tables of a served epoch. Only the fitted
/// columns are persisted; the ensemble, agreement matrices, and
/// percentile indexes are recomputed deterministically on restore
/// ([`crate::shadow::ShadowTables::assemble`]), so a round-trip serves
/// bit-identical shadow answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowRec {
    /// Global fact ids of the fit extraction, ascending.
    pub fact_ids: Vec<u64>,
    /// Score columns, LTM first then Table 7 order.
    pub methods: Vec<ShadowColumnRec>,
}

/// The served epoch's parameters. Boolean and positive-only domains fill
/// the `φ` tables; real-valued domains fill `real` and leave the `φ`
/// tables empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRec {
    /// Epoch number at save time.
    pub epoch: u64,
    /// Per-source sensitivity `φ¹`, indexed by global source id.
    pub phi1: Vec<f64>,
    /// Per-source false-positive rate `φ⁰`.
    pub phi0: Vec<f64>,
    /// `β` prior pseudo-counts.
    pub beta_pos: f64,
    /// See `beta_pos`.
    pub beta_neg: f64,
    /// Fallback `φ¹` for unseen sources.
    pub default_phi1: f64,
    /// Fallback `φ⁰` for unseen sources.
    pub default_phi0: f64,
    /// Diagnostics of the refit that produced the epoch.
    pub max_rhat: f64,
    /// See `max_rhat`.
    pub converged_fraction: f64,
    /// Claims that refit folded in.
    pub trained_claims: usize,
    /// Sources covered by the learned quality.
    pub trained_sources: usize,
    /// Real-valued predictor parameters (real-valued domains only;
    /// absent in v1 snapshots).
    pub real: Option<RealPredictorRec>,
    /// Shadow baseline tables of the epoch (absent in pre-shadow
    /// snapshots, real-valued domains, and epochs fit with shadows
    /// disabled).
    pub shadow: Option<ShadowRec>,
}

/// The refit daemon's accumulator at save time. `cells` semantics follow
/// the domain kind: [`ExpectedCounts::cells`] (4 per source) for boolean
/// and positive-only domains, [`RealSuffStats::cells`] (6 per source)
/// for real-valued ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccumulatorRec {
    /// Raw accumulator cells in global source-id order.
    pub cells: Vec<f64>,
    /// Batches the saved trainer had folded (resumes per-batch seed
    /// decorrelation).
    pub batches_seen: usize,
    /// Accepted-row sequence the accumulator covers. Replay reproduces
    /// sequence numbers (they are replay-log positions), so this value
    /// is directly meaningful to the restored store.
    pub watermark: u64,
}

/// One domain's complete persisted state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainRec {
    /// Domain name (`default` for the legacy un-prefixed routes).
    pub name: String,
    /// [`ModelKind`] wire name (`boolean` | `real_valued` |
    /// `positive_only`).
    pub kind: String,
    /// Shard count the log was built with — restore replays into the
    /// same partitioning so global fact ids survive.
    pub shards: usize,
    /// Global source names in id order (informational / validation).
    pub sources: Vec<String>,
    /// Accepted rows in arrival order.
    pub triples: Vec<TripleRec>,
    /// Tail of `triples` not yet folded by a refit at save time. Restore
    /// leaves exactly this many rows pending so they still arm the refit
    /// trigger after a restart — the saved epoch never saw them. `None`
    /// in pre-watermark v1 snapshots, which treated the whole log as
    /// folded.
    pub pending: Option<usize>,
    /// The refit accumulator, if any fold had committed by save time.
    pub accumulator: Option<AccumulatorRec>,
    /// The served epoch, if any was published before the save.
    pub epoch: Option<EpochRec>,
}

/// The on-disk snapshot: format version plus one record per domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version (2 current; v1 files are upgraded by [`load`]).
    pub version: u32,
    /// Per-domain state, in the server's domain order.
    pub domains: Vec<DomainRec>,
}

/// The v1 (single-domain) on-disk layout, kept for upgrade-on-load.
#[derive(Debug, Clone, Deserialize)]
struct SnapshotV1 {
    #[allow(dead_code)] // parsed for shape validation only
    version: u32,
    shards: usize,
    sources: Vec<String>,
    triples: Vec<TripleRec>,
    pending: Option<usize>,
    accumulator: Option<AccumulatorRec>,
    epoch: Option<EpochRec>,
}

impl Snapshot {
    /// The record for `name`, if present.
    pub fn domain(&self, name: &str) -> Option<&DomainRec> {
        self.domains.iter().find(|d| d.name == name)
    }
}

/// Captures one domain's state: store first (one consistent read under
/// the ingest-order lock), the refit accumulator second, the served
/// epoch last — the same order a refit commits in reverse. A refit that
/// lands in between can only make the saved accumulator/epoch *newer*
/// than the saved log, which errs toward re-folding already-folded rows
/// at the next boot (the refit path self-heals that with an Empty pass);
/// the reverse order could pair an old accumulator with `pending: 0` and
/// silently exclude the unfolded tail.
/// Persists the raw shadow columns (the derived artifacts are rebuilt on
/// restore).
fn capture_shadow(tables: &ShadowTables) -> ShadowRec {
    ShadowRec {
        fact_ids: tables.fact_ids.clone(),
        methods: tables
            .methods
            .iter()
            .map(|c| ShadowColumnRec {
                name: c.name.clone(),
                scores: c.scores.clone(),
                trust: c.trust.clone(),
            })
            .collect(),
    }
}

/// Rebuilds full shadow tables (ensemble, agreement, percentile indexes)
/// from persisted columns. Deterministic, so a save/restore round-trip
/// serves bit-identical shadow answers.
fn restore_shadow(rec: &ShadowRec) -> ShadowTables {
    ShadowTables::assemble(
        rec.fact_ids.clone(),
        rec.methods
            .iter()
            .map(|c| ShadowColumn {
                name: c.name.clone(),
                scores: c.scores.clone(),
                trust: c.trust.clone(),
            })
            .collect(),
    )
}

fn capture_domain(domain: &Domain) -> DomainRec {
    let store = domain.store();
    let (sources, log, pending) = store.persistence_snapshot();
    let accumulator = {
        let st = domain.refit_state().lock().expect("refit state");
        match domain.kind() {
            ModelKind::Boolean | ModelKind::PositiveOnly => {
                st.streaming().map(|s| AccumulatorRec {
                    cells: s.accumulated().cells().to_vec(),
                    batches_seen: s.batches_seen(),
                    watermark: st.watermark(),
                })
            }
            ModelKind::RealValued => st.streaming_real().map(|s| AccumulatorRec {
                cells: s.accumulated().cells().to_vec(),
                batches_seen: s.batches_seen(),
                watermark: st.watermark(),
            }),
        }
    };
    let snap = domain.predictor().load();
    let epoch = if snap.epoch == 0 {
        None
    } else {
        Some(match &snap.predictor {
            ServePredictor::Boolean(p) => EpochRec {
                epoch: snap.epoch,
                phi1: p.phi1().to_vec(),
                phi0: p.phi0().to_vec(),
                beta_pos: p.beta().pos,
                beta_neg: p.beta().neg,
                default_phi1: p.fallback().0,
                default_phi0: p.fallback().1,
                max_rhat: snap.max_rhat,
                converged_fraction: snap.converged_fraction,
                trained_claims: snap.trained_claims,
                trained_sources: snap.trained_sources,
                real: None,
                shadow: snap.shadow.as_deref().map(capture_shadow),
            },
            ServePredictor::Real(p) => {
                let (side0, side1) = p.priors();
                EpochRec {
                    epoch: snap.epoch,
                    phi1: Vec::new(),
                    phi0: Vec::new(),
                    beta_pos: p.beta().pos,
                    beta_neg: p.beta().neg,
                    default_phi1: 0.0,
                    default_phi0: 0.0,
                    max_rhat: snap.max_rhat,
                    converged_fraction: snap.converged_fraction,
                    trained_claims: snap.trained_claims,
                    trained_sources: snap.trained_sources,
                    real: Some(RealPredictorRec {
                        cells: p.stats().cells().to_vec(),
                        side0_mean: side0.mean,
                        side0_kappa: side0.kappa,
                        side0_a: side0.a,
                        side0_b: side0.b,
                        side1_mean: side1.mean,
                        side1_kappa: side1.kappa,
                        side1_a: side1.a,
                        side1_b: side1.b,
                    }),
                    shadow: None,
                }
            }
        })
    };
    DomainRec {
        name: domain.name().to_owned(),
        kind: domain.kind().as_str().to_owned(),
        shards: store.num_shards(),
        sources,
        triples: log
            .into_iter()
            .map(
                |LogRecord {
                     entity,
                     attr,
                     source,
                     value,
                 }| TripleRec {
                    entity,
                    attr,
                    source,
                    value,
                },
            )
            .collect(),
        pending: Some(pending),
        accumulator,
        epoch,
    }
}

/// Captures every domain's state as a v2 snapshot.
pub fn capture(domains: &DomainSet) -> Snapshot {
    Snapshot {
        version: 2,
        domains: domains.list().iter().map(|d| capture_domain(d)).collect(),
    }
}

/// Saves a snapshot of every domain as pretty JSON.
///
/// The write is atomic with respect to crashes: the JSON goes to a
/// temporary file in the same directory which is then renamed over the
/// target, so a kill mid-write can never leave a truncated snapshot (or
/// clobber the previous good one) that would fail the next boot.
pub fn save(domains: &DomainSet, path: &Path) -> io::Result<()> {
    let snapshot = capture(domains);
    let json = serde_json::to_string_pretty(&snapshot)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    // Unique per call, not just per process: two workers saving the same
    // path concurrently (racing admin snapshots, or one racing the final
    // shutdown save) must not interleave writes into a shared temp file
    // and rename torn JSON into place.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp_name);
    // Both failure paths remove the temp file: each save mints a unique
    // name, so leaking it would accumulate litter across retries.
    std::fs::write(&tmp, json).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Deletes stale `<snapshot>.tmp.*` temp files next to `path` — the
/// litter a crash mid-[`save`] leaves behind (the in-process cleanup in
/// `save` never runs when the process dies between write and rename).
/// Returns how many were removed. Called at boot, before the first save
/// can race anything. A missing parent directory counts as zero.
pub fn clean_stale_temps(path: &Path) -> io::Result<usize> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
        return Ok(0);
    };
    let prefix = format!("{file_name}.tmp.");
    if !parent.exists() {
        return Ok(0);
    }
    let mut removed = 0;
    for entry in std::fs::read_dir(&parent)? {
        let entry = entry?;
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.starts_with(&prefix)) {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Loads a snapshot file, upgrading v1 single-domain files to a v2
/// snapshot holding one boolean [`DEFAULT_DOMAIN`] record.
pub fn load(path: &Path) -> io::Result<Snapshot> {
    let text = std::fs::read_to_string(path)?;
    let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
    let probe: serde::Value = serde_json::from_str(&text).map_err(|e| invalid(e.to_string()))?;
    let version = match probe.get_field("version") {
        Some(serde::Value::Int(v)) => *v,
        Some(serde::Value::UInt(v)) => *v as i64,
        _ => return Err(invalid("snapshot has no numeric `version` field".into())),
    };
    match version {
        1 => {
            let v1: SnapshotV1 = serde_json::from_str(&text).map_err(|e| invalid(e.to_string()))?;
            Ok(Snapshot {
                version: 2,
                domains: vec![DomainRec {
                    name: DEFAULT_DOMAIN.to_owned(),
                    kind: ModelKind::Boolean.as_str().to_owned(),
                    shards: v1.shards,
                    sources: v1.sources,
                    triples: v1.triples,
                    pending: v1.pending,
                    accumulator: v1.accumulator,
                    epoch: v1.epoch,
                }],
            })
        }
        2 => serde_json::from_str(&text).map_err(|e| invalid(e.to_string())),
        other => Err(invalid(format!("unsupported snapshot version {other}"))),
    }
}

/// Restores a snapshot into `domains`: each recorded domain is resolved
/// by name — an existing domain must match the record's kind and shard
/// count (its store must be empty, i.e. freshly booted); a missing one
/// is created with the record's kind/shards and `config` and inserted.
/// Per domain the record's log is replayed, the served epoch installed,
/// and the refit accumulator resumed so the first post-restart refit is
/// incremental. Restored-but-created domains do **not** have a daemon
/// yet; the server spawns daemons for every domain after restore.
pub fn restore(snapshot: &Snapshot, domains: &DomainSet, config: &RefitConfig) -> io::Result<()> {
    let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
    for rec in &snapshot.domains {
        let kind: ModelKind = rec
            .kind
            .parse()
            .map_err(|e: crate::model::UnknownModelKind| invalid(e.to_string()))?;
        let domain = match domains.get(&rec.name) {
            Some(existing) => {
                if existing.kind() != kind {
                    return Err(invalid(format!(
                        "snapshot domain `{}` is {} but the configured domain is {}",
                        rec.name,
                        kind,
                        existing.kind()
                    )));
                }
                existing
            }
            None => {
                let created = Domain::new(&rec.name, kind, rec.shards, config);
                domains
                    .insert(Arc::clone(&created))
                    .map_err(|e| invalid(e.to_string()))?;
                created
            }
        };
        restore_domain(rec, kind, &domain, config)?;
    }
    Ok(())
}

fn restore_domain(
    rec: &DomainRec,
    kind: ModelKind,
    domain: &Domain,
    config: &RefitConfig,
) -> io::Result<()> {
    let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
    let store: &ShardedStore = domain.store();
    if store.num_shards() != rec.shards {
        return Err(invalid(format!(
            "snapshot domain `{}` was taken with {} shards but the store has {} — fact ids \
             would not survive the replay",
            rec.name,
            rec.shards,
            store.num_shards()
        )));
    }
    let cells_per_source = match kind {
        ModelKind::Boolean | ModelKind::PositiveOnly => 4,
        ModelKind::RealValued => 6,
    };
    if let Some(acc) = &rec.accumulator {
        if !acc.cells.len().is_multiple_of(cells_per_source) {
            return Err(invalid(format!(
                "domain `{}` accumulator cells come in blocks of {cells_per_source} per \
                 source, got {}",
                rec.name,
                acc.cells.len()
            )));
        }
    }
    for t in &rec.triples {
        store.replay(&LogRecord {
            entity: t.entity.clone(),
            attr: t.attr.clone(),
            source: t.source.clone(),
            value: t.value,
        });
    }
    // Only the rows a refit had folded by save time are marked consumed;
    // the saved `pending` tail was never seen by the saved epoch and must
    // still arm the refit trigger after restart — otherwise served
    // predictions silently exclude data the store visibly holds until
    // some future ingest re-arms the trigger. Pre-watermark snapshots
    // (`pending` absent) fall back to the old treat-all-as-folded reading.
    // A capture that raced a refit can leave the accumulator watermark
    // ahead of the log's folded count; trust the larger of the two (the
    // accumulator provably folded through its watermark).
    let pending = rec.pending.unwrap_or(0);
    let mut folded = rec.triples.len().saturating_sub(pending) as u64;
    if let Some(acc) = &rec.accumulator {
        // A capture that raced a refit can legally pair an accumulator
        // slightly *newer* than the saved log: a fold that committed
        // between the store read and the state read may cover rows (and
        // even a source) the log never saw. Both mismatches are repaired
        // here rather than rejected — rejecting would make the server
        // unable to boot from its own legitimately-saved snapshot:
        //
        // * the watermark is clamped to the log, so the rows the log is
        //   missing are simply not marked folded, and
        // * cells for sources beyond the log's id space are dropped
        //   (their triples are not in the log either — the source was
        //   interned after the log copy was taken), keeping every
        //   remaining cell attributed to the id the replayed store
        //   assigns. The shed contribution is drift-sized and the next
        //   full refit reconciles it exactly.
        let watermark = acc.watermark.min(rec.triples.len() as u64);
        let mut cells = acc.cells.clone();
        cells.truncate(rec.sources.len() * cells_per_source);
        folded = folded.max(watermark);
        let mut st = domain.refit_state().lock().expect("refit state");
        match kind {
            ModelKind::Boolean | ModelKind::PositiveOnly => st.restore(
                StreamingLtm::from_accumulated(
                    config.ltm,
                    ExpectedCounts::from_cells(cells),
                    acc.batches_seen,
                ),
                watermark,
            ),
            ModelKind::RealValued => st.restore_real(
                StreamingRealLtm::from_accumulated(
                    config.real,
                    RealSuffStats::from_cells(cells),
                    acc.batches_seen,
                ),
                watermark,
            ),
        }
    }
    store.consume_pending(usize::try_from(folded).unwrap_or(usize::MAX));
    if store.source_names() != rec.sources {
        return Err(invalid(format!(
            "domain `{}`: replay produced a different source-id assignment than the \
             snapshot records",
            rec.name
        )));
    }
    if let Some(e) = &rec.epoch {
        let predictor = match kind {
            ModelKind::Boolean | ModelKind::PositiveOnly => {
                ServePredictor::Boolean(IncrementalLtm::from_parts(
                    e.phi1.clone(),
                    e.phi0.clone(),
                    BetaPair::new(e.beta_pos, e.beta_neg),
                    e.default_phi1,
                    e.default_phi0,
                ))
            }
            ModelKind::RealValued => {
                let r = e.real.as_ref().ok_or_else(|| {
                    invalid(format!(
                        "domain `{}` is real_valued but its epoch record has no real \
                         predictor parameters",
                        rec.name
                    ))
                })?;
                if !r.cells.len().is_multiple_of(6) {
                    return Err(invalid(format!(
                        "domain `{}` epoch stats cells come in blocks of 6 per source, got {}",
                        rec.name,
                        r.cells.len()
                    )));
                }
                ServePredictor::Real(IncrementalRealLtm::from_parts(
                    NigPrior {
                        mean: r.side0_mean,
                        kappa: r.side0_kappa,
                        a: r.side0_a,
                        b: r.side0_b,
                    },
                    NigPrior {
                        mean: r.side1_mean,
                        kappa: r.side1_kappa,
                        a: r.side1_a,
                        b: r.side1_b,
                    },
                    BetaPair::new(e.beta_pos, e.beta_neg),
                    RealSuffStats::from_cells(r.cells.clone()),
                ))
            }
        };
        domain.predictor().restore(EpochSnapshot {
            epoch: e.epoch,
            predictor,
            max_rhat: e.max_rhat,
            converged_fraction: e.converged_fraction,
            trained_claims: e.trained_claims,
            trained_sources: e.trained_sources,
            shadow: e.shadow.as_ref().map(|s| Arc::new(restore_shadow(s))),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_model::SourceId;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ltm-serve-test-{}-{name}", std::process::id()));
        p
    }

    fn boolean_set(shards: usize) -> DomainSet {
        let set = DomainSet::new();
        set.insert(Domain::new(
            DEFAULT_DOMAIN,
            ModelKind::Boolean,
            shards,
            &RefitConfig::default(),
        ))
        .unwrap();
        set
    }

    #[test]
    fn snapshot_round_trips_store_and_epoch() {
        let set = boolean_set(3);
        let domain = set.default_domain();
        let store = domain.store();
        store.ingest("e0", "a0", "s0");
        store.ingest("e0", "a1", "s1");
        store.ingest("e1", "a0", "s0");
        let mut snap = EpochSnapshot::boot(&RefitConfig::default().ltm.priors);
        snap.predictor = ServePredictor::Boolean(IncrementalLtm::from_parts(
            vec![0.9, 0.4],
            vec![0.05, 0.3],
            BetaPair::new(2.0, 3.0),
            0.5,
            0.1,
        ));
        snap.max_rhat = 1.07;
        snap.trained_claims = 4;
        domain.predictor().publish(snap);

        let path = temp_path("roundtrip.json");
        save(&set, &path).unwrap();
        let loaded = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, capture(&set));
        assert_eq!(loaded.version, 2);

        let set2 = boolean_set(3);
        restore(&loaded, &set2, &RefitConfig::default()).unwrap();
        let domain2 = set2.default_domain();
        assert_eq!(domain2.store().stats().facts, store.stats().facts);
        assert_eq!(domain2.store().source_names(), store.source_names());
        assert_eq!(
            domain2.store().pending(),
            store.pending(),
            "restore preserves the unfolded tail"
        );

        let before = domain.predictor().load();
        let after = domain2.predictor().load();
        assert_eq!(after.epoch, before.epoch);
        let claims = [(SourceId::new(0), true), (SourceId::new(1), false)];
        assert_eq!(
            after.predictor.predict_fact(&claims),
            before.predictor.predict_fact(&claims),
            "bit-identical predictions after restore"
        );
    }

    #[test]
    fn snapshot_round_trips_a_real_domain() {
        let set = boolean_set(2);
        let cfg = RefitConfig::default();
        set.insert(Domain::new("scores", ModelKind::RealValued, 2, &cfg))
            .unwrap();
        let domain = set.get("scores").unwrap();
        let store = domain.store();
        store.ingest_valued("e0", "a0", "s0", 0.92);
        store.ingest_valued("e0", "a1", "s1", 0.15);
        store.ingest_valued("e1", "a0", "s0", 0.88);

        // A committed fold: real accumulator over the full store.
        let mut streaming = StreamingRealLtm::new(cfg.real);
        for db in store.full_real_databases().batches {
            streaming.try_observe(&db).unwrap();
        }
        let predictor = streaming.predictor();
        let cells_before = streaming.accumulated().cells().to_vec();
        domain
            .refit_state()
            .lock()
            .unwrap()
            .restore_real(streaming, 3);
        store.consume_pending(3);
        let mut snap = EpochSnapshot::boot_real(&cfg.real);
        snap.predictor = ServePredictor::Real(predictor);
        snap.max_rhat = 1.02;
        domain.predictor().publish(snap);
        // …then one more row arrives unfolded.
        store.ingest_valued("e1", "a1", "s1", 0.4);

        let path = temp_path("real-roundtrip.json");
        save(&set, &path).unwrap();
        let loaded = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let rec = loaded.domain("scores").expect("real domain saved");
        assert_eq!(rec.kind, "real_valued");
        assert_eq!(rec.triples[0].value, Some(0.92));
        assert_eq!(rec.pending, Some(1));
        assert_eq!(rec.accumulator.as_ref().unwrap().cells, cells_before);

        // Restore into a fresh set that does NOT pre-configure `scores`:
        // the domain is created from the record.
        let set2 = boolean_set(2);
        restore(&loaded, &set2, &cfg).unwrap();
        let domain2 = set2.get("scores").expect("domain created by restore");
        assert_eq!(domain2.kind(), ModelKind::RealValued);
        assert_eq!(domain2.store().pending(), 1, "unfolded tail stays pending");
        let st = domain2.refit_state().lock().unwrap();
        assert_eq!(st.watermark(), 3);
        assert_eq!(
            st.streaming_real().unwrap().accumulated().cells(),
            &cells_before[..]
        );
        drop(st);
        let claims = [(SourceId::new(0), 0.9), (SourceId::new(1), 0.2)];
        assert_eq!(
            domain2.predictor().load().predictor.predict_real(&claims),
            domain.predictor().load().predictor.predict_real(&claims),
            "bit-identical real predictions after restore"
        );
    }

    #[test]
    fn v1_snapshot_upgrades_to_default_boolean_domain() {
        // A pre-multi-model snapshot (version 1, no `domains` array, no
        // per-triple values) must load as a v2 snapshot with one boolean
        // `default` domain and restore with identical ids and pending.
        let path = temp_path("v1-upgrade.json");
        std::fs::write(
            &path,
            "{\"version\":1,\"shards\":2,\"sources\":[\"s0\",\"s1\"],\
             \"triples\":[{\"entity\":\"e0\",\"attr\":\"a0\",\"source\":\"s0\"},\
                          {\"entity\":\"e0\",\"attr\":\"a1\",\"source\":\"s1\"},\
                          {\"entity\":\"e1\",\"attr\":\"a0\",\"source\":\"s0\"}],\
             \"pending\":1,\
             \"accumulator\":{\"cells\":[1.0,0.0,0.5,0.5,0.0,1.0,0.25,0.75],\
                              \"batches_seen\":1,\"watermark\":2},\
             \"epoch\":{\"epoch\":3,\"phi1\":[0.9,0.4],\"phi0\":[0.05,0.3],\
                        \"beta_pos\":2.0,\"beta_neg\":3.0,\
                        \"default_phi1\":0.5,\"default_phi0\":0.1,\
                        \"max_rhat\":1.05,\"converged_fraction\":1.0,\
                        \"trained_claims\":4,\"trained_sources\":2}}",
        )
        .unwrap();
        let snapshot = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(snapshot.version, 2);
        assert_eq!(snapshot.domains.len(), 1);
        let rec = snapshot.domain(DEFAULT_DOMAIN).unwrap();
        assert_eq!(rec.kind, "boolean");
        assert_eq!(rec.pending, Some(1));
        assert!(rec.triples.iter().all(|t| t.value.is_none()));
        assert!(rec.epoch.as_ref().unwrap().real.is_none());

        let set = boolean_set(2);
        restore(&snapshot, &set, &RefitConfig::default()).unwrap();
        let domain = set.default_domain();
        assert_eq!(domain.store().stats().facts, 3);
        assert_eq!(domain.store().pending(), 1);
        assert_eq!(domain.predictor().load().epoch, 3);
        let st = domain.refit_state().lock().unwrap();
        assert_eq!(st.watermark(), 2);
        assert!(st.streaming().is_some());
        drop(st);

        // Equation-3 on the restored parameters is reproducible from the
        // raw φ tables — the bit-identity assertion of the migration.
        let expected = IncrementalLtm::from_parts(
            vec![0.9, 0.4],
            vec![0.05, 0.3],
            BetaPair::new(2.0, 3.0),
            0.5,
            0.1,
        );
        let claims = [(SourceId::new(0), true), (SourceId::new(1), false)];
        assert_eq!(
            domain.predictor().load().predictor.predict_fact(&claims),
            expected.predict_fact(&claims)
        );

        // Re-saving writes format v2; reloading restores identically.
        let path2 = temp_path("v1-resaved.json");
        save(&set, &path2).unwrap();
        let resaved = load(&path2).unwrap();
        std::fs::remove_file(&path2).ok();
        assert_eq!(resaved.version, 2);
        let set3 = boolean_set(2);
        restore(&resaved, &set3, &RefitConfig::default()).unwrap();
        assert_eq!(
            set3.default_domain()
                .predictor()
                .load()
                .predictor
                .predict_fact(&claims),
            expected.predict_fact(&claims),
            "v1 → v2 → v2 restores stay bit-identical"
        );
    }

    #[test]
    fn pre_watermark_v1_snapshots_load_as_fully_folded() {
        // The oldest v1 layout predates the `pending` and `accumulator`
        // fields entirely; the upgrade path must treat the whole log as
        // folded (no accumulator to resume → the next refit is cold).
        let path = temp_path("v1-no-pending.json");
        std::fs::write(
            &path,
            "{\"version\":1,\"shards\":1,\"sources\":[\"s\"],\
             \"triples\":[{\"entity\":\"e\",\"attr\":\"a\",\"source\":\"s\"}],\
             \"epoch\":null}",
        )
        .unwrap();
        let snapshot = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let rec = snapshot.domain(DEFAULT_DOMAIN).unwrap();
        assert_eq!(rec.pending, None);
        assert_eq!(rec.accumulator, None);
        let set = boolean_set(1);
        restore(&snapshot, &set, &RefitConfig::default()).unwrap();
        let domain = set.default_domain();
        assert_eq!(
            domain.store().pending(),
            0,
            "old snapshots treat the log as folded"
        );
        assert!(
            domain.refit_state().lock().unwrap().streaming().is_none(),
            "no accumulator to resume: the next refit is a cold one"
        );
    }

    #[test]
    fn restore_trusts_the_newer_of_pending_and_accumulator_watermark() {
        // A capture racing a refit can pair an older log view (pending
        // still unconsumed) with a newer accumulator; restore must trust
        // the accumulator's watermark instead of re-arming forever.
        let set = boolean_set(1);
        let domain = set.default_domain();
        let store = domain.store();
        store.ingest("e0", "a0", "s0");
        store.ingest("e1", "a0", "s0");
        let mut snapshot = capture(&set);
        assert_eq!(snapshot.domains[0].pending, Some(2));
        snapshot.domains[0].accumulator = Some(AccumulatorRec {
            cells: vec![0.0; 4],
            batches_seen: 1,
            watermark: 2,
        });
        let set2 = boolean_set(1);
        restore(&snapshot, &set2, &RefitConfig::default()).unwrap();
        let domain2 = set2.default_domain();
        assert_eq!(
            domain2.store().pending(),
            0,
            "accumulator already folded both rows"
        );
        assert_eq!(domain2.refit_state().lock().unwrap().watermark(), 2);
    }

    #[test]
    fn restore_leaves_unfolded_tail_pending() {
        let set = boolean_set(2);
        let domain = set.default_domain();
        let store = domain.store();
        store.ingest("e0", "a0", "s0");
        store.ingest("e0", "a1", "s1");
        store.ingest("e1", "a0", "s0");
        // A refit folded the first three rows…
        store.consume_pending(3);
        // …then two more arrived before the save.
        store.ingest("e2", "a0", "s1");
        store.ingest("e2", "a1", "s0");
        assert_eq!(store.pending(), 2);

        let snapshot = capture(&set);
        assert_eq!(snapshot.domains[0].pending, Some(2));
        let set2 = boolean_set(2);
        restore(&snapshot, &set2, &RefitConfig::default()).unwrap();
        assert_eq!(
            set2.default_domain().store().pending(),
            2,
            "the tail the saved epoch never saw must re-arm the refit trigger"
        );
    }

    #[test]
    fn restore_rejects_ragged_accumulator_cells() {
        let set = boolean_set(1);
        set.default_domain().store().ingest("e", "a", "s");
        let mut snapshot = capture(&set);
        snapshot.domains[0].accumulator = Some(AccumulatorRec {
            cells: vec![0.0; 6],
            batches_seen: 1,
            watermark: 1,
        });
        let err = restore(&snapshot, &boolean_set(1), &RefitConfig::default()).unwrap_err();
        assert!(err.to_string().contains("blocks of 4"), "{err}");
    }

    #[test]
    fn restore_repairs_an_accumulator_newer_than_the_log() {
        // A capture racing a refit can save an accumulator whose
        // watermark exceeds the log and whose cells cover a source the
        // log never interned. Restore must repair (clamp + truncate),
        // not reject — the snapshot was legitimately saved, and a boot
        // failure would strand the server until an operator deletes it.
        let set = boolean_set(1);
        set.default_domain().store().ingest("e", "a", "s");
        let mut snapshot = capture(&set);
        snapshot.domains[0].accumulator = Some(AccumulatorRec {
            // Two sources' cells, but the log only interns one.
            cells: vec![1.0; 8],
            batches_seen: 3,
            watermark: 99,
        });
        let set2 = boolean_set(1);
        restore(&snapshot, &set2, &RefitConfig::default()).unwrap();
        let domain2 = set2.default_domain();
        let st = domain2.refit_state().lock().unwrap();
        assert_eq!(st.watermark(), 1, "watermark clamped to the log length");
        let resumed = st.streaming().unwrap();
        assert_eq!(
            resumed.accumulated().num_sources(),
            1,
            "cells for the phantom source are dropped"
        );
        drop(st);
        assert_eq!(domain2.store().pending(), 0);
        // The repaired accumulator folds incrementally again — no
        // SourceSpaceShrunk poisoning.
        let store2 = domain2.store();
        let delta = store2.shard_databases_since(1);
        assert!(delta.batches.is_empty());
        store2.ingest("e2", "a", "s");
        assert_eq!(store2.shard_databases_since(1).delta_facts, 1);
    }

    #[test]
    fn clean_stale_temps_removes_only_this_snapshots_litter() {
        let dir = temp_path("stale-temps-dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        std::fs::write(&path, "{}").unwrap();
        std::fs::write(dir.join("snap.json.tmp.1234.0"), "torn").unwrap();
        std::fs::write(dir.join("snap.json.tmp.1234.7"), "torn").unwrap();
        std::fs::write(dir.join("other.json.tmp.1.0"), "not ours").unwrap();
        assert_eq!(clean_stale_temps(&path).unwrap(), 2);
        assert!(path.exists(), "the snapshot itself is untouched");
        assert!(dir.join("other.json.tmp.1.0").exists());
        // Idempotent, and fine on a directory with nothing to clean.
        assert_eq!(clean_stale_temps(&path).unwrap(), 0);
        assert_eq!(
            clean_stale_temps(&dir.join("missing/deep.json")).unwrap(),
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_atomic_over_an_existing_snapshot() {
        let set = boolean_set(1);
        set.default_domain().store().ingest("e", "a", "s");
        let path = temp_path("atomic.json");
        std::fs::write(&path, "previous good snapshot").unwrap();
        save(&set, &path).unwrap();
        let reloaded = load(&path).unwrap();
        assert_eq!(reloaded, capture(&set));
        // No temp file left behind in the target directory.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&stem) && n != &stem)
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_saves_to_one_path_never_corrupt_it() {
        let set = Arc::new(boolean_set(1));
        set.default_domain().store().ingest("e", "a", "s");
        let path = Arc::new(temp_path("concurrent-save.json"));
        let savers: Vec<_> = (0..8)
            .map(|_| {
                let set = Arc::clone(&set);
                let path = Arc::clone(&path);
                std::thread::spawn(move || save(&set, &path).unwrap())
            })
            .collect();
        for s in savers {
            s.join().unwrap();
        }
        // Whichever save renamed last, the file must be a whole snapshot.
        let reloaded = load(&path).unwrap();
        assert_eq!(reloaded, capture(&set));
        std::fs::remove_file(&*path).ok();
    }

    #[test]
    fn restore_rejects_shard_count_mismatch() {
        let set = boolean_set(2);
        set.default_domain().store().ingest("e", "a", "s");
        let snapshot = capture(&set);
        let err = restore(&snapshot, &boolean_set(3), &RefitConfig::default()).unwrap_err();
        assert!(err.to_string().contains("shards"), "{err}");
    }

    #[test]
    fn restore_rejects_kind_mismatch() {
        let set = DomainSet::new();
        set.insert(Domain::new(
            DEFAULT_DOMAIN,
            ModelKind::RealValued,
            1,
            &RefitConfig::default(),
        ))
        .unwrap();
        let snapshot = capture(&set);
        // Restoring a real-valued `default` into a boolean-configured
        // server must fail loudly, not silently mix predictors.
        let err = restore(&snapshot, &boolean_set(1), &RefitConfig::default()).unwrap_err();
        assert!(err.to_string().contains("real_valued"), "{err}");
    }

    #[test]
    fn epoch_zero_saves_without_epoch_record() {
        let set = boolean_set(1);
        let snapshot = capture(&set);
        assert!(snapshot.domains[0].epoch.is_none());
        assert!(snapshot.domains[0].accumulator.is_none());
    }

    #[test]
    fn load_rejects_future_versions() {
        let path = temp_path("version.json");
        std::fs::write(&path, "{\"version\":9,\"domains\":[]}").unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
