//! Snapshot save/restore: store contents + learned quality as one JSON
//! file, so a restarted server resumes serving its last published epoch
//! without refitting from scratch.
//!
//! The store side is the accepted-triple log in arrival order: replaying
//! it through a fresh [`ShardedStore`] with the same shard count
//! reproduces every entity/attribute/source/fact id assignment (ids are
//! handed out in first-accepted order and duplicates never mint ids).
//! The predictor side is the raw Equation-3 parameter tables of the
//! served epoch, plus the pending watermark: the log can hold rows
//! ingested after the epoch's last refit, and restore leaves exactly
//! those rows pending so they still arm the refit trigger after a
//! restart. The refit side is the streaming **accumulator** — the
//! cumulative expected-count table plus its fold watermark — so a
//! restarted server resumes *incremental* refits over the unfolded tail
//! instead of cold-refitting the whole store from zero.

use std::io;
use std::path::Path;
use std::sync::Mutex;

use ltm_core::{BetaPair, ExpectedCounts, IncrementalLtm, LtmConfig, StreamingLtm};
use serde::{Deserialize, Serialize};

use crate::epoch::{EpochPredictor, EpochSnapshot};
use crate::refit::RefitState;
use crate::store::ShardedStore;

/// One accepted triple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleRec {
    /// Entity name.
    pub entity: String,
    /// Attribute name.
    pub attr: String,
    /// Source name.
    pub source: String,
}

/// The served epoch's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRec {
    /// Epoch number at save time.
    pub epoch: u64,
    /// Per-source sensitivity `φ¹`, indexed by global source id.
    pub phi1: Vec<f64>,
    /// Per-source false-positive rate `φ⁰`.
    pub phi0: Vec<f64>,
    /// `β` prior pseudo-counts.
    pub beta_pos: f64,
    /// See `beta_pos`.
    pub beta_neg: f64,
    /// Fallback `φ¹` for unseen sources.
    pub default_phi1: f64,
    /// Fallback `φ⁰` for unseen sources.
    pub default_phi0: f64,
    /// Diagnostics of the refit that produced the epoch.
    pub max_rhat: f64,
    /// See `max_rhat`.
    pub converged_fraction: f64,
    /// Claims that refit folded in.
    pub trained_claims: usize,
    /// Sources covered by the learned quality.
    pub trained_sources: usize,
}

/// The refit daemon's accumulator at save time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccumulatorRec {
    /// Raw expected-count cells, 4 per source in global source-id order
    /// ([`ExpectedCounts::cells`]).
    pub cells: Vec<f64>,
    /// Batches the saved [`StreamingLtm`] had folded (resumes per-batch
    /// seed decorrelation).
    pub batches_seen: usize,
    /// Accepted-row sequence the accumulator covers. Replay reproduces
    /// sequence numbers (they are replay-log positions), so this value
    /// is directly meaningful to the restored store.
    pub watermark: u64,
}

/// The on-disk snapshot format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version (currently 1).
    pub version: u32,
    /// Shard count the log was built with — restore replays into the
    /// same partitioning so global fact ids survive.
    pub shards: usize,
    /// Global source names in id order (informational / validation).
    pub sources: Vec<String>,
    /// Accepted triples in arrival order.
    pub triples: Vec<TripleRec>,
    /// Tail of `triples` not yet folded by a refit at save time. Restore
    /// leaves exactly this many rows pending so they still arm the refit
    /// trigger after a restart — the saved epoch never saw them. `None`
    /// in pre-watermark snapshots, which treated the whole log as folded.
    pub pending: Option<usize>,
    /// The refit accumulator, if any fold had committed by save time.
    /// Absent in older snapshots (which then cold-refit at boot).
    pub accumulator: Option<AccumulatorRec>,
    /// The served epoch, if any was published before the save.
    pub epoch: Option<EpochRec>,
}

/// Captures the current store + refit accumulator + served epoch.
pub fn capture(
    store: &ShardedStore,
    predictor: &EpochPredictor,
    refit: &Mutex<RefitState>,
) -> Snapshot {
    // Store state first (one consistent read under the ingest-order
    // lock), the refit accumulator second, the served epoch last — the
    // same order a refit commits in reverse. A refit that lands in
    // between can only make the saved accumulator/epoch *newer* than the
    // saved log, which errs toward re-folding already-folded rows at the
    // next boot (the refit path self-heals that with an Empty pass); the
    // reverse order could pair an old accumulator with `pending: 0` and
    // silently exclude the unfolded tail.
    let (sources, log, pending) = store.persistence_snapshot();
    let accumulator = {
        let st = refit.lock().expect("refit state");
        st.streaming().map(|s| AccumulatorRec {
            cells: s.accumulated().cells().to_vec(),
            batches_seen: s.batches_seen(),
            watermark: st.watermark(),
        })
    };
    let snap = predictor.load();
    let epoch = if snap.epoch == 0 {
        None
    } else {
        Some(EpochRec {
            epoch: snap.epoch,
            phi1: snap.predictor.phi1().to_vec(),
            phi0: snap.predictor.phi0().to_vec(),
            beta_pos: snap.predictor.beta().pos,
            beta_neg: snap.predictor.beta().neg,
            default_phi1: snap.predictor.fallback().0,
            default_phi0: snap.predictor.fallback().1,
            max_rhat: snap.max_rhat,
            converged_fraction: snap.converged_fraction,
            trained_claims: snap.trained_claims,
            trained_sources: snap.trained_sources,
        })
    };
    Snapshot {
        version: 1,
        shards: store.num_shards(),
        sources,
        triples: log
            .into_iter()
            .map(|[entity, attr, source]| TripleRec {
                entity,
                attr,
                source,
            })
            .collect(),
        pending: Some(pending),
        accumulator,
        epoch,
    }
}

/// Saves a snapshot as pretty JSON.
///
/// The write is atomic with respect to crashes: the JSON goes to a
/// temporary file in the same directory which is then renamed over the
/// target, so a kill mid-write can never leave a truncated snapshot (or
/// clobber the previous good one) that would fail the next boot.
pub fn save(
    store: &ShardedStore,
    predictor: &EpochPredictor,
    refit: &Mutex<RefitState>,
    path: &Path,
) -> io::Result<()> {
    let snapshot = capture(store, predictor, refit);
    let json = serde_json::to_string_pretty(&snapshot)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    // Unique per call, not just per process: two workers saving the same
    // path concurrently (racing admin snapshots, or one racing the final
    // shutdown save) must not interleave writes into a shared temp file
    // and rename torn JSON into place.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp_name);
    // Both failure paths remove the temp file: each save mints a unique
    // name, so leaking it would accumulate litter across retries.
    std::fs::write(&tmp, json).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Loads a snapshot file.
pub fn load(path: &Path) -> io::Result<Snapshot> {
    let text = std::fs::read_to_string(path)?;
    let snapshot: Snapshot = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if snapshot.version != 1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported snapshot version {}", snapshot.version),
        ));
    }
    Ok(snapshot)
}

/// Replays a snapshot into `store` (which must be empty and have the
/// snapshot's shard count), restores the served epoch into `predictor`,
/// and resumes the refit accumulator (if saved) into `refit` so the
/// first post-restart refit is incremental. `ltm` is the model
/// configuration the resumed accumulator will fit future batches with.
pub fn restore(
    snapshot: &Snapshot,
    store: &ShardedStore,
    predictor: &EpochPredictor,
    refit: &Mutex<RefitState>,
    ltm: &LtmConfig,
) -> io::Result<()> {
    if store.num_shards() != snapshot.shards {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "snapshot was taken with {} shards but the store has {} — fact ids would \
                 not survive the replay",
                snapshot.shards,
                store.num_shards()
            ),
        ));
    }
    if let Some(rec) = &snapshot.accumulator {
        if !rec.cells.len().is_multiple_of(4) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "accumulator cells come in blocks of 4 per source, got {}",
                    rec.cells.len()
                ),
            ));
        }
    }
    for t in &snapshot.triples {
        store.ingest(&t.entity, &t.attr, &t.source);
    }
    // Only the rows a refit had folded by save time are marked consumed;
    // the saved `pending` tail was never seen by the saved epoch and must
    // still arm the refit trigger after restart — otherwise served
    // predictions silently exclude data the store visibly holds until
    // some future ingest re-arms the trigger. Pre-watermark snapshots
    // (`pending` absent) fall back to the old treat-all-as-folded reading.
    // A capture that raced a refit can leave the accumulator watermark
    // ahead of the log's folded count; trust the larger of the two (the
    // accumulator provably folded through its watermark).
    let pending = snapshot.pending.unwrap_or(0);
    let mut folded = snapshot.triples.len().saturating_sub(pending) as u64;
    if let Some(rec) = &snapshot.accumulator {
        // A capture that raced a refit can legally pair an accumulator
        // slightly *newer* than the saved log: a fold that committed
        // between the store read and the state read may cover rows (and
        // even a source) the log never saw. Both mismatches are repaired
        // here rather than rejected — rejecting would make the server
        // unable to boot from its own legitimately-saved snapshot:
        //
        // * the watermark is clamped to the log, so the rows the log is
        //   missing are simply not marked folded, and
        // * cells for sources beyond the log's id space are dropped
        //   (their triples are not in the log either — the source was
        //   interned after the log copy was taken), keeping every
        //   remaining cell attributed to the id the replayed store
        //   assigns. The shed contribution is drift-sized and the next
        //   full refit reconciles it exactly.
        let watermark = rec.watermark.min(snapshot.triples.len() as u64);
        let mut cells = rec.cells.clone();
        cells.truncate(snapshot.sources.len() * 4);
        folded = folded.max(watermark);
        refit.lock().expect("refit state").restore(
            StreamingLtm::from_accumulated(
                *ltm,
                ExpectedCounts::from_cells(cells),
                rec.batches_seen,
            ),
            watermark,
        );
    }
    store.consume_pending(usize::try_from(folded).unwrap_or(usize::MAX));
    if store.source_names() != snapshot.sources {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "replay produced a different source-id assignment than the snapshot records",
        ));
    }
    if let Some(rec) = &snapshot.epoch {
        predictor.restore(EpochSnapshot {
            epoch: rec.epoch,
            predictor: IncrementalLtm::from_parts(
                rec.phi1.clone(),
                rec.phi0.clone(),
                BetaPair::new(rec.beta_pos, rec.beta_neg),
                rec.default_phi1,
                rec.default_phi0,
            ),
            max_rhat: rec.max_rhat,
            converged_fraction: rec.converged_fraction,
            trained_claims: rec.trained_claims,
            trained_sources: rec.trained_sources,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_core::Priors;
    use ltm_model::SourceId;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ltm-serve-test-{}-{name}", std::process::id()));
        p
    }

    fn empty_refit() -> Mutex<RefitState> {
        Mutex::new(RefitState::new())
    }

    #[test]
    fn snapshot_round_trips_store_and_epoch() {
        let store = ShardedStore::new(3);
        let priors = Priors::default();
        let predictor = EpochPredictor::new(&priors);
        let refit = empty_refit();
        store.ingest("e0", "a0", "s0");
        store.ingest("e0", "a1", "s1");
        store.ingest("e1", "a0", "s0");
        let mut snap = EpochSnapshot::boot(&priors);
        snap.predictor = IncrementalLtm::from_parts(
            vec![0.9, 0.4],
            vec![0.05, 0.3],
            BetaPair::new(2.0, 3.0),
            0.5,
            0.1,
        );
        snap.max_rhat = 1.07;
        snap.trained_claims = 4;
        predictor.publish(snap);

        let path = temp_path("roundtrip.json");
        save(&store, &predictor, &refit, &path).unwrap();
        let loaded = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, capture(&store, &predictor, &refit));

        let store2 = ShardedStore::new(3);
        let predictor2 = EpochPredictor::new(&priors);
        let refit2 = empty_refit();
        restore(
            &loaded,
            &store2,
            &predictor2,
            &refit2,
            &LtmConfig::default(),
        )
        .unwrap();
        assert_eq!(store2.stats().facts, store.stats().facts);
        assert_eq!(store2.source_names(), store.source_names());
        assert_eq!(
            store2.pending(),
            store.pending(),
            "restore preserves the unfolded tail"
        );

        let before = predictor.load();
        let after = predictor2.load();
        assert_eq!(after.epoch, before.epoch);
        let claims = [(SourceId::new(0), true), (SourceId::new(1), false)];
        assert_eq!(
            after.predictor.predict_fact(&claims),
            before.predictor.predict_fact(&claims),
            "bit-identical predictions after restore"
        );
    }

    #[test]
    fn snapshot_round_trips_the_accumulator() {
        let store = ShardedStore::new(2);
        let priors = Priors::default();
        let predictor = EpochPredictor::new(&priors);
        store.ingest("e0", "a0", "s0");
        store.ingest("e0", "a1", "s1");
        // A committed fold: accumulator over 2 sources, watermark 2.
        let refit = empty_refit();
        let mut streaming = StreamingLtm::new(LtmConfig::default());
        streaming
            .try_observe(&store.full_databases().batches[0])
            .expect("fold");
        let cells_before = streaming.accumulated().cells().to_vec();
        refit.lock().unwrap().restore(streaming, 2);
        store.consume_pending(2);
        // …then one more row arrives unfolded.
        store.ingest("e1", "a0", "s0");

        let snapshot = capture(&store, &predictor, &refit);
        let rec = snapshot.accumulator.as_ref().expect("accumulator saved");
        assert_eq!(rec.watermark, 2);
        assert_eq!(rec.batches_seen, 1);
        assert_eq!(rec.cells, cells_before);

        let store2 = ShardedStore::new(2);
        let refit2 = empty_refit();
        restore(
            &snapshot,
            &store2,
            &predictor,
            &refit2,
            &LtmConfig::default(),
        )
        .unwrap();
        let st = refit2.lock().unwrap();
        assert_eq!(st.watermark(), 2, "fold watermark resumes");
        let resumed = st.streaming().expect("accumulator resumed");
        assert_eq!(resumed.accumulated().cells(), &cells_before[..]);
        assert_eq!(resumed.batches_seen(), 1);
        drop(st);
        assert_eq!(store2.pending(), 1, "only the unfolded tail is pending");
        // The delta since the restored watermark is exactly that tail.
        let delta = store2.shard_databases_since(2);
        assert_eq!(delta.delta_facts, 1);
    }

    #[test]
    fn restore_trusts_the_newer_of_pending_and_accumulator_watermark() {
        // A capture racing a refit can pair an older log view (pending
        // still unconsumed) with a newer accumulator; restore must trust
        // the accumulator's watermark instead of re-arming forever.
        let store = ShardedStore::new(1);
        let predictor = EpochPredictor::new(&Priors::default());
        store.ingest("e0", "a0", "s0");
        store.ingest("e1", "a0", "s0");
        let mut snapshot = capture(&store, &predictor, &empty_refit());
        assert_eq!(snapshot.pending, Some(2));
        snapshot.accumulator = Some(AccumulatorRec {
            cells: vec![0.0; 4],
            batches_seen: 1,
            watermark: 2,
        });
        let store2 = ShardedStore::new(1);
        let refit2 = empty_refit();
        restore(
            &snapshot,
            &store2,
            &predictor,
            &refit2,
            &LtmConfig::default(),
        )
        .unwrap();
        assert_eq!(store2.pending(), 0, "accumulator already folded both rows");
        assert_eq!(refit2.lock().unwrap().watermark(), 2);
    }

    #[test]
    fn restore_leaves_unfolded_tail_pending() {
        let store = ShardedStore::new(2);
        let priors = Priors::default();
        let predictor = EpochPredictor::new(&priors);
        store.ingest("e0", "a0", "s0");
        store.ingest("e0", "a1", "s1");
        store.ingest("e1", "a0", "s0");
        // A refit folded the first three rows…
        store.consume_pending(3);
        // …then two more arrived before the save.
        store.ingest("e2", "a0", "s1");
        store.ingest("e2", "a1", "s0");
        assert_eq!(store.pending(), 2);

        let snapshot = capture(&store, &predictor, &empty_refit());
        assert_eq!(snapshot.pending, Some(2));
        let store2 = ShardedStore::new(2);
        restore(
            &snapshot,
            &store2,
            &predictor,
            &empty_refit(),
            &LtmConfig::default(),
        )
        .unwrap();
        assert_eq!(
            store2.pending(),
            2,
            "the tail the saved epoch never saw must re-arm the refit trigger"
        );
    }

    #[test]
    fn pre_watermark_snapshots_load_as_fully_folded() {
        let path = temp_path("no-pending-field.json");
        std::fs::write(
            &path,
            "{\"version\":1,\"shards\":1,\"sources\":[\"s\"],\
             \"triples\":[{\"entity\":\"e\",\"attr\":\"a\",\"source\":\"s\"}],\
             \"epoch\":null}",
        )
        .unwrap();
        let snapshot = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(snapshot.pending, None);
        assert_eq!(snapshot.accumulator, None);
        let store = ShardedStore::new(1);
        let predictor = EpochPredictor::new(&Priors::default());
        let refit = empty_refit();
        restore(&snapshot, &store, &predictor, &refit, &LtmConfig::default()).unwrap();
        assert_eq!(store.pending(), 0, "old snapshots treat the log as folded");
        assert!(
            refit.lock().unwrap().streaming().is_none(),
            "no accumulator to resume: the next refit is a cold one"
        );
    }

    #[test]
    fn restore_rejects_ragged_accumulator_cells() {
        let store = ShardedStore::new(1);
        let predictor = EpochPredictor::new(&Priors::default());
        store.ingest("e", "a", "s");
        let mut snapshot = capture(&store, &predictor, &empty_refit());
        snapshot.accumulator = Some(AccumulatorRec {
            cells: vec![0.0; 6],
            batches_seen: 1,
            watermark: 1,
        });
        let err = restore(
            &snapshot,
            &ShardedStore::new(1),
            &predictor,
            &empty_refit(),
            &LtmConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("blocks of 4"), "{err}");
    }

    #[test]
    fn restore_repairs_an_accumulator_newer_than_the_log() {
        // A capture racing a refit can save an accumulator whose
        // watermark exceeds the log and whose cells cover a source the
        // log never interned. Restore must repair (clamp + truncate),
        // not reject — the snapshot was legitimately saved, and a boot
        // failure would strand the server until an operator deletes it.
        let store = ShardedStore::new(1);
        let predictor = EpochPredictor::new(&Priors::default());
        store.ingest("e", "a", "s");
        let mut snapshot = capture(&store, &predictor, &empty_refit());
        snapshot.accumulator = Some(AccumulatorRec {
            // Two sources' cells, but the log only interns one.
            cells: vec![1.0; 8],
            batches_seen: 3,
            watermark: 99,
        });
        let store2 = ShardedStore::new(1);
        let refit2 = empty_refit();
        restore(
            &snapshot,
            &store2,
            &predictor,
            &refit2,
            &LtmConfig::default(),
        )
        .unwrap();
        let st = refit2.lock().unwrap();
        assert_eq!(st.watermark(), 1, "watermark clamped to the log length");
        let resumed = st.streaming().unwrap();
        assert_eq!(
            resumed.accumulated().num_sources(),
            1,
            "cells for the phantom source are dropped"
        );
        drop(st);
        assert_eq!(store2.pending(), 0);
        // The repaired accumulator folds incrementally again — no
        // SourceSpaceShrunk poisoning.
        let delta = store2.shard_databases_since(1);
        assert!(delta.batches.is_empty());
        store2.ingest("e2", "a", "s");
        assert_eq!(store2.shard_databases_since(1).delta_facts, 1);
    }

    #[test]
    fn save_is_atomic_over_an_existing_snapshot() {
        let store = ShardedStore::new(1);
        let priors = Priors::default();
        let predictor = EpochPredictor::new(&priors);
        let refit = empty_refit();
        store.ingest("e", "a", "s");
        let path = temp_path("atomic.json");
        std::fs::write(&path, "previous good snapshot").unwrap();
        save(&store, &predictor, &refit, &path).unwrap();
        let reloaded = load(&path).unwrap();
        assert_eq!(reloaded, capture(&store, &predictor, &refit));
        // No temp file left behind in the target directory.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&stem) && n != &stem)
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_saves_to_one_path_never_corrupt_it() {
        use std::sync::Arc;
        let store = Arc::new(ShardedStore::new(1));
        let priors = Priors::default();
        let predictor = Arc::new(EpochPredictor::new(&priors));
        let refit = Arc::new(empty_refit());
        store.ingest("e", "a", "s");
        let path = Arc::new(temp_path("concurrent-save.json"));
        let savers: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                let predictor = Arc::clone(&predictor);
                let refit = Arc::clone(&refit);
                let path = Arc::clone(&path);
                std::thread::spawn(move || save(&store, &predictor, &refit, &path).unwrap())
            })
            .collect();
        for s in savers {
            s.join().unwrap();
        }
        // Whichever save renamed last, the file must be a whole snapshot.
        let reloaded = load(&path).unwrap();
        assert_eq!(reloaded, capture(&store, &predictor, &refit));
        std::fs::remove_file(&*path).ok();
    }

    #[test]
    fn restore_rejects_shard_count_mismatch() {
        let store = ShardedStore::new(2);
        let priors = Priors::default();
        let predictor = EpochPredictor::new(&priors);
        store.ingest("e", "a", "s");
        let snapshot = capture(&store, &predictor, &empty_refit());
        let wrong = ShardedStore::new(3);
        let err = restore(
            &snapshot,
            &wrong,
            &predictor,
            &empty_refit(),
            &LtmConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("shards"), "{err}");
    }

    #[test]
    fn epoch_zero_saves_without_epoch_record() {
        let store = ShardedStore::new(1);
        let priors = Priors::default();
        let predictor = EpochPredictor::new(&priors);
        let snapshot = capture(&store, &predictor, &empty_refit());
        assert!(snapshot.epoch.is_none());
        assert!(snapshot.accumulator.is_none());
    }

    #[test]
    fn load_rejects_future_versions() {
        let path = temp_path("version.json");
        std::fs::write(
            &path,
            "{\"version\":9,\"shards\":1,\"sources\":[],\"triples\":[],\"epoch\":null}",
        )
        .unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
