//! Epoch-swapped predictors.
//!
//! Queries never touch model-fitting state: they read an immutable
//! [`EpochSnapshot`] behind an `Arc`, and the refit daemon publishes a
//! whole new snapshot by swapping the `Arc` in one short critical
//! section. The `RwLock` around the `Arc` is held only for the pointer
//! clone (readers) or the pointer store (writer) — never across a fit or
//! even a prediction — so a query can stall behind a refit for at most
//! one pointer-swap, regardless of how long the refit itself runs (see
//! DESIGN.md §6 for the memory-ordering argument).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use ltm_core::{
    IncrementalLtm, IncrementalRealLtm, Priors, RealLtmConfig, RealSuffStats, SourceQuality,
};

use crate::model::{ModelKind, ServePredictor};
use crate::shadow::ShadowTables;

/// One immutable published predictor generation.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// Monotonic epoch number (0 = the prior-only boot predictor).
    pub epoch: u64,
    /// The closed-form predictor for this epoch (Equation 3 for boolean
    /// and positive-only domains, the Student-t predictive for
    /// real-valued ones).
    pub predictor: ServePredictor,
    /// Largest per-fact Gelman–Rubin `R̂` of the refit that produced this
    /// epoch (1.0 for the boot predictor).
    pub max_rhat: f64,
    /// Fraction of facts with `R̂ ≤ 1.1` in that refit.
    pub converged_fraction: f64,
    /// Claims the refit folded in.
    pub trained_claims: usize,
    /// Sources covered by the learned quality.
    pub trained_sources: usize,
    /// Shadow baseline tables fit on the same extraction as this epoch,
    /// if shadow fitting is enabled for the domain (`None` for the boot
    /// predictor, real-valued domains, and restored epochs whose
    /// snapshot predates shadow persistence).
    pub shadow: Option<Arc<ShadowTables>>,
}

impl EpochSnapshot {
    /// The epoch-0 boot predictor for a boolean (or positive-only)
    /// domain: prior-mean quality only.
    pub fn boot(priors: &Priors) -> Self {
        let empty = SourceQuality::estimate(
            &ltm_model::ClaimDb::from_parts(vec![], vec![], 0),
            &ltm_model::TruthAssignment::new(vec![]),
            priors,
        );
        Self::from_predictor(ServePredictor::Boolean(IncrementalLtm::new(&empty, priors)))
    }

    /// The epoch-0 boot predictor for a real-valued domain: the NIG
    /// prior-only Student-t predictive.
    pub fn boot_real(real: &RealLtmConfig) -> Self {
        Self::from_predictor(ServePredictor::Real(IncrementalRealLtm::new(
            real,
            RealSuffStats::zeros(0),
        )))
    }

    /// The epoch-0 boot predictor for `kind`.
    pub fn boot_for(kind: ModelKind, priors: &Priors, real: &RealLtmConfig) -> Self {
        match kind {
            ModelKind::Boolean | ModelKind::PositiveOnly => Self::boot(priors),
            ModelKind::RealValued => Self::boot_real(real),
        }
    }

    fn from_predictor(predictor: ServePredictor) -> Self {
        Self {
            epoch: 0,
            predictor,
            max_rhat: 1.0,
            converged_fraction: 1.0,
            trained_claims: 0,
            trained_sources: 0,
            shadow: None,
        }
    }
}

/// The atomically swapped predictor cell plus publish/reject counters.
#[derive(Debug)]
pub struct EpochPredictor {
    current: RwLock<Arc<EpochSnapshot>>,
    published: AtomicU64,
    rejected: AtomicU64,
    swapped_at: Mutex<Instant>,
}

impl EpochPredictor {
    /// Starts at the boolean epoch-0 boot predictor.
    pub fn new(priors: &Priors) -> Self {
        Self::with_boot(EpochSnapshot::boot(priors))
    }

    /// Starts at the given epoch-0 boot predictor (see
    /// [`EpochSnapshot::boot_for`] for the per-kind boots).
    pub fn with_boot(boot: EpochSnapshot) -> Self {
        Self {
            current: RwLock::new(Arc::new(boot)),
            published: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            swapped_at: Mutex::new(Instant::now()),
        }
    }

    /// The current snapshot. Cheap: one read-lock + `Arc` clone.
    pub fn load(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.current.read().expect("epoch lock"))
    }

    /// Publishes `snapshot` as the next epoch (its `epoch` field is
    /// overwritten with `current + 1`) and returns the new epoch number.
    pub fn publish(&self, mut snapshot: EpochSnapshot) -> u64 {
        let mut slot = self.current.write().expect("epoch lock");
        snapshot.epoch = slot.epoch + 1;
        let epoch = snapshot.epoch;
        *slot = Arc::new(snapshot);
        drop(slot);
        self.published.fetch_add(1, Ordering::Relaxed);
        *self.swapped_at.lock().expect("epoch swap clock") = Instant::now();
        epoch
    }

    /// Installs a snapshot restored from disk, keeping its epoch number.
    pub fn restore(&self, snapshot: EpochSnapshot) {
        *self.current.write().expect("epoch lock") = Arc::new(snapshot);
        *self.swapped_at.lock().expect("epoch swap clock") = Instant::now();
    }

    /// Seconds since the serving snapshot was last swapped (publish or
    /// restore); measures epoch staleness for `/metrics`.
    pub fn epoch_age_secs(&self) -> f64 {
        self.swapped_at
            .lock()
            .expect("epoch swap clock")
            .elapsed()
            .as_secs_f64()
    }

    /// Records a refit whose diagnostics failed the promotion gate.
    pub fn record_rejection(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Epochs published since boot (restores not counted).
    pub fn epochs_published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Refits rejected by the promotion gate since boot.
    pub fn epochs_rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltm_core::BetaPair;

    fn priors() -> Priors {
        Priors::default()
    }

    #[test]
    fn boot_predictor_is_epoch_zero_prior_mean() {
        let p = EpochPredictor::new(&priors());
        let snap = p.load();
        assert_eq!(snap.epoch, 0);
        // No claims → β prior mean.
        let b = priors().beta;
        assert!((snap.predictor.predict_fact(&[]) - b.mean()).abs() < 1e-12);
    }

    #[test]
    fn publish_bumps_epoch_and_counts() {
        let p = EpochPredictor::new(&priors());
        let mut snap = EpochSnapshot::boot(&priors());
        snap.max_rhat = 1.05;
        let e1 = p.publish(snap.clone());
        let e2 = p.publish(snap);
        assert_eq!((e1, e2), (1, 2));
        assert_eq!(p.load().epoch, 2);
        assert_eq!(p.epochs_published(), 2);
        p.record_rejection();
        assert_eq!(p.epochs_rejected(), 1);
    }

    #[test]
    fn restore_keeps_epoch_number() {
        let p = EpochPredictor::new(&priors());
        let mut snap = EpochSnapshot::boot(&priors());
        snap.epoch = 7;
        snap.predictor = ServePredictor::Boolean(IncrementalLtm::from_parts(
            vec![0.9],
            vec![0.1],
            BetaPair::new(1.0, 1.0),
            0.5,
            0.1,
        ));
        p.restore(snap);
        assert_eq!(p.load().epoch, 7);
        assert_eq!(p.epochs_published(), 0);
    }

    #[test]
    fn real_boot_predictor_is_prior_mean() {
        let real = RealLtmConfig::default();
        let p = EpochPredictor::with_boot(EpochSnapshot::boot_for(
            ModelKind::RealValued,
            &priors(),
            &real,
        ));
        let snap = p.load();
        assert_eq!(snap.epoch, 0);
        assert!(snap.predictor.as_real().is_some());
        // No claims → β prior mean, same contract as the boolean boot.
        assert!((snap.predictor.predict_real(&[]) - real.beta.mean()).abs() < 1e-12);
    }

    #[test]
    fn epoch_age_resets_on_publish() {
        let p = EpochPredictor::new(&priors());
        std::thread::sleep(std::time::Duration::from_millis(10));
        let before = p.epoch_age_secs();
        assert!(before >= 0.01);
        p.publish(EpochSnapshot::boot(&priors()));
        assert!(p.epoch_age_secs() < before);
    }

    #[test]
    fn load_is_stable_across_publish() {
        let p = EpochPredictor::new(&priors());
        let old = p.load();
        p.publish(EpochSnapshot::boot(&priors()));
        // The old Arc keeps serving its epoch; no tearing.
        assert_eq!(old.epoch, 0);
        assert_eq!(p.load().epoch, 1);
    }
}
