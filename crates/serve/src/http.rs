//! A minimal HTTP/1.1 layer on `std::net` — request parsing (blocking
//! and incremental), response rendering, a generic worker pool, and
//! clients (one-shot and keep-alive).
//!
//! Implemented in-repo rather than pulling in a web framework, consistent
//! with the offline vendored-dependency policy (DESIGN.md §8): the
//! serving layer needs exactly `Content-Length`-delimited JSON bodies,
//! and nothing more. Chunked encoding and TLS are out of scope; HTTP/1.1
//! **keep-alive and pipelining** are supported by the event-driven front
//! end (see [`crate::event_loop`]), whose per-connection state machine
//! feeds bytes through `parse_request` here. The blocking fallback
//! front end still answers one `Connection: close` request per socket
//! via `read_request_with_deadline` (both are crate-internal).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use crate::sync::LockExt;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum accepted request-head (request line + headers) size.
pub(crate) const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted body size.
pub(crate) const MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed request: method, path, and UTF-8 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the client, verbatim from peers).
    pub method: String,
    /// The request target, e.g. `/facts/3`.
    pub path: String,
    /// The body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// A routed response: status code, content type, and body. What the
/// request handlers hand back to whichever front end dispatched them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (`application/json` for every route
    /// except the Prometheus text of `GET /metrics`).
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Why a byte stream failed to parse as a request. [`ParseError::status`]
/// picks the response status a front end should answer with before
/// closing the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParseError {
    /// The head or declared body exceeds the accepted bound → 413.
    TooLarge(&'static str),
    /// Anything else unparseable → 400.
    Malformed(&'static str),
}

impl ParseError {
    /// The response status for this rejection.
    pub(crate) fn status(self) -> u16 {
        match self {
            ParseError::TooLarge(_) => 413,
            ParseError::Malformed(_) => 400,
        }
    }

    /// The human-readable reason.
    pub(crate) fn message(self) -> &'static str {
        match self {
            ParseError::TooLarge(m) | ParseError::Malformed(m) => m,
        }
    }
}

impl From<ParseError> for io::Error {
    fn from(e: ParseError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.message())
    }
}

/// Whether an I/O error from the blocking reader is a size-bound
/// rejection (answered 413 rather than 400).
pub(crate) fn is_too_large(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::InvalidData && e.to_string().contains("too large")
}

/// The parsed head fields the framing layer needs.
struct HeadFields {
    method: String,
    path: String,
    content_length: usize,
    close_after: bool,
}

/// Parses a request head (everything before the `\r\n\r\n`): request
/// line, `Content-Length`, and the keep-alive decision — HTTP/1.1
/// defaults to keep-alive unless `Connection: close`; HTTP/1.0 defaults
/// to close unless `Connection: keep-alive`.
fn parse_head_fields(head_bytes: &[u8]) -> Result<HeadFields, ParseError> {
    let head_text =
        std::str::from_utf8(head_bytes).map_err(|_| ParseError::Malformed("non-UTF-8 head"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().ok_or(ParseError::Malformed("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("missing method"))?;
    let path = parts.next().ok_or(ParseError::Malformed("missing path"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");

    let mut content_length = 0usize;
    let mut connection: Option<String> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Malformed("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge("body too large"));
    }
    let close_after = match connection.as_deref() {
        Some("close") => true,
        Some(c) if c.contains("keep-alive") => false,
        _ => version == "HTTP/1.0",
    };
    Ok(HeadFields {
        method: method.to_owned(),
        path: path.to_owned(),
        content_length,
        close_after,
    })
}

/// Outcome of [`parse_request`] on a (possibly still growing) buffer.
#[derive(Debug)]
pub(crate) enum Parsed {
    /// One complete request: how many buffer bytes it consumed (the
    /// remainder is the start of the next pipelined request) and whether
    /// the peer asked to close after the response.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
        /// `Connection: close` semantics for the response.
        close_after: bool,
    },
    /// The buffer holds a prefix of a request; read more bytes.
    Partial,
}

/// Incremental request parsing over an accumulation buffer: the
/// event-loop front end appends whatever the socket yields and calls
/// this until it returns [`Parsed::Complete`] (possibly several times
/// per readable wakeup, for pipelined peers).
///
/// The head bound is enforced as soon as the buffer outgrows
/// [`MAX_HEAD`] with no terminator in sight, and the body bound from
/// the declared `Content-Length` — so a peer can never make the server
/// buffer more than one bounded request ahead of dispatch.
pub(crate) fn parse_request(buf: &[u8]) -> Result<Parsed, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Err(ParseError::TooLarge("request head too large"));
        }
        return Ok(Parsed::Partial);
    };
    if head_end > MAX_HEAD {
        return Err(ParseError::TooLarge("request head too large"));
    }
    // analyzer: allow(panic-index) -- find_head_end returned head_end, so buf has >= head_end + 4 bytes
    let fields = parse_head_fields(&buf[..head_end])?;
    let body_start = head_end + 4;
    let body_end = body_start + fields.content_length;
    if buf.len() < body_end {
        return Ok(Parsed::Partial);
    }
    // analyzer: allow(panic-index) -- buf.len() >= body_end was checked above
    let body = String::from_utf8(buf[body_start..body_end].to_vec())
        .map_err(|_| ParseError::Malformed("non-UTF-8 body"))?;
    Ok(Parsed::Complete {
        request: Request {
            method: fields.method,
            path: fields.path,
            body,
        },
        consumed: body_end,
        close_after: fields.close_after,
    })
}

/// Reads one request from `stream` with no deadline (trusted peers:
/// tests and in-process helpers). Servers should prefer
/// [`read_request_with_deadline`].
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    read_request_with_deadline(stream, None)
}

/// Re-arms the socket read timeout with the time remaining until
/// `deadline`, or fails with `TimedOut` once the deadline has passed.
/// Making the deadline govern the *whole request* — rather than relying
/// on a fixed per-read timeout — is what stops a drip-feeding peer from
/// holding a worker indefinitely by keeping each individual read alive.
fn arm_deadline(stream: &TcpStream, deadline: Option<Instant>) -> io::Result<()> {
    let Some(deadline) = deadline else {
        return Ok(());
    };
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "request deadline exceeded",
        ));
    }
    stream.set_read_timeout(Some(remaining))
}

/// Reads one request from `stream`, bounding the whole read (head and
/// body, across however many packets the peer drips them in) by
/// `timeout` when given.
///
/// Returns `Err` on malformed framing, oversized heads/bodies, deadline
/// expiry, or I/O failure — the connection is then dropped (after a 400
/// or 413 the peer may or may not see, depending on the front end).
pub fn read_request_with_deadline(
    stream: &mut TcpStream,
    timeout: Option<Duration>,
) -> io::Result<Request> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let deadline = timeout.map(|t| Instant::now() + t);

    // Accumulate until the blank line that ends the head. The size bound
    // is enforced when the buffer grows, not merely before the next read:
    // checking only at the top of the loop would let a peer push the
    // buffer to `MAX_HEAD + 4096` bytes (one full read chunk past the
    // bound) before rejection. Reads are additionally capped so the
    // buffer itself can never exceed `MAX_HEAD + 1` bytes — one byte over
    // is exactly enough to detect the violation. (A buffer longer than
    // `MAX_HEAD` is still legal once the terminator is inside it: the
    // excess is body bytes, handed to the body loop below.)
    let mut head = Vec::new();
    let mut buf = [0u8; 4096];
    let body_start = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        arm_deadline(stream, deadline)?;
        let cap = (MAX_HEAD + 1 - head.len()).min(buf.len());
        // analyzer: allow(panic-index) -- cap is clamped to buf.len() on the line above
        let n = stream.read(&mut buf[..cap])?;
        if n == 0 {
            return Err(bad("connection closed mid-head"));
        }
        // analyzer: allow(panic-index) -- read() returns n <= buf.len()
        head.extend_from_slice(&buf[..n]);
        if head.len() > MAX_HEAD && find_head_end(&head).is_none() {
            return Err(bad("request head too large"));
        }
    };
    let (head_bytes, rest) = head.split_at(body_start);
    // analyzer: allow(panic-index) -- find_head_end found "\r\n\r\n" at body_start, so rest has >= 4 bytes
    let mut body = rest[4..].to_vec(); // skip the \r\n\r\n itself

    let fields = parse_head_fields(head_bytes)?;
    while body.len() < fields.content_length {
        arm_deadline(stream, deadline)?;
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        // analyzer: allow(panic-index) -- read() returns n <= buf.len()
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(fields.content_length);

    Ok(Request {
        method: fields.method,
        path: fields.path,
        body: String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?,
    })
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The reason phrase for the statuses this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Renders one response to wire bytes. `keep_alive` picks the
/// `Connection` header: the event-loop front end keeps connections open
/// unless the request (or a parse error) demands otherwise; the blocking
/// front end always closes.
pub(crate) fn render_response(
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes()
}

/// Writes a `Connection: close` JSON response.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write_response_with_type(stream, status, "application/json", body)
}

/// Writes a `Connection: close` response with an explicit content type
/// (`GET /metrics` serves Prometheus text, everything else JSON).
pub fn write_response_with_type(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    stream.write_all(&render_response(status, content_type, body, false))?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// A fixed pool of worker threads draining a queue of work items — raw
/// connections for the blocking front end ([`ThreadPool`]), parsed
/// requests for the event-loop front end.
#[derive(Debug)]
pub struct WorkerPool<T: Send + 'static> {
    sender: Option<mpsc::Sender<T>>,
    workers: Vec<JoinHandle<()>>,
}

/// The blocking front end's pool: one accepted connection per item.
pub type ThreadPool = WorkerPool<TcpStream>;

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `size` workers named `{name}-{i}`, each running `handler`
    /// on every item it receives.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize, name: &str, handler: Arc<dyn Fn(T) + Send + Sync>) -> Self {
        assert!(size > 0, "worker pool needs at least one worker");
        let (sender, receiver) = mpsc::channel::<T>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        let next = receiver.locked().recv();
                        match next {
                            Ok(item) => {
                                // A panicking handler must not shrink the
                                // pool: contain it, drop the item, keep
                                // serving.
                                let result =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        handler(item)
                                    }));
                                if result.is_err() {
                                    crate::log_error!(
                                        "http",
                                        "request handler panicked; worker continues"
                                    );
                                }
                            }
                            Err(_) => return, // sender dropped: shutdown
                        }
                    })
                    // analyzer: allow(panic-expect) -- boot-time spawn; fails only on OS thread exhaustion, before the server serves
                    .expect("spawn http worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Hands an item to the pool.
    pub fn dispatch(&self, item: T) {
        if let Some(sender) = &self.sender {
            // A send error means shutdown already started; drop the item.
            let _ = sender.send(item);
        }
    }

    /// A clone of the dispatch channel (used by the server's accept loop,
    /// which outlives borrows of the pool).
    pub(crate) fn sender_clone(&self) -> Option<mpsc::Sender<T>> {
        self.sender.clone()
    }

    /// Closes the queue and joins every worker.
    pub fn shutdown(mut self) {
        self.sender.take(); // closes the channel
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Clients
// ---------------------------------------------------------------------------

/// A one-shot HTTP client call: `Connection: close`, optional JSON body.
/// Returns `(status, body)`. For repeated calls against one server,
/// prefer [`HttpClient`], which reuses its connection.
pub fn http_call<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: ltm\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let (head, response_body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated response"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, response_body.to_owned()))
}

/// A reusable keep-alive HTTP/1.1 client: one TCP connection across
/// calls, `Content-Length`-framed response parsing (no read-to-EOF), and
/// [`HttpClient::pipeline`] for writing several requests before reading
/// any response. The benchmark harness and e2e tests drive the
/// event-loop front end through this client.
///
/// A dropped connection (server restart, idle reaping) is repaired by a
/// single transparent reconnect when the failure happens before any
/// response bytes arrived — a request that died mid-response surfaces
/// the error instead, since the server may have executed it.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Bytes read past the end of the previous response (the next
    /// pipelined response's prefix).
    carry: Vec<u8>,
    read_timeout: Duration,
}

impl HttpClient {
    /// A client for `addr`. Resolution happens here; the connection is
    /// opened lazily on the first call.
    pub fn new<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
        })?;
        Ok(Self {
            addr,
            stream: None,
            carry: Vec::new(),
            read_timeout: Duration::from_secs(60),
        })
    }

    /// Overrides the per-read socket timeout (default 60 s).
    pub fn set_read_timeout(&mut self, timeout: Duration) {
        self.read_timeout = timeout;
    }

    /// Whether the previous call left a live connection to reuse.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            self.carry.clear();
            self.stream = Some(stream);
        }
        // analyzer: allow(panic-expect) -- the branch above just filled the Option
        Ok(self.stream.as_mut().expect("stream just connected"))
    }

    fn render_request(method: &str, path: &str, body: Option<&str>) -> Vec<u8> {
        let body = body.unwrap_or("");
        format!(
            "{method} {path} HTTP/1.1\r\nHost: ltm\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    /// One keep-alive request/response round trip.
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let wire = Self::render_request(method, path, body);
        let reused = self.stream.is_some();
        match self.try_round_trip(&wire) {
            Ok(result) => Ok(result),
            // A reused connection may have been reaped between calls
            // (idle deadline, server restart): retry once on a fresh
            // connection. Fresh-connection failures are real errors.
            Err(_) if reused => {
                self.stream = None;
                self.try_round_trip(&wire)
            }
            Err(e) => Err(e),
        }
    }

    /// Writes every request, then reads the responses **in request
    /// order** — the pipelining contract the event-loop front end
    /// guarantees. No transparent retry: a mid-pipeline failure is
    /// surfaced, since the server may have executed a prefix.
    pub fn pipeline(
        &mut self,
        requests: &[(&str, &str, Option<&str>)],
    ) -> io::Result<Vec<(u16, String)>> {
        let stream = self.connect()?;
        let mut wire = Vec::new();
        for (method, path, body) in requests {
            wire.extend_from_slice(&Self::render_request(method, path, *body));
        }
        if let Err(e) = stream.write_all(&wire).and_then(|()| stream.flush()) {
            self.stream = None;
            return Err(e);
        }
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            match self.read_response() {
                Ok(r) => responses.push(r),
                Err(e) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
        Ok(responses)
    }

    fn try_round_trip(&mut self, wire: &[u8]) -> io::Result<(u16, String)> {
        let stream = self.connect()?;
        if let Err(e) = stream.write_all(wire).and_then(|()| stream.flush()) {
            self.stream = None;
            return Err(e);
        }
        match self.read_response() {
            Ok(r) => Ok(r),
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// Reads one `Content-Length`-framed response off the connection,
    /// honouring a server-sent `Connection: close`.
    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        let Some(stream) = self.stream.as_mut() else {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "not connected"));
        };
        let mut buf = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf) {
                break pos;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-response-head"));
            }
            // analyzer: allow(panic-index) -- read() returns n <= chunk.len()
            buf.extend_from_slice(&chunk[..n]);
        };
        // analyzer: allow(panic-index) -- find_head_end found the terminator at head_end
        let head_text = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| bad("non-UTF-8 response head"))?
            .to_owned();
        let status: u16 = head_text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut content_length = 0usize;
        let mut close_after = false;
        for line in head_text.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?;
                } else if name.eq_ignore_ascii_case("connection")
                    && value.trim().eq_ignore_ascii_case("close")
                {
                    close_after = true;
                }
            }
        }
        let body_start = head_end + 4;
        while buf.len() < body_start + content_length {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-response-body"));
            }
            // analyzer: allow(panic-index) -- read() returns n <= chunk.len()
            buf.extend_from_slice(&chunk[..n]);
        }
        // analyzer: allow(panic-index) -- the loop above read until buf covers body_start + content_length
        let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
            .map_err(|_| bad("non-UTF-8 response body"))?;
        if close_after {
            self.stream = None;
        } else {
            // analyzer: allow(panic-index) -- body_start + content_length <= buf.len() per the loop above
            self.carry = buf[body_start + content_length..].to_vec();
        }
        Ok((status, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Spins up a listener whose single accepted connection is parsed and
    /// echoed back through `write_response`.
    fn echo_server() -> (std::net::SocketAddr, JoinHandle<Request>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            write_response(
                &mut stream,
                200,
                &format!("{{\"echo\":{}}}", req.body.len()),
            )
            .unwrap();
            req
        });
        (addr, handle)
    }

    #[test]
    fn request_response_round_trip() {
        let (addr, server) = echo_server();
        let (status, body) = http_call(addr, "POST", "/claims", Some("{\"x\":1}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"echo\":7}");
        let req = server.join().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/claims");
        assert_eq!(req.body, "{\"x\":1}");
    }

    #[test]
    fn get_without_body_parses() {
        let (addr, server) = echo_server();
        let (status, _) = http_call(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let req = server.join().unwrap();
        assert_eq!((req.method.as_str(), req.body.as_str()), ("GET", ""));
    }

    #[test]
    fn incremental_parser_handles_split_and_pipelined_requests() {
        // Byte-at-a-time: Partial until the last body byte arrives.
        let wire = b"POST /q HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        for cut in 0..wire.len() {
            assert!(
                matches!(parse_request(&wire[..cut]), Ok(Parsed::Partial)),
                "cut at {cut} must be partial"
            );
        }
        let Ok(Parsed::Complete {
            request,
            consumed,
            close_after,
        }) = parse_request(wire)
        else {
            panic!("complete request must parse");
        };
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/q");
        assert_eq!(request.body, "abcd");
        assert_eq!(consumed, wire.len());
        assert!(!close_after, "HTTP/1.1 defaults to keep-alive");

        // Two pipelined requests in one buffer parse back to back.
        let mut two = wire.to_vec();
        two.extend_from_slice(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        let Ok(Parsed::Complete { consumed, .. }) = parse_request(&two) else {
            panic!("first pipelined request must parse");
        };
        let Ok(Parsed::Complete {
            request,
            close_after,
            ..
        }) = parse_request(&two[consumed..])
        else {
            panic!("second pipelined request must parse");
        };
        assert_eq!(request.path, "/healthz");
        assert!(close_after, "Connection: close must be honoured");
    }

    #[test]
    fn incremental_parser_enforces_bounds_with_the_right_statuses() {
        // Head overflow → 413 as soon as the buffer outgrows the bound.
        let mut oversized = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        oversized.resize(MAX_HEAD + 1, b'a');
        let err = match parse_request(&oversized) {
            Err(e) => e,
            other => panic!("oversized head must be rejected, got {other:?}"),
        };
        assert_eq!(err.status(), 413);

        // Declared body overflow → 413 before a single body byte arrives.
        let huge = format!(
            "POST /q HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = match parse_request(huge.as_bytes()) {
            Err(e) => e,
            other => panic!("oversized body must be rejected, got {other:?}"),
        };
        assert_eq!(err.status(), 413);

        // Garbage content-length → 400.
        let garbage = b"POST /q HTTP/1.1\r\nContent-Length: ponies\r\n\r\n";
        let err = match parse_request(garbage) {
            Err(e) => e,
            other => panic!("bad content-length must be rejected, got {other:?}"),
        };
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn http10_defaults_to_close() {
        let wire = b"GET / HTTP/1.0\r\n\r\n";
        let Ok(Parsed::Complete { close_after, .. }) = parse_request(wire) else {
            panic!("HTTP/1.0 request must parse");
        };
        assert!(close_after);
        let wire = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let Ok(Parsed::Complete { close_after, .. }) = parse_request(wire) else {
            panic!("HTTP/1.0 keep-alive request must parse");
        };
        assert!(!close_after);
    }

    #[test]
    fn deadline_caps_a_drip_feeding_peer() {
        // Each individual read succeeds well inside any per-read timeout;
        // only a whole-request deadline can stop the drip.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let started = std::time::Instant::now();
            let result = read_request_with_deadline(&mut stream, Some(Duration::from_millis(300)));
            (result, started.elapsed())
        });
        let mut peer = TcpStream::connect(addr).unwrap();
        // Drip one header byte every 50ms, never finishing the head.
        for b in b"GET / HTTP/1.1\r\nX-Drip: ".iter().cycle().take(40) {
            if peer.write_all(&[*b]).is_err() {
                break; // server dropped us — expected
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let (result, elapsed) = server.join().unwrap();
        let err = result.expect_err("drip-fed request must not parse");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            "expected deadline expiry, got {err:?}"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "server held past the deadline: {elapsed:?}"
        );
    }

    #[test]
    fn head_bound_is_enforced_at_the_boundary() {
        // Reject: MAX_HEAD + 1 bytes with no terminator must fail with
        // "too large" — the buffer may never be pushed a whole read chunk
        // (4096 bytes) past the bound before rejection.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream)
        });
        let mut peer = TcpStream::connect(addr).unwrap();
        let mut oversized = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        oversized.resize(MAX_HEAD + 1, b'a');
        // One write: the server must reject from its own accounting, not
        // because the peer stopped sending.
        peer.write_all(&oversized).unwrap();
        let err = server.join().unwrap().expect_err("oversized head parsed");
        assert!(err.to_string().contains("too large"), "{err}");
        assert!(is_too_large(&err), "{err}");

        // Accept: a head whose terminator ends exactly at MAX_HEAD parses,
        // and trailing body bytes in the same packet are preserved even
        // though they push the raw buffer past the bound.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream)
        });
        let body = "0123456789";
        let mut exact = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\nX-Pad: ",
            body.len()
        )
        .into_bytes();
        exact.resize(MAX_HEAD - 4, b'a');
        exact.extend_from_slice(b"\r\n\r\n");
        assert_eq!(exact.len(), MAX_HEAD);
        exact.extend_from_slice(body.as_bytes());
        let mut peer = TcpStream::connect(addr).unwrap();
        peer.write_all(&exact).unwrap();
        let req = server.join().unwrap().expect("boundary head must parse");
        assert_eq!(req.path, "/x");
        assert_eq!(req.body, body);
    }

    #[test]
    fn pool_processes_and_shuts_down() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let pool = ThreadPool::new(
            2,
            "ltm-http",
            Arc::new(move |mut s: TcpStream| {
                let _ = read_request(&mut s);
                c.fetch_add(1, Ordering::SeqCst);
                let _ = write_response(&mut s, 200, "{}");
            }),
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let clients: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(move || http_call(addr, "GET", "/", None).unwrap()))
            .collect();
        for _ in 0..4 {
            let (stream, _) = listener.accept().unwrap();
            pool.dispatch(stream);
        }
        for c in clients {
            let (status, _) = c.join().unwrap();
            assert_eq!(status, 200);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        pool.shutdown();
    }

    #[test]
    fn keep_alive_client_reuses_one_connection() {
        // A tiny keep-alive server: accepts ONE connection and answers
        // every request on it, so a client that reconnects would hang on
        // accept — passing proves the connection was reused.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut served = 0u32;
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                match parse_request(&buf) {
                    Ok(Parsed::Complete {
                        request, consumed, ..
                    }) => {
                        buf.drain(..consumed);
                        let body = format!("{{\"path\":\"{}\"}}", request.path);
                        stream
                            .write_all(&render_response(200, "application/json", &body, true))
                            .unwrap();
                        served += 1;
                        if served == 3 {
                            return served;
                        }
                    }
                    Ok(Parsed::Partial) => {
                        let n = stream.read(&mut chunk).unwrap();
                        if n == 0 {
                            return served;
                        }
                        buf.extend_from_slice(&chunk[..n]);
                    }
                    Err(e) => panic!("client sent garbage: {e:?}"),
                }
            }
        });
        let mut client = HttpClient::new(addr).unwrap();
        for i in 0..2 {
            let (status, body) = client.call("GET", &format!("/r{i}"), None).unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, format!("{{\"path\":\"/r{i}\"}}"));
            assert!(client.is_connected());
        }
        // Pipelined tail: one write burst, responses in order.
        let responses = client.pipeline(&[("GET", "/p", None)]).unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].1, "{\"path\":\"/p\"}");
        assert_eq!(server.join().unwrap(), 3);
    }

    #[test]
    fn keep_alive_client_survives_a_reaped_connection() {
        // Server answers one request per connection then closes WITHOUT
        // a Connection: close header (simulating an idle reap between
        // calls); the client must transparently reconnect.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let req = read_request(&mut stream).unwrap();
                let body = format!("{{\"path\":\"{}\"}}", req.path);
                stream
                    .write_all(&render_response(200, "application/json", &body, true))
                    .unwrap();
                drop(stream); // surprise close
            }
        });
        let mut client = HttpClient::new(addr).unwrap();
        let (status, _) = client.call("GET", "/a", None).unwrap();
        assert_eq!(status, 200);
        // The server closed the socket after responding; this call hits
        // the dead connection and must retry on a fresh one.
        let (status, body) = client.call("GET", "/b", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"path\":\"/b\"}");
        server.join().unwrap();
    }
}
