//! A minimal HTTP/1.1 layer on `std::net` — request parsing, response
//! writing, a fixed worker pool, and a tiny client.
//!
//! Implemented in-repo rather than pulling in a web framework, consistent
//! with the offline vendored-dependency policy (DESIGN.md §8): the serving
//! layer needs exactly `Content-Length`-delimited JSON bodies over
//! `Connection: close` request/response pairs, and nothing more. Chunked
//! encoding, keep-alive, and TLS are explicitly out of scope.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use crate::sync::LockExt;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum accepted request-head (request line + headers) size.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted body size.
const MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed request: method, path, and UTF-8 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the client, verbatim from peers).
    pub method: String,
    /// The request target, e.g. `/facts/3`.
    pub path: String,
    /// The body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Reads one request from `stream` with no deadline (trusted peers:
/// tests and in-process helpers). Servers should prefer
/// [`read_request_with_deadline`].
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    read_request_with_deadline(stream, None)
}

/// Re-arms the socket read timeout with the time remaining until
/// `deadline`, or fails with `TimedOut` once the deadline has passed.
/// Making the deadline govern the *whole request* — rather than relying
/// on a fixed per-read timeout — is what stops a drip-feeding peer from
/// holding a worker indefinitely by keeping each individual read alive.
fn arm_deadline(stream: &TcpStream, deadline: Option<Instant>) -> io::Result<()> {
    let Some(deadline) = deadline else {
        return Ok(());
    };
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "request deadline exceeded",
        ));
    }
    stream.set_read_timeout(Some(remaining))
}

/// Reads one request from `stream`, bounding the whole read (head and
/// body, across however many packets the peer drips them in) by
/// `timeout` when given.
///
/// Returns `Err` on malformed framing, oversized heads/bodies, deadline
/// expiry, or I/O failure — the connection is then dropped without a
/// response body the peer could misinterpret.
pub fn read_request_with_deadline(
    stream: &mut TcpStream,
    timeout: Option<Duration>,
) -> io::Result<Request> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let deadline = timeout.map(|t| Instant::now() + t);

    // Accumulate until the blank line that ends the head. The size bound
    // is enforced when the buffer grows, not merely before the next read:
    // checking only at the top of the loop would let a peer push the
    // buffer to `MAX_HEAD + 4096` bytes (one full read chunk past the
    // bound) before rejection. Reads are additionally capped so the
    // buffer itself can never exceed `MAX_HEAD + 1` bytes — one byte over
    // is exactly enough to detect the violation. (A buffer longer than
    // `MAX_HEAD` is still legal once the terminator is inside it: the
    // excess is body bytes, handed to the body loop below.)
    let mut head = Vec::new();
    let mut buf = [0u8; 4096];
    let body_start = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        arm_deadline(stream, deadline)?;
        let cap = (MAX_HEAD + 1 - head.len()).min(buf.len());
        // analyzer: allow(panic-index) -- cap is clamped to buf.len() on the line above
        let n = stream.read(&mut buf[..cap])?;
        if n == 0 {
            return Err(bad("connection closed mid-head"));
        }
        // analyzer: allow(panic-index) -- read() returns n <= buf.len()
        head.extend_from_slice(&buf[..n]);
        if head.len() > MAX_HEAD && find_head_end(&head).is_none() {
            return Err(bad("request head too large"));
        }
    };
    let (head_bytes, rest) = head.split_at(body_start);
    // analyzer: allow(panic-index) -- find_head_end found "\r\n\r\n" at body_start, so rest has >= 4 bytes
    let mut body = rest[4..].to_vec(); // skip the \r\n\r\n itself

    let head_text = std::str::from_utf8(head_bytes).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("missing method"))?;
    let path = parts.next().ok_or_else(|| bad("missing path"))?;

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    while body.len() < content_length {
        arm_deadline(stream, deadline)?;
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        // analyzer: allow(panic-index) -- read() returns n <= buf.len()
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body: String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?,
    })
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a `Connection: close` JSON response.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write_response_with_type(stream, status, "application/json", body)
}

/// Writes a `Connection: close` response with an explicit content type
/// (`GET /metrics` serves Prometheus text, everything else JSON).
pub fn write_response_with_type(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// A fixed pool of worker threads draining accepted connections.
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<mpsc::Sender<TcpStream>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `size` workers, each running `handler` on every connection
    /// it receives.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize, handler: Arc<dyn Fn(TcpStream) + Send + Sync>) -> Self {
        assert!(size > 0, "thread pool needs at least one worker");
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("ltm-http-{i}"))
                    .spawn(move || loop {
                        let next = receiver.locked().recv();
                        match next {
                            Ok(stream) => {
                                // A panicking handler must not shrink the
                                // pool: contain it, drop the connection,
                                // keep serving.
                                let result =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        handler(stream)
                                    }));
                                if result.is_err() {
                                    crate::log_error!(
                                        "http",
                                        "request handler panicked; worker continues"
                                    );
                                }
                            }
                            Err(_) => return, // sender dropped: shutdown
                        }
                    })
                    // analyzer: allow(panic-expect) -- boot-time spawn; fails only on OS thread exhaustion, before the server serves
                    .expect("spawn http worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Hands a connection to the pool.
    pub fn dispatch(&self, stream: TcpStream) {
        if let Some(sender) = &self.sender {
            // A send error means shutdown already started; drop the
            // connection.
            let _ = sender.send(stream);
        }
    }

    /// A clone of the dispatch channel (used by the server's accept loop,
    /// which outlives borrows of the pool).
    pub(crate) fn sender_clone(&self) -> Option<mpsc::Sender<TcpStream>> {
        self.sender.clone()
    }

    /// Closes the queue and joins every worker.
    pub fn shutdown(mut self) {
        self.sender.take(); // closes the channel
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A one-shot HTTP client call: `Connection: close`, optional JSON body.
/// Returns `(status, body)`.
pub fn http_call<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: ltm\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let (head, response_body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated response"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, response_body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Spins up a listener whose single accepted connection is parsed and
    /// echoed back through `write_response`.
    fn echo_server() -> (std::net::SocketAddr, JoinHandle<Request>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            write_response(
                &mut stream,
                200,
                &format!("{{\"echo\":{}}}", req.body.len()),
            )
            .unwrap();
            req
        });
        (addr, handle)
    }

    #[test]
    fn request_response_round_trip() {
        let (addr, server) = echo_server();
        let (status, body) = http_call(addr, "POST", "/claims", Some("{\"x\":1}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"echo\":7}");
        let req = server.join().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/claims");
        assert_eq!(req.body, "{\"x\":1}");
    }

    #[test]
    fn get_without_body_parses() {
        let (addr, server) = echo_server();
        let (status, _) = http_call(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let req = server.join().unwrap();
        assert_eq!((req.method.as_str(), req.body.as_str()), ("GET", ""));
    }

    #[test]
    fn deadline_caps_a_drip_feeding_peer() {
        // Each individual read succeeds well inside any per-read timeout;
        // only a whole-request deadline can stop the drip.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let started = std::time::Instant::now();
            let result = read_request_with_deadline(&mut stream, Some(Duration::from_millis(300)));
            (result, started.elapsed())
        });
        let mut peer = TcpStream::connect(addr).unwrap();
        // Drip one header byte every 50ms, never finishing the head.
        for b in b"GET / HTTP/1.1\r\nX-Drip: ".iter().cycle().take(40) {
            if peer.write_all(&[*b]).is_err() {
                break; // server dropped us — expected
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let (result, elapsed) = server.join().unwrap();
        let err = result.expect_err("drip-fed request must not parse");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            "expected deadline expiry, got {err:?}"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "server held past the deadline: {elapsed:?}"
        );
    }

    #[test]
    fn head_bound_is_enforced_at_the_boundary() {
        // Reject: MAX_HEAD + 1 bytes with no terminator must fail with
        // "too large" — the buffer may never be pushed a whole read chunk
        // (4096 bytes) past the bound before rejection.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream)
        });
        let mut peer = TcpStream::connect(addr).unwrap();
        let mut oversized = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        oversized.resize(MAX_HEAD + 1, b'a');
        // One write: the server must reject from its own accounting, not
        // because the peer stopped sending.
        peer.write_all(&oversized).unwrap();
        let err = server.join().unwrap().expect_err("oversized head parsed");
        assert!(err.to_string().contains("too large"), "{err}");

        // Accept: a head whose terminator ends exactly at MAX_HEAD parses,
        // and trailing body bytes in the same packet are preserved even
        // though they push the raw buffer past the bound.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream)
        });
        let body = "0123456789";
        let mut exact = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\nX-Pad: ",
            body.len()
        )
        .into_bytes();
        exact.resize(MAX_HEAD - 4, b'a');
        exact.extend_from_slice(b"\r\n\r\n");
        assert_eq!(exact.len(), MAX_HEAD);
        exact.extend_from_slice(body.as_bytes());
        let mut peer = TcpStream::connect(addr).unwrap();
        peer.write_all(&exact).unwrap();
        let req = server.join().unwrap().expect("boundary head must parse");
        assert_eq!(req.path, "/x");
        assert_eq!(req.body, body);
    }

    #[test]
    fn pool_processes_and_shuts_down() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let pool = ThreadPool::new(
            2,
            Arc::new(move |mut s: TcpStream| {
                let _ = read_request(&mut s);
                c.fetch_add(1, Ordering::SeqCst);
                let _ = write_response(&mut s, 200, "{}");
            }),
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let clients: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(move || http_call(addr, "GET", "/", None).unwrap()))
            .collect();
        for _ in 0..4 {
            let (stream, _) = listener.accept().unwrap();
            pool.dispatch(stream);
        }
        for c in clients {
            let (status, _) = c.join().unwrap();
            assert_eq!(status, 200);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        pool.shutdown();
    }
}
