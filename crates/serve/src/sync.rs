//! Poison-tolerant lock acquisition.
//!
//! `std::sync` guards return `Err` when another thread panicked while
//! holding the lock. On the serving paths that is the *only* way
//! `.lock()` fails — and those paths are enforced panic-free by
//! ltm-analyzer, so a poisoned guard means a bug already escaped the
//! lint, most likely in test-only code sharing the store. Cascading a
//! second panic out of every other thread that touches the lock turns
//! one bug into a process-wide outage; recovering the guard keeps the
//! data plane serving (the protected data is valid: every mutation on
//! these paths is written to be crash-consistent at statement
//! granularity, and the WAL re-applies any half-acked batch on restart).
//!
//! These wrappers are the sanctioned spelling — `analyzer.toml` lists
//! `locked` / `read_locked` / `write_locked` as acquisition methods so
//! the lock-order analysis sees through them, and the panic-freedom
//! check forbids the raw `.lock().expect(..)` spelling on listed paths.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-tolerant [`Mutex`] acquisition.
pub trait LockExt<T> {
    /// Like [`Mutex::lock`], but recovers the guard from a poisoned
    /// lock instead of panicking.
    fn locked(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn locked(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Poison-tolerant [`RwLock`] acquisition.
pub trait RwLockExt<T> {
    /// Like [`RwLock::read`], but recovers the guard from a poisoned
    /// lock instead of panicking.
    fn read_locked(&self) -> RwLockReadGuard<'_, T>;
    /// Like [`RwLock::write`], but recovers the guard from a poisoned
    /// lock instead of panicking.
    fn write_locked(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwLockExt<T> for RwLock<T> {
    fn read_locked(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write_locked(&self) -> RwLockWriteGuard<'_, T> {
        self.write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Poison-tolerant [`Condvar::wait`].
///
/// A free function rather than a method: `wait` consumes the guard, so
/// an extension method on `Condvar` reads no better than this.
pub fn wait_recovered<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn locked_recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*m.locked(), 7);
        *m.locked() = 8;
        assert_eq!(*m.locked(), 8);
    }

    #[test]
    fn rwlock_recovers_both_ways() {
        let l = Arc::new(RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read_locked(), 1);
        *l.write_locked() = 2;
        assert_eq!(*l.read_locked(), 2);
    }

    #[test]
    fn wait_recovered_passes_through() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let guard = m.locked();
        let (guard, timeout) = cv
            .wait_timeout(guard, std::time::Duration::from_millis(1))
            .unwrap_or_else(|p| p.into_inner());
        assert!(timeout.timed_out());
        assert!(!*guard);
    }
}
